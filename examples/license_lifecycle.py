#!/usr/bin/env python3
"""A transmitting SU's day: licenses, renewals, and revocation.

Licenses carry a validity window, so a long-running SU periodically
renews via the cheap re-randomised request path.  When the spectrum
situation changes — a TV receiver tunes in next door — the renewal is
denied and the SU must stop: dynamic protection, privately enforced.

This example drives a :class:`~repro.pisa.session.SuSession` through a
simulated day with a controllable clock.

Run:  python examples/license_lifecycle.py
"""

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.pisa.session import SuSession
from repro.watch.entities import PUReceiver
from repro.watch.scenario import ScenarioConfig, build_scenario


class Clock:
    def __init__(self) -> None:
        self.now = 1_700_000_000.0  # an arbitrary epoch

    def __call__(self) -> float:
        return self.now


def hhmm(clock: Clock, start: float) -> str:
    minutes = int((clock.now - start) / 60)
    return f"{minutes // 60:02d}:{minutes % 60:02d}"


def main() -> None:
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))
    clock = Clock()
    start = clock.now
    coordinator = PisaCoordinator(
        scenario.environment, key_bits=256,
        rng=DeterministicRandomSource("lifecycle"),
    )
    coordinator.sdc._clock = clock
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)

    # Pick an SU that starts out admissible.
    from repro.watch.sdc import PlaintextSDC

    oracle = PlaintextSDC(scenario.environment)
    for pu in scenario.pus:
        oracle.pu_update(pu)
    su = next(s for s in scenario.sus if oracle.process_request(s).granted)
    coordinator.enroll_su(su)
    session = SuSession(coordinator, su.su_id, renew_margin_s=300, clock=clock)

    def tick(label: str) -> None:
        status = session.ensure_license()
        print(f"[{hhmm(clock, start)}] {label}: state={status.state.value}, "
              f"transmit={'yes' if status.may_transmit else 'NO'} "
              f"(renewals={status.renewals}, denials={status.denials})")

    tick("morning: first request")
    clock.now += 1800
    tick("30 min later (license still fresh)")
    clock.now += 3000
    tick("inside renewal margin → proactive renewal")
    clock.now += 3700
    tick("after expiry → renewed again")

    # Afternoon: a viewer turns on a TV right next to the SU.
    print(f"[{hhmm(clock, start)}] a TV receiver tunes in at the SU's block…")
    coordinator.enroll_pu(PUReceiver(
        "neighbour-tv", block_index=su.block_index,
        channel_slot=0, signal_strength_mw=1e-9,
    ))
    clock.now += 3700
    tick("next renewal after the neighbour appeared")
    clock.now += 3600
    tick("an hour later (still denied)")

    print("\nThe SU transmitted only while holding a valid license, renewed")
    print("automatically, and stopped the moment protection required it —")
    print("with the SDC never learning any of these outcomes.")


if __name__ == "__main__":
    main()
