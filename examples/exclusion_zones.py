#!/usr/bin/env python3
"""Exclusion zones: TV-white-space vs WATCH, drawn side by side.

The paper's motivation (§I): static TVWS exclusion zones waste huge
areas protecting TV receivers that are not watching, while WATCH only
excludes blocks near *active* receivers.  This example computes both
zones over a generated service area and prints ASCII maps plus the
spatial-reuse gain, before and after a receiver switches off.

Legend:  '#' SU denied now   '-' capped but usable   '.' free   'P' active PU

Run:  python examples/exclusion_zones.py
"""

from repro.watch.scenario import ScenarioConfig, build_scenario
from repro.watch.zones import compute_zones, render_zone_map

PROBE_DBM = 16.0


def main() -> None:
    scenario = build_scenario(ScenarioConfig(
        seed=5, grid_rows=8, grid_cols=12, num_channels=4,
        num_towers=2, num_pus=4, num_sus=0,
    ))
    env = scenario.environment
    slot = scenario.pus[0].channel_slot
    active = [p for p in scenario.pus if p.channel_slot == slot]
    print(f"channel slot {slot} "
          f"({env.plan.frequency_for_slot(slot) / 1e6:.0f} MHz), "
          f"{len(active)} active TV receivers, probe SU at {PROBE_DBM} dBm\n")

    zones = compute_zones(env, active, slot, probe_power_dbm=PROBE_DBM)
    print("WATCH dynamic exclusion (now):")
    print(render_zone_map(env, zones, active))
    print(f"\n  static (TVWS-style) zone: {zones.static_fraction:.0%} of the area")
    print(f"  dynamic (WATCH) zone:     {zones.dynamic_fraction:.0%} of the area")
    print(f"  spatial reuse unlocked:   {zones.reuse_gain:+.0%}\n")

    # One viewer turns the TV off — the zone around them evaporates.
    remaining = active[1:]
    after = compute_zones(env, remaining, slot, probe_power_dbm=PROBE_DBM)
    print(f"after receiver {active[0].receiver_id!r} switches off:")
    print(render_zone_map(env, after, remaining))
    print(f"\n  dynamic zone shrinks {zones.dynamic_fraction:.0%} → "
          f"{after.dynamic_fraction:.0%} — exclusion follows the viewers,")
    print("  not the broadcast towers. That is the WATCH model PISA makes")
    print("  privacy-preserving.")


if __name__ == "__main__":
    main()
