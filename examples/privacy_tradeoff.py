#!/usr/bin/env python3
"""The §VI-A location-privacy vs latency trade-off, as a runnable sweep.

An SU may let the SDC know a coarse region ("somewhere in the north")
to shrink its encrypted request.  This example sweeps the disclosed
fraction of the map, runs the real protocol at each point, and prints
the cost curve — which the paper predicts (and this library reproduces)
to be linear in the number of disclosed blocks.

Run:  python examples/privacy_tradeoff.py
"""

import time

from repro.analysis.reporting import format_table
from repro.crypto.rand import DeterministicRandomSource
from repro.geo.region import PrivacyRegion
from repro.pisa.protocol import PisaCoordinator
from repro.watch.entities import SUTransmitter
from repro.watch.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(ScenarioConfig(
        grid_rows=8, grid_cols=8, num_channels=8, num_towers=3,
        num_pus=5, num_sus=1, seed=3,
    ))
    grid = scenario.grid
    su_block = scenario.sus[0].block_index
    su_row = su_block // grid.cols

    coordinator = PisaCoordinator(
        scenario.environment, key_bits=256, rng=DeterministicRandomSource(3)
    )
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)

    rows_out = []
    for rows_disclosed in (2, 4, 6, 8):
        first = min(max(0, su_row - rows_disclosed // 2), grid.rows - rows_disclosed)
        region = PrivacyRegion.rows_slice(grid, first, first + rows_disclosed - 1)
        su = SUTransmitter(
            su_id=f"su-rows-{rows_disclosed}",
            block_index=su_block,
            tx_power_dbm=scenario.sus[0].tx_power_dbm,
        )
        client = coordinator.enroll_su(su, region=region)

        start = time.perf_counter()
        request = client.prepare_request()
        prep_s = time.perf_counter() - start

        start = time.perf_counter()
        extraction = coordinator.sdc.start_request(request)
        conversion = coordinator.stp.handle_sign_extraction(extraction)
        coordinator.sdc.finish_request(conversion)
        proc_s = time.perf_counter() - start

        rows_out.append((
            f"{region.num_blocks:3d}/{grid.num_blocks} blocks "
            f"(privacy {region.privacy_level:.0%})",
            f"prep {prep_s:.2f} s | process {proc_s:.2f} s | "
            f"request {request.wire_size() / 1e3:.0f} kB",
        ))

    print(format_table(
        "location privacy vs cost (linear in disclosed blocks)", rows_out
    ))
    print("\nFull privacy costs ~4x the quarter-map disclosure — the paper's")
    print("'asymptotically linear' trade-off (§VI-A).")


if __name__ == "__main__":
    main()
