#!/usr/bin/env python3
"""Private power negotiation: find your max EIRP without telling anyone.

WATCH answers yes/no for a specific configuration; PISA hides even the
deny reason.  An SU that wants the *highest* admissible power therefore
runs a binary search of full protocol rounds — each probe encrypted,
each verdict known only to the SU.  The SDC observes request count and
timing, nothing else.

This example negotiates for two SUs — one near an active TV receiver,
one far — and cross-checks the found thresholds against the plaintext
oracle (which, in a real deployment, nobody would hold).

Run:  python examples/power_negotiation.py
"""

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.negotiation import PowerNegotiator
from repro.pisa.protocol import PisaCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))
    coordinator = PisaCoordinator(
        scenario.environment, key_bits=256,
        rng=DeterministicRandomSource("negotiate"),
    )
    oracle = PlaintextSDC(scenario.environment)
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
        oracle.pu_update(pu)

    negotiator = PowerNegotiator(coordinator, resolution_db=1.0)
    for su in scenario.sus:
        result = negotiator.negotiate(su, floor_dbm=-20.0, cap_dbm=36.0)
        print(f"{su.su_id} @ block {su.block_index}:")
        if result.admitted:
            print(f"  negotiated max power: {result.best_power_dbm:.1f} dBm "
                  f"(next denied at {result.lowest_denied_dbm:.1f} dBm)")
        else:
            print("  inadmissible even at the floor power")
        print(f"  {result.rounds_used} encrypted rounds: "
              + " ".join(
                  f"{p:+.0f}{'✓' if ok else '✗'}" for p, ok in result.probes
              ))
        if result.admitted:
            ok = oracle.process_request(
                su.with_power(result.best_power_dbm)
            ).granted
            too_much = oracle.process_request(
                su.with_power(result.lowest_denied_dbm)
            ).granted
            print(f"  oracle cross-check: granted@best={ok}, "
                  f"granted@denied-bound={too_much}")
        print()


if __name__ == "__main__":
    main()
