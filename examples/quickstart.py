#!/usr/bin/env python3
"""Quickstart: one privacy-preserving spectrum request, end to end.

Builds a small service area with TV towers, active TV receivers (PUs),
and one WiFi secondary user (SU), then runs a complete PISA round:

1. the STP generates the group key; the SU registers its personal key;
2. every PU sends its encrypted channel-reception update to the SDC;
3. the SU sends its encrypted transmission request;
4. SDC and STP jointly decide — over ciphertexts — and the SU decrypts
   its (possibly perturbed) license signature to learn the outcome.

Run:  python examples/quickstart.py
"""

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.scenario import ScenarioConfig, build_scenario


def main() -> None:
    # A 4x6-block area with 2 TV towers, 3 active receivers, 2 SUs.
    scenario = build_scenario(ScenarioConfig(seed=7))
    print(f"Service area: {scenario.grid.rows}x{scenario.grid.cols} blocks of "
          f"{scenario.grid.block_size_m:.0f} m; "
          f"{scenario.params.num_channels} channel slots")

    # key_bits=256 keeps the demo instant; use 2048 for the paper's
    # 112-bit security level.
    coordinator = PisaCoordinator(
        scenario.environment, key_bits=256, rng=DeterministicRandomSource(7)
    )

    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
        print(f"  {pu.receiver_id}: encrypted update sent "
              f"(block {pu.block_index}, channel hidden from the SDC)")

    su = scenario.sus[0]
    coordinator.enroll_su(su)
    print(f"  {su.su_id}: personal key registered with the STP "
          f"(EIRP {su.eirp_dbm:.1f} dBm, location hidden)")

    report = coordinator.run_request_round(su.su_id)

    print("\n--- round complete ---")
    print(f"decision (known only to {su.su_id}): "
          f"{'GRANTED' if report.granted else 'DENIED'}")
    print(f"request ciphertext: {report.request_bytes / 1e3:.1f} kB")
    print(f"license response:   {report.response_bytes} B")
    print(f"round trip:         {report.timings.total:.2f} s "
          f"(prep {report.timings.request_preparation:.2f} s, "
          f"SDC {report.timings.sdc_processing:.2f} s, "
          f"STP {report.timings.stp_conversion:.2f} s)")
    print(f"messages on the wire: {coordinator.transport.count()} "
          f"({coordinator.transport.total_bytes() / 1e3:.1f} kB total)")


if __name__ == "__main__":
    main()
