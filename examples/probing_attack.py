#!/usr/bin/env python3
"""Threat-model demo: probing attacks vs database breaches.

The paper's §II cites Bahrak et al.: a malicious SU can locate PUs by
sending innocuous queries.  This example runs that attack on our
substrate and separates the two channels an adversary has:

1. **the decision oracle** — probing grant/deny over a (channel, block)
   sweep recovers every active PU cell, against WATCH *and* against
   PISA (the SU legitimately learns its own decisions; no cryptography
   can hide what the allocation itself reveals);
2. **the database** — a breached plaintext WATCH SDC hands over every
   PU's channel directly, while a breached PISA SDC holds only
   ciphertexts and the attacker is reduced to a 1-in-C guess.

PISA's §V guarantee is exactly the second channel; the first needs
policy (licensing costs, rate limits, Bahrak-style obfuscation).

Run:  python examples/probing_attack.py
"""

from repro.baselines.probing import ProbingAttack, sdc_breach_view
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario
from repro.watch.zones import render_zone_map


def main() -> None:
    scenario = build_scenario(ScenarioConfig(
        seed=5, grid_rows=6, grid_cols=6, num_channels=3,
        num_towers=2, num_pus=3, num_sus=0,
    ))
    env = scenario.environment
    active = [pu for pu in scenario.pus if pu.is_active]
    print(f"ground truth: {[(p.channel_slot, p.block_index) for p in active]} "
          "(channel, block) of active PUs\n")

    # --- attack channel 1: the decision oracle -------------------------
    sdc = PlaintextSDC(env)
    for pu in scenario.pus:
        sdc.pu_update(pu)

    def decide(su, channel):
        return sdc.process_request(su, channels=[channel]).granted

    attack = ProbingAttack(env, decide, probe_power_dbm=10.0)
    report = attack.sweep(active)
    print(f"probing sweep: {report.probes_used} probe requests")
    print(f"  recall {report.recall:.0%} (every active PU found), "
          f"precision {report.precision:.0%} "
          "(denial halo around each PU)")
    print("  -> decisions leak PU presence in ANY allocation system;")
    print("     mitigations are policy-level (license cost, rate limits).\n")

    # --- attack channel 2: the database breach --------------------------
    coordinator = PisaCoordinator(
        env, key_bits=256, rng=DeterministicRandomSource("probing-demo")
    )
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    breach = sdc_breach_view(env, active, coordinator=coordinator)
    print("database breach (read the SDC's stored state):")
    print(f"  plaintext WATCH: channel recovered with accuracy "
          f"{breach['watch']:.0%}")
    print(f"  PISA:            best attack = blind guess "
          f"(this run {'hit' if breach['pisa'] else 'missed'}; expected "
          f"{breach['pisa_baseline']:.0%})")
    print("  -> THIS is the channel PISA closes (Lemma V.1).")


if __name__ == "__main__":
    main()
