#!/usr/bin/env python3
"""A district-scale deployment: many PUs, several SUs, channel churn.

Reproduces the paper's *operating regime* at a size a laptop handles in
seconds: a 10x15-block district, 20 channel slots, 12 active TV
receivers, and 6 WiFi SUs requesting access.  Shows:

* decision distribution across SUs (and agreement with the plaintext
  WATCH oracle — the correctness claim);
* what happens when PUs switch channels or turn off (Figure 4 churn,
  including the virtual-channel optimisation);
* cumulative communication accounting per message type.

Run:  python examples/city_scale.py
"""

from collections import Counter

from repro.analysis.overhead import summarize_transport
from repro.analysis.reporting import format_table
from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.sdc import PlaintextSDC
from repro.watch.scenario import ScenarioConfig, build_scenario


def main() -> None:
    scenario = build_scenario(ScenarioConfig(
        grid_rows=10, grid_cols=15, num_channels=20,
        num_towers=5, num_pus=12, num_sus=6, seed=11,
    ))
    print(f"district: {scenario.grid.rows}x{scenario.grid.cols} blocks, "
          f"{scenario.params.num_channels} slots, "
          f"{len(scenario.pus)} PUs, {len(scenario.sus)} SUs")

    rng = DeterministicRandomSource("city")
    coordinator = PisaCoordinator(scenario.environment, key_bits=256, rng=rng)
    oracle = PlaintextSDC(scenario.environment)
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
        oracle.pu_update(pu)

    # --- round 1: every SU requests -------------------------------------
    print("\nround 1: all SUs request")
    decisions = Counter()
    for su in scenario.sus:
        coordinator.enroll_su(su)
        report = coordinator.run_request_round(su.su_id)
        plain = oracle.process_request(su)
        agrees = "==" if report.granted == plain.granted else "!= ORACLE MISMATCH"
        decisions["granted" if report.granted else "denied"] += 1
        print(f"  {su.su_id} @block {su.block_index:3d}: "
              f"{'granted' if report.granted else 'denied '} "
              f"(oracle {agrees}, {report.timings.total:.2f} s)")
    print(f"  summary: {dict(decisions)}")

    # --- churn: PUs switch channels / turn off ----------------------------
    print("\nchannel churn:")
    switched = scenario.pus[0]
    new_slot = (switched.channel_slot + 1) % scenario.params.num_channels
    sent = coordinator.pu_switch_channel(
        switched.receiver_id, new_slot, signal_strength_mw=1e-4
    )
    oracle.pu_update(switched.switched_to(new_slot, signal_strength_mw=1e-4))
    print(f"  {switched.receiver_id} -> slot {new_slot}: "
          f"{'update sent' if sent else 'virtual switch, no update needed'}")

    off = scenario.pus[1]
    coordinator.pu_switch_channel(off.receiver_id, None)
    oracle.pu_update(off.switched_to(None))
    print(f"  {off.receiver_id} switched off: budget falls back to E")

    # --- round 2: cached requests re-randomised ---------------------------
    print("\nround 2: refreshed (unlinkable) requests after churn")
    for su in scenario.sus:
        client = coordinator.su_client(su.su_id)
        client.precompute_refresh_material()  # offline r^n stock
        report = coordinator.run_request_round(su.su_id, reuse_cached_request=True)
        plain = oracle.process_request(su)
        agrees = "==" if report.granted == plain.granted else "!= ORACLE MISMATCH"
        print(f"  {su.su_id}: {'granted' if report.granted else 'denied '} "
              f"(oracle {agrees}, refresh-based, {report.timings.total:.2f} s)")

    # --- accounting ------------------------------------------------------
    summary = summarize_transport(coordinator.transport)
    print("\n" + format_table(
        f"communication totals ({summary.message_count} messages)",
        summary.as_rows(),
    ))


if __name__ == "__main__":
    main()
