#!/usr/bin/env python3
"""The §VI-B real-world experiment, on simulated USRP radios.

Replays the paper's four scenarios on the simulated testbed (two N210
SUs, one X310 PU, WiFi channel 6 at 2.437 GHz):

1. PU idle; both SUs transmit — the PU's 20 MHz monitor shows two
   packets with distance-dependent amplitudes (Figure 8);
2. PU claims the channel; the SDC halts the SUs (Figure 10);
3. both SUs submit encrypted PISA requests (Figure 11);
4. the SDC decides privately; the non-interfering SU is granted and
   sends ≈11 packets within 20 ms (Figure 9).

Run:  python examples/sdr_testbed.py
"""

import numpy as np

from repro.sdr.testbed import SdrTestbed


def ascii_trace(trace: np.ndarray, width: int = 72, height: int = 8) -> str:
    """A tiny ASCII oscilloscope for the received-amplitude envelope."""
    bins = np.array_split(np.abs(trace), width)
    envelope = np.array([b.max() for b in bins])
    peak = envelope.max() or 1.0
    levels = np.round(envelope / peak * (height - 1)).astype(int)
    rows = []
    for level in range(height - 1, -1, -1):
        rows.append("".join("#" if l >= level and l > 0 else " " for l in levels))
    rows.append("-" * width)
    return "\n".join(rows)


def main() -> None:
    testbed = SdrTestbed(seed=1)
    print("devices:")
    for device in (testbed.pu_device, testbed.su1_device, testbed.su2_device):
        print(f"  {device.device_id}: USRP {device.profile.model} at "
              f"({device.x_m:.0f}, {device.y_m:.0f}) m, "
              f"{device.tx_power_dbm:.0f} dBm")

    results = testbed.run_all()

    for result in results:
        print(f"\n=== {result.name} ===")
        for event in result.events:
            print(f"  {event}")
        for name, trace in result.traces.items():
            window_ms = len(trace) / 20e6 * 1e3
            print(f"  [{name} monitor, {window_ms:.2f} ms @ 20 MHz]")
            print(ascii_trace(trace))

    decisions = results[3].reports
    print("\nPISA decisions (each learned only by the SU itself):")
    for su_id, report in decisions.items():
        print(f"  {su_id}: {'GRANTED' if report.granted else 'DENIED'} "
              f"(round {report.timings.total:.2f} s, "
              f"request {report.request_bytes / 1e3:.0f} kB)")
    print("\nAs in the paper's run: the SU closer to the PU is denied; the")
    print("distant one is granted and re-occupies the channel.")


if __name__ == "__main__":
    main()
