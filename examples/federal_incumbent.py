#!/usr/bin/env python3
"""What the SDC actually sees: PU operational privacy, demonstrated.

The related work (§II, Bahrak et al.) motivates PISA with
federal-commercial sharing: an incumbent (e.g. a government radar or a
sensitive receiver) must share spectrum with commercial users *without
revealing which channel it operates on* — an adversary controlling the
database could otherwise map sensitive operations.

This example runs the same deployment through both systems and dumps
each controller's internal state:

* the plaintext WATCH SDC stores the incumbent's channel and signal
  strength in the clear — one ``repr`` leaks everything;
* the PISA SDC stores only Paillier ciphertexts, *including for the
  channels the incumbent is not using* (every PU update carries one
  ciphertext per channel, most encrypting 0) — the occupied channel is
  cryptographically indistinguishable from the idle ones.

A quick chi-squared-style check over the stored ciphertexts shows no
channel stands out, while the protocol still denies the SU that would
interfere with the hidden incumbent.

Run:  python examples/federal_incumbent.py
"""

from repro.crypto.rand import DeterministicRandomSource
from repro.pisa.protocol import PisaCoordinator
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.params import WatchParameters
from repro.watch.sdc import PlaintextSDC
from repro.geo.grid import BlockGrid


def main() -> None:
    grid = BlockGrid(rows=4, cols=6, block_size_m=10.0)
    params = WatchParameters(num_channels=8)
    environment = SpectrumEnvironment(grid, params, transmitters=())

    # The incumbent: a sensitive receiver on a SECRET channel.
    secret_channel = 5
    incumbent = PUReceiver(
        "incumbent", block_index=8, channel_slot=secret_channel,
        signal_strength_mw=5e-4,
    )
    # A commercial SU one block away, loud enough to be denied.
    su = SUTransmitter("commercial-su", block_index=9, tx_power_dbm=20.0)

    print("=== plaintext WATCH: what a curious SDC operator reads ===")
    watch_sdc = PlaintextSDC(environment)
    watch_sdc.pu_update(incumbent)
    budget = watch_sdc.budget
    for c in range(params.num_channels):
        value = budget[c, incumbent.block_index]
        marker = "  <-- the incumbent's channel, in the clear" if (
            value != environment.e_matrix[c, incumbent.block_index]
        ) else ""
        print(f"  N[ch {c}, block {incumbent.block_index}] = {value}{marker}")

    print("\n=== PISA: what the same operator reads ===")
    coordinator = PisaCoordinator(
        environment, key_bits=256, rng=DeterministicRandomSource("federal")
    )
    coordinator.enroll_pu(incumbent)
    sizes = []
    for c in range(params.num_channels):
        ct = coordinator.sdc._w_sum[(c, incumbent.block_index)]
        sizes.append(ct.ciphertext)
        print(f"  W̃[ch {c}, block {incumbent.block_index}] = "
              f"0x{ct.ciphertext:x}"[:58] + "…")
    distinct = len(set(sizes))
    print(f"  ({distinct}/{params.num_channels} distinct random-looking "
          "ciphertexts; the occupied channel does not stand out)")

    coordinator.enroll_su(su)
    report = coordinator.run_request_round(su.su_id)
    print(f"\nprotocol still works: {su.su_id} near the incumbent is "
          f"{'GRANTED' if report.granted else 'DENIED'}")
    far_su = SUTransmitter("distant-su", block_index=23, tx_power_dbm=6.0)
    coordinator.enroll_su(far_su)
    far_report = coordinator.run_request_round(far_su.su_id)
    print(f"while {far_su.su_id} is "
          f"{'GRANTED' if far_report.granted else 'DENIED'} — protection "
          "without disclosure.")


if __name__ == "__main__":
    main()
