#!/usr/bin/env python3
"""A day in the life of a PISA deployment — capacity simulation.

Simulates 24 hours of a city-scale PISA service with the paper's
full-scale parameters (C=100, B=600, n=2048) and Table II's GMP-class
primitive costs: SUs arrive as a Poisson process, PUs flip channels at
the literature's 2.5 switches/hour (only physical switches reach the
SDC), and every protocol phase queues on the single-threaded SDC/STP.

Shows the systems-level picture behind Figure 6's per-request numbers:
where the bottleneck is, when the service saturates, and what the
packed-request extension buys.

Run:  python examples/spectrum_market.py
"""

from repro.analysis.reporting import format_table
from repro.analysis.scaling import PaillierCostProfile
from repro.sim import DeploymentSimulator, ServiceCostModel, WorkloadConfig
from repro.watch.scenario import ScenarioConfig, build_scenario

#: Table II of the paper (GMP prototype on an i5-2400).
PAPER_HARDWARE = PaillierCostProfile(
    key_bits=2048, encryption_s=0.030378, decryption_s=0.021170,
    hom_add_s=4e-6, hom_sub_s=7.3e-5, hom_scale_small_s=1.564e-3,
    hom_scale_full_s=0.018867, rerandomize_s=0.030,
)


def main() -> None:
    scenario = build_scenario(ScenarioConfig(seed=4, num_sus=3))

    for packing, rate, label in (
        (1, 1.0, "baseline protocol, light load (1 request/h)"),
        (1, 3.0, "baseline protocol, overload (3 requests/h)"),
        (12, 12.0, "packed extension k=12 (12 requests/h)"),
    ):
        model = ServiceCostModel(
            PAPER_HARDWARE, num_channels=100, num_blocks=600,
            packing_factor=packing,
        )
        print(f"\n=== {label} ===")
        print(f"  modelled SDC time/request: {model.costs.sdc_per_request_s:.0f} s "
              f"(paper: ≈219 s)  |  STP: {model.costs.stp_convert_s:.0f} s")
        simulator = DeploymentSimulator(
            scenario, model,
            WorkloadConfig(su_requests_per_hour=rate, seed=42),
        )
        report = simulator.run(24 * 3600)
        print(format_table("24 h simulation", report.as_table_rows()))

    print("\nTakeaways: the STP's per-cell decrypt+re-encrypt, which the paper")
    print("does not cost out, is the real bottleneck at full scale; packing")
    print("12 cells per ciphertext moves saturation by an order of magnitude.")


if __name__ == "__main__":
    main()
