"""Canonical protocol-transcript capture, shared by every plane.

The chaos harness, the cross-plane equivalence tests, and the socket
plane all need the same notion of "the protocol transcript": the exact
bytes of every *protocol-level* message (SU/PU ↔ SDC ↔ STP), in send
order, excluding router↔shard sub-queries — failover legitimately
re-sends those, and the externally visible bytes are exactly the
non-shard links.  Defining the fingerprint and the link predicate once
here is what makes "byte-identical transcript" mean the same thing in
``repro chaos``, the socket-plane equivalence test, and the process
chaos plan.

Recording happens *post-send*, so transient faults are transparent: a
dropped message was never delivered (not recorded), a retried one is
recorded once — the logical delivered-exactly-once transcript.
"""

from __future__ import annotations

from repro.crypto.hashing import sha256
from repro.net.transport import MultiplexedTransport

__all__ = ["TranscriptTransport", "fingerprint_message", "is_protocol_link"]


def fingerprint_message(message, sender: str, receiver: str) -> str:
    """Stable digest of one protocol message's exact bytes on a link."""
    to_bytes = getattr(message, "to_bytes", None)
    if to_bytes is not None:
        body = to_bytes()
    else:  # pragma: no cover - every protocol message serialises
        body = repr(message).encode("utf-8")
    return sha256(
        type(message).__name__.encode("utf-8"),
        b"|" + sender.encode("utf-8"),
        b"|" + receiver.encode("utf-8") + b"|",
        body,
    ).hex()


def is_protocol_link(sender: str, receiver: str) -> bool:
    """True for externally visible links; router↔shard traffic is not."""
    for endpoint in (sender, receiver):
        if endpoint.startswith("shard-") or endpoint == "router":
            return False
    return True


class TranscriptTransport(MultiplexedTransport):
    """A multiplexed transport that also fingerprints the transcript.

    Subclassing (rather than wrapping) keeps
    ``resolve_multiplexed``-based coordinator plumbing — link failure,
    fault injection — working unchanged.  ``record_transcript=False``
    turns capture off without changing the type (the socket plane's
    default, so the hot path skips the extra ``to_bytes``).
    """

    def __init__(self, *args, record_transcript: bool = True, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.record_transcript = record_transcript
        self.fingerprints: list[str] = []
        self._marks: list[int] = []

    @staticmethod
    def _is_protocol_link(sender: str, receiver: str) -> bool:
        return is_protocol_link(sender, receiver)

    def send(self, message, sender: str, receiver: str):
        result = super().send(message, sender, receiver)
        if self.record_transcript and is_protocol_link(sender, receiver):
            self.fingerprints.append(fingerprint_message(message, sender, receiver))
        return result

    def mark(self) -> int:
        """Close a transcript segment (enrolment, round N, ...)."""
        self._marks.append(len(self.fingerprints))
        return len(self._marks) - 1

    def segments(self) -> tuple[tuple[str, ...], ...]:
        """Fingerprints sliced by :meth:`mark` boundaries."""
        out = []
        start = 0
        for end in self._marks:
            out.append(tuple(self.fingerprints[start:end]))
            start = end
        return tuple(out)
