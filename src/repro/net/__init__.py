"""In-memory networking with byte accounting.

The paper's §VI-A evaluation reports *communication overhead* (request
≈29 MB, PU update ≈0.05 MB, response ≈4.1 kb).  This subpackage provides
an in-memory transport that records every message's exact serialised
size and an optional latency model, so benchmarks can report both bytes
on the wire and modelled transfer delays without real sockets.
"""

from repro.net.latency import ConstantLatency, DistanceLatency, LatencyModel
from repro.net.transport import InMemoryTransport, MessageRecord

__all__ = [
    "ConstantLatency",
    "DistanceLatency",
    "LatencyModel",
    "InMemoryTransport",
    "MessageRecord",
]
