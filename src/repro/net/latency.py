"""Latency models for the simulated transport.

The protocol's round-trip structure (SU → SDC → STP → SDC → SU) makes
communication rounds a first-class cost — the paper's future work
explicitly targets "a protocol that requires less communication rounds
and latency".  These models let benchmarks attach a transfer-time
estimate to the byte counts the transport records.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.crypto.rand import DeterministicRandomSource

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "DistanceLatency",
    "SeededJitterLatency",
]


class LatencyModel(ABC):
    """Maps a message (size, endpoints) to a one-way delay in seconds."""

    @abstractmethod
    def delay_seconds(self, size_bytes: int, sender: str, receiver: str) -> float:
        """One-way delay for ``size_bytes`` from ``sender`` to ``receiver``."""


@dataclass(frozen=True)
class ConstantLatency(LatencyModel):
    """Fixed propagation delay plus bandwidth-limited serialisation.

    ``delay = rtt/2 + size / bandwidth`` — the classic first-order model.
    Defaults approximate a broadband WAN hop: 20 ms RTT, 100 Mbit/s.
    """

    rtt_seconds: float = 0.020
    bandwidth_bytes_per_s: float = 100e6 / 8

    def delay_seconds(self, size_bytes: int, sender: str, receiver: str) -> float:
        if size_bytes < 0:
            raise ValueError("size must be non-negative")
        return self.rtt_seconds / 2.0 + size_bytes / self.bandwidth_bytes_per_s


@dataclass(frozen=True)
class DistanceLatency(LatencyModel):
    """Propagation at a fraction of c over great-circle-ish distances.

    ``positions`` maps endpoint names to metric (x, y) coordinates;
    unknown endpoints fall back to ``default_distance_m``.
    """

    positions: dict[str, tuple[float, float]]
    bandwidth_bytes_per_s: float = 100e6 / 8
    propagation_fraction_of_c: float = 0.66
    default_distance_m: float = 50_000.0

    def delay_seconds(self, size_bytes: int, sender: str, receiver: str) -> float:
        if sender in self.positions and receiver in self.positions:
            sx, sy = self.positions[sender]
            rx, ry = self.positions[receiver]
            distance = math.hypot(sx - rx, sy - ry)
        else:
            distance = self.default_distance_m
        propagation = distance / (299_792_458.0 * self.propagation_fraction_of_c)
        return propagation + size_bytes / self.bandwidth_bytes_per_s


class SeededJitterLatency(LatencyModel):
    """A base model plus deterministic per-link multiplicative jitter.

    Each directed ``(sender, receiver)`` link gets its own
    :class:`~repro.crypto.rand.DeterministicRandomSource` forked from the
    seed by link label, so:

    * the jitter sequence on one link is independent of traffic on any
      other link (a multiplexed cluster transport interleaves sends
      across links without perturbing each other's draws);
    * two transports built from the same seed replay identical delays
      message-for-message — the property the failover benchmarks rely on
      to make recovery-latency numbers reproducible.

    The delay is ``base · (1 + u · jitter_fraction)`` with ``u`` uniform
    in ``[0, 1)``; jitter only ever *adds* latency, keeping the base
    model a lower bound.
    """

    def __init__(
        self,
        base: LatencyModel,
        seed: int | str | bytes = 0,
        jitter_fraction: float = 0.2,
    ) -> None:
        if jitter_fraction < 0:
            raise ValueError("jitter_fraction must be non-negative")
        self.base = base
        self.seed = seed
        self.jitter_fraction = jitter_fraction
        self._root = DeterministicRandomSource(seed)
        self._links: dict[tuple[str, str], DeterministicRandomSource] = {}

    def _link_rng(self, sender: str, receiver: str) -> DeterministicRandomSource:
        link = (sender, receiver)
        rng = self._links.get(link)
        if rng is None:
            rng = self._root.fork(f"link:{sender}->{receiver}")
            self._links[link] = rng
        return rng

    def delay_seconds(self, size_bytes: int, sender: str, receiver: str) -> float:
        base_delay = self.base.delay_seconds(size_bytes, sender, receiver)
        # 53 bits → uniform in [0, 1) at double precision.
        u = self._link_rng(sender, receiver).randbits(53) / float(1 << 53)
        return base_delay * (1.0 + u * self.jitter_fraction)
