"""In-memory message transport with exact byte accounting.

Every protocol message passed through :class:`InMemoryTransport` is
recorded with its serialised size (via the message's ``wire_size()``)
and, when a latency model is attached, its modelled one-way delay.  The
evaluation harness sums these records to reproduce the §VI-A
communication-overhead numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

from repro.net.latency import LatencyModel

__all__ = ["MessageRecord", "InMemoryTransport"]


class _SizedMessage(Protocol):
    def wire_size(self) -> int: ...


@dataclass(frozen=True)
class MessageRecord:
    """One message's accounting entry."""

    sender: str
    receiver: str
    kind: str
    size_bytes: int
    delay_seconds: float

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


class InMemoryTransport:
    """Synchronous delivery with accounting.

    ``send`` returns the message unchanged (delivery is the caller
    invoking the receiver), so protocol code stays a plain call graph
    while the transport observes sizes and delays on the side.
    """

    def __init__(self, latency: LatencyModel | None = None) -> None:
        self.latency = latency
        self.records: list[MessageRecord] = []

    def send(self, message: _SizedMessage, sender: str, receiver: str):
        """Account for one message and hand it back for delivery."""
        size = message.wire_size()
        delay = (
            self.latency.delay_seconds(size, sender, receiver)
            if self.latency is not None
            else 0.0
        )
        self.records.append(
            MessageRecord(
                sender=sender,
                receiver=receiver,
                kind=type(message).__name__,
                size_bytes=size,
                delay_seconds=delay,
            )
        )
        return message

    # -- accounting queries ------------------------------------------------------

    def total_bytes(self, kind: str | None = None) -> int:
        """Total bytes sent, optionally filtered by message class name."""
        return sum(r.size_bytes for r in self.records if kind is None or r.kind == kind)

    def total_delay_seconds(self) -> float:
        """Sum of modelled one-way delays (serial round-trip view)."""
        return sum(r.delay_seconds for r in self.records)

    def count(self, kind: str | None = None) -> int:
        return sum(1 for r in self.records if kind is None or r.kind == kind)

    def by_kind(self) -> dict[str, tuple[int, int]]:
        """``{kind: (message_count, total_bytes)}`` summary."""
        summary: dict[str, tuple[int, int]] = {}
        for record in self.records:
            count, size = summary.get(record.kind, (0, 0))
            summary[record.kind] = (count + 1, size + record.size_bytes)
        return summary

    def clear(self) -> None:
        self.records.clear()
