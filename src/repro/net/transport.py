"""In-memory message transport with exact byte accounting.

Every protocol message passed through :class:`InMemoryTransport` is
recorded with its serialised size (via the message's ``wire_size()``)
and, when a latency model is attached, its modelled one-way delay.  The
evaluation harness sums these records to reproduce the §VI-A
communication-overhead numbers.

Aggregate totals (bytes, counts, delays, per-kind and per-link
breakdowns) are maintained *incrementally* on every send, so they stay
exact even when the per-message record log is capped with
``max_records`` — the configuration long-running service loops use to
keep memory bounded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol

from repro.errors import LinkDownError, MessageDroppedError
from repro.net.latency import LatencyModel

__all__ = [
    "MessageRecord",
    "InMemoryTransport",
    "MultiplexedTransport",
    "BoundChannel",
    "resolve_multiplexed",
]


class _SizedMessage(Protocol):
    def wire_size(self) -> int: ...


@dataclass(frozen=True)
class MessageRecord:
    """One message's accounting entry."""

    sender: str
    receiver: str
    kind: str
    size_bytes: int
    delay_seconds: float

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


class InMemoryTransport:
    """Synchronous delivery with accounting.

    ``send`` returns the message unchanged (delivery is the caller
    invoking the receiver), so protocol code stays a plain call graph
    while the transport observes sizes and delays on the side.

    Parameters
    ----------
    latency:
        Optional delay model applied to every message.
    max_records:
        When set, ``records`` becomes a ring buffer holding only the
        most recent ``max_records`` entries.  All aggregate queries
        (:meth:`total_bytes`, :meth:`count`, :meth:`by_kind`,
        :meth:`total_delay_seconds`) keep counting *every* message ever
        sent — eviction only drops the per-message detail.
    """

    def __init__(
        self, latency: LatencyModel | None = None, max_records: int | None = None
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be positive when set")
        self.latency = latency
        self.max_records = max_records
        self.records: deque[MessageRecord] = deque(maxlen=max_records)
        #: Optional :class:`repro.telemetry.MetricsRegistry` exposing
        #: per-link transfer counters (see :meth:`attach_metrics`).
        self._metrics = None
        self._reset_totals()

    def _reset_totals(self) -> None:
        self._total_messages = 0
        self._total_bytes = 0
        self._total_delay = 0.0
        #: kind → [count, bytes]
        self._by_kind: dict[str, list[int]] = {}
        #: (sender, receiver) → summed delay on that link
        self._link_delay: dict[tuple[str, str], float] = {}

    def attach_metrics(self, metrics) -> None:
        """Mirror transfer accounting into a telemetry registry.

        Every recorded message increments
        ``transport_records_total{link="sender->receiver"}`` and adds its
        size to ``transport_bytes_total{link=...}``.  Wired through
        :meth:`_record` — the single accounting funnel — so fault-path
        records (duplicates, reorder flushes) are mirrored too, and the
        counters match :attr:`records` / the aggregate totals exactly.
        """
        self._metrics = metrics

    def send(self, message: _SizedMessage, sender: str, receiver: str):
        """Account for one message and hand it back for delivery."""
        size = message.wire_size()
        delay = (
            self.latency.delay_seconds(size, sender, receiver)
            if self.latency is not None
            else 0.0
        )
        self._record(message, sender, receiver, size, delay)
        return message

    def _record(
        self,
        message: _SizedMessage,
        sender: str,
        receiver: str,
        size: int,
        delay: float,
    ) -> None:
        kind = type(message).__name__
        self.records.append(
            MessageRecord(
                sender=sender,
                receiver=receiver,
                kind=kind,
                size_bytes=size,
                delay_seconds=delay,
            )
        )
        self._total_messages += 1
        self._total_bytes += size
        self._total_delay += delay
        kind_totals = self._by_kind.setdefault(kind, [0, 0])
        kind_totals[0] += 1
        kind_totals[1] += size
        link = (sender, receiver)
        self._link_delay[link] = self._link_delay.get(link, 0.0) + delay
        if self._metrics is not None:
            label = f"{sender}->{receiver}"
            self._metrics.counter("transport_records_total", link=label).inc()
            self._metrics.counter("transport_bytes_total", link=label).inc(size)

    # -- accounting queries ------------------------------------------------------

    def total_bytes(self, kind: str | None = None) -> int:
        """Total bytes sent, optionally filtered by message class name."""
        if kind is None:
            return self._total_bytes
        return self._by_kind.get(kind, (0, 0))[1]

    def total_delay_seconds(self, parallel: bool = False) -> float:
        """Modelled transfer delay of the whole exchange.

        ``parallel=False`` (default) is the serial view — the sum of
        every one-way delay, as if all messages shared one wire.  A
        concurrent runtime overlaps independent transfers, so
        ``parallel=True`` reports the *critical path* instead: transfers
        on the same directed ``(sender, receiver)`` link serialise,
        distinct links proceed concurrently, giving
        ``max over links of (sum of that link's delays)``.
        """
        if not parallel:
            return self._total_delay
        return max(self._link_delay.values(), default=0.0)

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return self._total_messages
        return self._by_kind.get(kind, (0, 0))[0]

    def by_kind(self) -> dict[str, tuple[int, int]]:
        """``{kind: (message_count, total_bytes)}`` summary."""
        return {kind: (count, size) for kind, (count, size) in self._by_kind.items()}

    def clear(self) -> None:
        self.records.clear()
        self._reset_totals()


@dataclass(frozen=True)
class BoundChannel:
    """A transport pre-bound to one directed link.

    Protocol drivers that talk to exactly one peer (the cluster router's
    per-shard channels) take one of these instead of a
    ``(transport, sender, receiver)`` triple — the link identity travels
    with the handle, so a caller cannot accidentally account a shard-A
    message on shard B's wire.
    """

    transport: "MultiplexedTransport"
    sender: str
    receiver: str

    def send(self, message: _SizedMessage):
        return self.transport.send(message, self.sender, self.receiver)

    @property
    def link(self) -> tuple[str, str]:
        return (self.sender, self.receiver)


@dataclass
class _LinkFaults:
    """Remaining injected-fault budgets for one directed link."""

    #: Next N sends are dropped (raise ``MessageDroppedError``).
    drop: int = 0
    #: Next N sends are recorded twice (wire-level duplicate).
    duplicate: int = 0
    #: Extra one-way delay added to affected sends.
    delay_extra_s: float = 0.0
    #: How many sends the extra delay applies to; ``-1`` = all of them.
    delay_remaining: int = 0
    #: When > 1, records are held back and flushed in reverse once this
    #: many accumulate (wire-level reordering of the accounting log).
    reorder_window: int = 0
    held: deque = field(default_factory=deque)

    @property
    def exhausted(self) -> bool:
        return (
            self.drop == 0
            and self.duplicate == 0
            and self.delay_remaining == 0
            and self.reorder_window <= 1
            and not self.held
        )


class MultiplexedTransport(InMemoryTransport):
    """An :class:`InMemoryTransport` with per-link overrides.

    The base transport applies one latency model to every message.  A
    sharded deployment is not that uniform: the coordinator↔shard links
    are intra-datacentre while SU↔router links cross a WAN, and failure
    injection must be able to cut exactly one shard's wire while its
    siblings keep flowing.  ``configure_link`` attaches a per-directed-link
    latency model and an up/down flag; unconfigured links fall through to
    the shared default, so existing single-transport call sites behave
    identically.

    Sending on a failed link raises :class:`~repro.errors.LinkDownError`
    *without* recording the message — the bytes never made it onto the
    wire, so they must not count toward the §VI-A overhead totals.

    **Fault injection** (:meth:`inject_faults`) layers finer, *transient*
    faults on top: drop the next N sends
    (:class:`~repro.errors.MessageDroppedError` — the link itself stays
    up, so the retry policy retries in place instead of failing over),
    duplicate them on the wire log, stretch their delay, or reorder the
    accounting log through a hold-back window.  Delivery in this
    in-memory model is the synchronous return value, so duplicate and
    reorder affect the observed *wire log*, not the call graph — exactly
    the layer the §VI-A accounting and the chaos transcript read.
    """

    def __init__(
        self, latency: LatencyModel | None = None, max_records: int | None = None
    ) -> None:
        super().__init__(latency=latency, max_records=max_records)
        self._link_latency: dict[tuple[str, str], LatencyModel | None] = {}
        self._link_down: set[tuple[str, str]] = set()
        self._down_endpoints: set[str] = set()
        self._faults: dict[tuple[str, str], _LinkFaults] = {}
        #: Injected-fault counters: dropped / duplicated / delayed / reordered.
        self.fault_stats: dict[str, int] = {
            "dropped": 0,
            "duplicated": 0,
            "delayed": 0,
            "reordered": 0,
        }

    # -- link administration -----------------------------------------------------

    def configure_link(
        self,
        sender: str,
        receiver: str,
        latency: LatencyModel | None = None,
        fail: bool = False,
    ) -> None:
        """Override one directed link's latency model and/or fail it."""
        link = (sender, receiver)
        self._link_latency[link] = latency
        if fail:
            self._link_down.add(link)
        else:
            self._link_down.discard(link)

    def fail_link(self, sender: str, receiver: str) -> None:
        """Cut a directed link; subsequent sends raise ``LinkDownError``."""
        self._link_down.add((sender, receiver))

    def fail_endpoint(self, endpoint: str) -> None:
        """Cut every link to *and* from ``endpoint`` (a dead shard)."""
        self._down_endpoints.add(endpoint)

    def restore_link(self, sender: str, receiver: str) -> None:
        self._link_down.discard((sender, receiver))

    def restore_endpoint(self, endpoint: str) -> None:
        self._down_endpoints.discard(endpoint)

    def link_is_up(self, sender: str, receiver: str) -> bool:
        if (sender, receiver) in self._link_down:
            return False
        down = self._down_endpoints
        return sender not in down and receiver not in down

    def channel(self, sender: str, receiver: str) -> BoundChannel:
        """A send handle bound to one directed link."""
        return BoundChannel(transport=self, sender=sender, receiver=receiver)

    # -- fault injection -----------------------------------------------------------

    def inject_faults(
        self,
        sender: str,
        receiver: str,
        *,
        drop: int = 0,
        duplicate: int = 0,
        delay_s: float = 0.0,
        delay_count: int = -1,
        reorder_window: int = 0,
    ) -> None:
        """Arm transient faults on one directed link.

        ``drop``/``duplicate`` are budgets consumed one send at a time;
        ``delay_s`` adds to the modelled delay of the next
        ``delay_count`` sends (``-1`` = every send); ``reorder_window``
        > 1 holds records back and flushes them reversed per window.
        Budgets are deterministic — the same arm + the same send
        sequence always yields the same fault schedule.
        """
        link = (sender, receiver)
        faults = self._faults.setdefault(link, _LinkFaults())
        faults.drop += drop
        faults.duplicate += duplicate
        if delay_s > 0.0:
            faults.delay_extra_s = delay_s
            faults.delay_remaining = delay_count
        if reorder_window:
            faults.reorder_window = reorder_window

    def pending_delay_seconds(self, sender: str, receiver: str) -> float:
        """The modelled one-way delay the next send on this link would see.

        Base latency (per-link model falling back to the shared default,
        sized at zero payload bytes) plus any armed delay injection.
        Read-only — budgets are not consumed.  The router folds this into
        its RTT observations: in-memory transports deliver synchronously,
        so a modelled slowdown is invisible to wall-clock timing alone.
        """
        link = (sender, receiver)
        model = (
            self._link_latency[link]
            if link in self._link_latency
            else self.latency
        )
        delay = model.delay_seconds(0, sender, receiver) if model else 0.0
        faults = self._faults.get(link)
        if faults is not None and faults.delay_remaining != 0:
            delay += faults.delay_extra_s
        return delay

    def clear_faults(self) -> None:
        """Disarm all faults, flushing any held (reordered) records."""
        for faults in self._faults.values():
            while faults.held:
                self._record(*faults.held.popleft())
        self._faults.clear()

    # -- sending -------------------------------------------------------------------

    def send(self, message: _SizedMessage, sender: str, receiver: str):
        if not self.link_is_up(sender, receiver):
            raise LinkDownError(f"link {sender!r} -> {receiver!r} is down")
        link = (sender, receiver)
        model = (
            self._link_latency[link]
            if link in self._link_latency
            else self.latency
        )
        size = message.wire_size()
        delay = (
            model.delay_seconds(size, sender, receiver)
            if model is not None
            else 0.0
        )
        faults = self._faults.get(link)
        if faults is None:
            self._record(message, sender, receiver, size, delay)
            return message
        if faults.drop > 0:
            faults.drop -= 1
            self.fault_stats["dropped"] += 1
            raise MessageDroppedError(
                f"injected drop on link {sender!r} -> {receiver!r}"
            )
        if faults.delay_remaining != 0:
            if faults.delay_remaining > 0:
                faults.delay_remaining -= 1
            delay += faults.delay_extra_s
            self.fault_stats["delayed"] += 1
        copies = 1
        if faults.duplicate > 0:
            faults.duplicate -= 1
            copies = 2
            self.fault_stats["duplicated"] += 1
        entries = [(message, sender, receiver, size, delay)] * copies
        if faults.reorder_window > 1:
            faults.held.extend(entries)
            while len(faults.held) >= faults.reorder_window:
                batch = [
                    faults.held.popleft() for _ in range(faults.reorder_window)
                ]
                for entry in reversed(batch):
                    self._record(*entry)
                self.fault_stats["reordered"] += len(batch)
        else:
            for entry in entries:
                self._record(*entry)
        if faults.exhausted:
            del self._faults[link]
        return message


def resolve_multiplexed(transport) -> MultiplexedTransport | None:
    """Unwrap decorator transports down to the ``MultiplexedTransport``.

    Wrappers like :class:`repro.audit.runtime.SanitizingTransport` (and
    the chaos recorder) expose their wrapped transport as ``.inner``;
    coordinator code that needs link administration (failing a shard's
    wire, arming faults) must reach the multiplexed layer rather than
    giving up because the outermost object is a wrapper.  Returns
    ``None`` when no multiplexed transport is in the stack.
    """
    seen = 0
    while transport is not None and seen < 16:
        if isinstance(transport, MultiplexedTransport):
            return transport
        transport = getattr(transport, "inner", None)
        seen += 1
    return None
