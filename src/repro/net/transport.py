"""In-memory message transport with exact byte accounting.

Every protocol message passed through :class:`InMemoryTransport` is
recorded with its serialised size (via the message's ``wire_size()``)
and, when a latency model is attached, its modelled one-way delay.  The
evaluation harness sums these records to reproduce the §VI-A
communication-overhead numbers.

Aggregate totals (bytes, counts, delays, per-kind and per-link
breakdowns) are maintained *incrementally* on every send, so they stay
exact even when the per-message record log is capped with
``max_records`` — the configuration long-running service loops use to
keep memory bounded.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Protocol

from repro.errors import LinkDownError
from repro.net.latency import LatencyModel

__all__ = [
    "MessageRecord",
    "InMemoryTransport",
    "MultiplexedTransport",
    "BoundChannel",
]


class _SizedMessage(Protocol):
    def wire_size(self) -> int: ...


@dataclass(frozen=True)
class MessageRecord:
    """One message's accounting entry."""

    sender: str
    receiver: str
    kind: str
    size_bytes: int
    delay_seconds: float

    @property
    def size_mb(self) -> float:
        return self.size_bytes / 1e6


class InMemoryTransport:
    """Synchronous delivery with accounting.

    ``send`` returns the message unchanged (delivery is the caller
    invoking the receiver), so protocol code stays a plain call graph
    while the transport observes sizes and delays on the side.

    Parameters
    ----------
    latency:
        Optional delay model applied to every message.
    max_records:
        When set, ``records`` becomes a ring buffer holding only the
        most recent ``max_records`` entries.  All aggregate queries
        (:meth:`total_bytes`, :meth:`count`, :meth:`by_kind`,
        :meth:`total_delay_seconds`) keep counting *every* message ever
        sent — eviction only drops the per-message detail.
    """

    def __init__(
        self, latency: LatencyModel | None = None, max_records: int | None = None
    ) -> None:
        if max_records is not None and max_records < 1:
            raise ValueError("max_records must be positive when set")
        self.latency = latency
        self.max_records = max_records
        self.records: deque[MessageRecord] = deque(maxlen=max_records)
        self._reset_totals()

    def _reset_totals(self) -> None:
        self._total_messages = 0
        self._total_bytes = 0
        self._total_delay = 0.0
        #: kind → [count, bytes]
        self._by_kind: dict[str, list[int]] = {}
        #: (sender, receiver) → summed delay on that link
        self._link_delay: dict[tuple[str, str], float] = {}

    def send(self, message: _SizedMessage, sender: str, receiver: str):
        """Account for one message and hand it back for delivery."""
        size = message.wire_size()
        delay = (
            self.latency.delay_seconds(size, sender, receiver)
            if self.latency is not None
            else 0.0
        )
        self._record(message, sender, receiver, size, delay)
        return message

    def _record(
        self,
        message: _SizedMessage,
        sender: str,
        receiver: str,
        size: int,
        delay: float,
    ) -> None:
        kind = type(message).__name__
        self.records.append(
            MessageRecord(
                sender=sender,
                receiver=receiver,
                kind=kind,
                size_bytes=size,
                delay_seconds=delay,
            )
        )
        self._total_messages += 1
        self._total_bytes += size
        self._total_delay += delay
        kind_totals = self._by_kind.setdefault(kind, [0, 0])
        kind_totals[0] += 1
        kind_totals[1] += size
        link = (sender, receiver)
        self._link_delay[link] = self._link_delay.get(link, 0.0) + delay

    # -- accounting queries ------------------------------------------------------

    def total_bytes(self, kind: str | None = None) -> int:
        """Total bytes sent, optionally filtered by message class name."""
        if kind is None:
            return self._total_bytes
        return self._by_kind.get(kind, (0, 0))[1]

    def total_delay_seconds(self, parallel: bool = False) -> float:
        """Modelled transfer delay of the whole exchange.

        ``parallel=False`` (default) is the serial view — the sum of
        every one-way delay, as if all messages shared one wire.  A
        concurrent runtime overlaps independent transfers, so
        ``parallel=True`` reports the *critical path* instead: transfers
        on the same directed ``(sender, receiver)`` link serialise,
        distinct links proceed concurrently, giving
        ``max over links of (sum of that link's delays)``.
        """
        if not parallel:
            return self._total_delay
        return max(self._link_delay.values(), default=0.0)

    def count(self, kind: str | None = None) -> int:
        if kind is None:
            return self._total_messages
        return self._by_kind.get(kind, (0, 0))[0]

    def by_kind(self) -> dict[str, tuple[int, int]]:
        """``{kind: (message_count, total_bytes)}`` summary."""
        return {kind: (count, size) for kind, (count, size) in self._by_kind.items()}

    def clear(self) -> None:
        self.records.clear()
        self._reset_totals()


@dataclass(frozen=True)
class BoundChannel:
    """A transport pre-bound to one directed link.

    Protocol drivers that talk to exactly one peer (the cluster router's
    per-shard channels) take one of these instead of a
    ``(transport, sender, receiver)`` triple — the link identity travels
    with the handle, so a caller cannot accidentally account a shard-A
    message on shard B's wire.
    """

    transport: "MultiplexedTransport"
    sender: str
    receiver: str

    def send(self, message: _SizedMessage):
        return self.transport.send(message, self.sender, self.receiver)

    @property
    def link(self) -> tuple[str, str]:
        return (self.sender, self.receiver)


class MultiplexedTransport(InMemoryTransport):
    """An :class:`InMemoryTransport` with per-link overrides.

    The base transport applies one latency model to every message.  A
    sharded deployment is not that uniform: the coordinator↔shard links
    are intra-datacentre while SU↔router links cross a WAN, and failure
    injection must be able to cut exactly one shard's wire while its
    siblings keep flowing.  ``configure_link`` attaches a per-directed-link
    latency model and an up/down flag; unconfigured links fall through to
    the shared default, so existing single-transport call sites behave
    identically.

    Sending on a failed link raises :class:`~repro.errors.LinkDownError`
    *without* recording the message — the bytes never made it onto the
    wire, so they must not count toward the §VI-A overhead totals.
    """

    def __init__(
        self, latency: LatencyModel | None = None, max_records: int | None = None
    ) -> None:
        super().__init__(latency=latency, max_records=max_records)
        self._link_latency: dict[tuple[str, str], LatencyModel | None] = {}
        self._link_down: set[tuple[str, str]] = set()
        self._down_endpoints: set[str] = set()

    # -- link administration -----------------------------------------------------

    def configure_link(
        self,
        sender: str,
        receiver: str,
        latency: LatencyModel | None = None,
        fail: bool = False,
    ) -> None:
        """Override one directed link's latency model and/or fail it."""
        link = (sender, receiver)
        self._link_latency[link] = latency
        if fail:
            self._link_down.add(link)
        else:
            self._link_down.discard(link)

    def fail_link(self, sender: str, receiver: str) -> None:
        """Cut a directed link; subsequent sends raise ``LinkDownError``."""
        self._link_down.add((sender, receiver))

    def fail_endpoint(self, endpoint: str) -> None:
        """Cut every link to *and* from ``endpoint`` (a dead shard)."""
        self._down_endpoints.add(endpoint)

    def restore_link(self, sender: str, receiver: str) -> None:
        self._link_down.discard((sender, receiver))

    def restore_endpoint(self, endpoint: str) -> None:
        self._down_endpoints.discard(endpoint)

    def link_is_up(self, sender: str, receiver: str) -> bool:
        if (sender, receiver) in self._link_down:
            return False
        down = self._down_endpoints
        return sender not in down and receiver not in down

    def channel(self, sender: str, receiver: str) -> BoundChannel:
        """A send handle bound to one directed link."""
        return BoundChannel(transport=self, sender=sender, receiver=receiver)

    # -- sending -------------------------------------------------------------------

    def send(self, message: _SizedMessage, sender: str, receiver: str):
        if not self.link_is_up(sender, receiver):
            raise LinkDownError(f"link {sender!r} -> {receiver!r} is down")
        link = (sender, receiver)
        if link in self._link_latency:
            model = self._link_latency[link]
            size = message.wire_size()
            delay = (
                model.delay_seconds(size, sender, receiver)
                if model is not None
                else 0.0
            )
            self._record(message, sender, receiver, size, delay)
            return message
        return super().send(message, sender, receiver)
