"""Communication-overhead summaries (§VI-A's reporting unit)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.transport import InMemoryTransport

__all__ = ["CommunicationSummary", "summarize_transport"]


@dataclass(frozen=True)
class CommunicationSummary:
    """Bytes on the wire per protocol message type."""

    request_bytes: int
    pu_update_bytes: int
    sign_extraction_bytes: int
    conversion_bytes: int
    response_bytes: int
    total_bytes: int
    message_count: int

    def as_rows(self) -> list[tuple[str, str]]:
        """Human-readable rows for the report tables."""

        def fmt(size: int) -> str:
            if size >= 1_000_000:
                return f"{size / 1e6:.2f} MB"
            if size >= 1_000:
                return f"{size / 1e3:.2f} kB"
            return f"{size} B"

        return [
            ("SU request (F̃ matrix)", fmt(self.request_bytes)),
            ("PU update (W̃ vector)", fmt(self.pu_update_bytes)),
            ("SDC→STP sign extraction (Ṽ)", fmt(self.sign_extraction_bytes)),
            ("STP→SDC key conversion (X̃)", fmt(self.conversion_bytes)),
            ("SDC response (license + G̃)", fmt(self.response_bytes)),
            ("Total", fmt(self.total_bytes)),
        ]


def summarize_transport(transport: InMemoryTransport) -> CommunicationSummary:
    """Aggregate an accounted transport into a per-kind summary."""
    by_kind = transport.by_kind()

    def total(kind: str) -> int:
        return by_kind.get(kind, (0, 0))[1]

    return CommunicationSummary(
        request_bytes=total("SURequestMessage"),
        pu_update_bytes=total("PUUpdateMessage"),
        sign_extraction_bytes=total("SignExtractionRequest"),
        conversion_bytes=total("SignExtractionResponse"),
        response_bytes=total("LicenseResponse"),
        total_bytes=transport.total_bytes(),
        message_count=transport.count(),
    )
