"""Evaluation support: overhead accounting, scaling, report rendering.

* :mod:`repro.analysis.overhead` — structured computation/communication
  cost summaries assembled from protocol runs;
* :mod:`repro.analysis.scaling` — extrapolate measured per-operation
  costs to the paper's full setting (C=100, B=600, n=2048), since the
  pure-Python substrate cannot run 60 000 2048-bit encryptions per
  request in benchmark time;
* :mod:`repro.analysis.reporting` — fixed-width text tables matching the
  paper's table/figure structure for benchmark output.
"""

from repro.analysis.overhead import CommunicationSummary, summarize_transport
from repro.analysis.reporting import format_table
from repro.analysis.stats import LinearFit, bootstrap_mean_ci, linear_fit, proportion_within
from repro.analysis.scaling import (
    PaillierCostProfile,
    ScaledSystemEstimate,
    estimate_full_scale,
    measure_cost_profile,
)

__all__ = [
    "CommunicationSummary",
    "summarize_transport",
    "format_table",
    "LinearFit",
    "bootstrap_mean_ci",
    "linear_fit",
    "proportion_within",
    "PaillierCostProfile",
    "ScaledSystemEstimate",
    "estimate_full_scale",
    "measure_cost_profile",
]
