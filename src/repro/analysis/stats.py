"""Small statistics helpers for the evaluation harness.

Benchmarks assert *shapes* — linearity of the privacy trade-off,
latency blow-up under overload — and need a couple of classical tools:
least-squares fits with goodness, bootstrap confidence intervals, and a
two-proportion check used by the blinding-bias tests.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["LinearFit", "linear_fit", "bootstrap_mean_ci", "proportion_within"]


@dataclass(frozen=True)
class LinearFit:
    """``y ≈ slope·x + intercept`` with the usual goodness measure."""

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.slope * x + self.intercept


def linear_fit(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """Ordinary least squares for one predictor.

    Raises on degenerate input (fewer than two points, or constant x).
    A constant ``y`` fits perfectly (R² = 1) with zero slope.
    """
    if len(x) != len(y):
        raise ConfigurationError("x and y lengths differ")
    if len(x) < 2:
        raise ConfigurationError("need at least two points")
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if np.ptp(xs) == 0:
        raise ConfigurationError("x values are constant")
    slope, intercept = np.polyfit(xs, ys, 1)
    fitted = slope * xs + intercept
    ss_res = float(np.sum((ys - fitted) ** 2))
    ss_tot = float(np.sum((ys - np.mean(ys)) ** 2))
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=float(slope), intercept=float(intercept),
                     r_squared=r_squared)


def bootstrap_mean_ci(
    samples: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    if len(samples) == 0:
        raise ConfigurationError("no samples")
    if not 0 < confidence < 1:
        raise ConfigurationError("confidence must be in (0, 1)")
    data = np.asarray(samples, dtype=float)
    rng = np.random.default_rng(seed)
    means = rng.choice(data, size=(resamples, len(data)), replace=True).mean(axis=1)
    tail = (1.0 - confidence) / 2.0
    low, high = np.quantile(means, [tail, 1.0 - tail])
    return float(low), float(high)


def proportion_within(
    successes: int, trials: int, expected: float, z: float = 4.0
) -> bool:
    """Is an observed proportion within ``z`` binomial standard errors?

    Used by the statistical blinding tests: with ``z = 4`` a correct
    implementation fails spuriously ~1 in 16 000 runs.
    """
    if trials <= 0:
        raise ConfigurationError("trials must be positive")
    if not 0 <= expected <= 1:
        raise ConfigurationError("expected proportion must be in [0, 1]")
    observed = successes / trials
    stderr = math.sqrt(max(expected * (1 - expected), 1e-12) / trials)
    return abs(observed - expected) <= z * stderr
