"""Extrapolation of measured primitive costs to the paper's full scale.

The paper's Figure 6 numbers come from C·B = 60 000 Paillier operations
per request at n = 2048 on a GMP-backed prototype.  Our pure-Python
substrate runs the same code path but ≈3-5x slower per primitive, so a
full-scale request would take hours in a benchmark suite.  Instead:

1. :func:`measure_cost_profile` times each Paillier primitive *at the
   real key size* (this is exactly Table II, and is fast — microseconds
   to ≈100 ms per op);
2. :func:`estimate_full_scale` multiplies the per-cell operation counts
   of each protocol phase by the measured primitive costs and the target
   matrix size.

Every estimate is reported next to the actually-measured small-scale
end-to-end time, so the reader can see both the real measurement and
the projection.  The per-phase operation counts below mirror the
implementation in :mod:`repro.pisa` one-to-one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.crypto.paillier import PaillierKeypair, generate_keypair
from repro.crypto.rand import RandomSource, default_rng

__all__ = [
    "PaillierCostProfile",
    "ScaledSystemEstimate",
    "measure_cost_profile",
    "estimate_full_scale",
]


@dataclass(frozen=True)
class PaillierCostProfile:
    """Measured per-operation costs (seconds) at a given key size.

    The fields map onto Table II of the paper.
    """

    key_bits: int
    encryption_s: float
    decryption_s: float
    hom_add_s: float
    hom_sub_s: float
    hom_scale_small_s: float  # 100-bit constant (Table II's "100-bit")
    hom_scale_full_s: float   # full-width constant
    rerandomize_s: float

    def as_table_rows(self) -> list[tuple[str, str]]:
        rows = [
            ("Public key size", f"{2 * self.key_bits} bits"),
            ("Secret key size", f"{2 * self.key_bits} bits"),
            ("Plaintext message size", f"{self.key_bits} bits"),
            ("Ciphertext size", f"{2 * self.key_bits} bits"),
            ("Encryption", f"{self.encryption_s * 1e3:.3f} ms"),
            ("Decryption", f"{self.decryption_s * 1e3:.3f} ms"),
            ("Homomorphic addition", f"{self.hom_add_s * 1e3:.3f} ms"),
            ("Homomorphic subtraction", f"{self.hom_sub_s * 1e3:.3f} ms"),
            ("Homomorphic scale (100-bit constant)", f"{self.hom_scale_small_s * 1e3:.3f} ms"),
            ("Homomorphic scale", f"{self.hom_scale_full_s * 1e3:.3f} ms"),
            ("Re-randomisation", f"{self.rerandomize_s * 1e3:.3f} ms"),
        ]
        return rows


def _time_op(fn, iterations: int) -> float:
    start = time.perf_counter()
    for _ in range(iterations):
        fn()
    return (time.perf_counter() - start) / iterations


def measure_cost_profile(
    key_bits: int = 2048,
    iterations: int = 30,
    keypair: PaillierKeypair | None = None,
    rng: RandomSource | None = None,
) -> PaillierCostProfile:
    """Benchmark the Paillier primitives — Table II's methodology.

    The paper averages 30 iterations; heavier ops are scaled down
    proportionally so the whole profile completes in seconds.
    """
    rng = default_rng(rng)
    keypair = keypair or generate_keypair(key_bits, rng=rng)
    pk, sk = keypair.public_key, keypair.private_key
    heavy_iters = max(3, iterations // 6)

    ct_a = pk.encrypt(123456789, rng=rng)
    ct_b = pk.encrypt(987654321, rng=rng)
    small_scalar = rng.randbits(100) | 1
    full_scalar = rng.randbits(pk.key_bits) | 1

    return PaillierCostProfile(
        key_bits=pk.key_bits,
        encryption_s=_time_op(lambda: pk.encrypt(42, rng=rng), heavy_iters),
        decryption_s=_time_op(lambda: sk.decrypt(ct_a), iterations),
        hom_add_s=_time_op(lambda: ct_a.add(ct_b), iterations),
        hom_sub_s=_time_op(lambda: ct_a.subtract(ct_b), iterations),
        hom_scale_small_s=_time_op(lambda: ct_a.scalar_mul(small_scalar), iterations),
        hom_scale_full_s=_time_op(lambda: ct_a.scalar_mul(full_scalar), heavy_iters),
        rerandomize_s=_time_op(lambda: ct_a.rerandomize(rng), heavy_iters),
    )


@dataclass(frozen=True)
class ScaledSystemEstimate:
    """Projected full-scale costs of each Figure 6 phase (seconds/bytes)."""

    num_channels: int
    num_blocks: int
    key_bits: int
    request_preparation_s: float
    request_refresh_s: float
    sdc_processing_s: float
    stp_conversion_s: float
    pu_update_prepare_s: float
    sdc_pu_update_s: float
    su_request_bytes: int
    pu_update_bytes: int
    response_bytes: int

    def as_table_rows(self) -> list[tuple[str, str]]:
        return [
            ("SU request preparation", f"{self.request_preparation_s:.1f} s"),
            ("SU request refresh (re-randomise)", f"{self.request_refresh_s:.1f} s"),
            ("SDC request processing", f"{self.sdc_processing_s:.1f} s"),
            ("STP sign extraction + conversion", f"{self.stp_conversion_s:.1f} s"),
            ("PU update preparation", f"{self.pu_update_prepare_s:.2f} s"),
            ("SDC per PU update", f"{self.sdc_pu_update_s:.2f} s"),
            ("SU request size", f"{self.su_request_bytes / 1e6:.1f} MB"),
            ("PU update size", f"{self.pu_update_bytes / 1e6:.3f} MB"),
            ("Response size", f"{self.response_bytes * 8 / 1e3:.1f} kbit"),
        ]


def estimate_full_scale(
    profile: PaillierCostProfile,
    num_channels: int = 100,
    num_blocks: int = 600,
    fresh_beta_encryption: bool = True,
) -> ScaledSystemEstimate:
    """Project Figure 6's phases from a measured primitive profile.

    Per-cell operation counts (mirroring :mod:`repro.pisa.sdc_server`):

    * SU preparation: 1 encryption per cell (eq. (5) arithmetic is
      negligible next to the exponentiation);
    * SU refresh: 1 re-randomisation per cell;
    * SDC phase 1: small scalar (eq. (11)), negate + plain-add
      (eqs. (10)/(12)), α-scale (≈100-bit), optional β encryption, and
      the ε sign flip (a subtraction-cost inverse) — per cell;
    * SDC phase 2: small scalar + plain-add per cell, plus the ΣQ̃
      additions and one full-width η-scale;
    * STP: decryption + encryption per cell;
    * PU update: one encryption per channel client-side; SDC folds it in
      with one addition per channel (plus one subtraction when
      replacing).
    """
    cells = num_channels * num_blocks
    ct_bytes = 4 + (2 * profile.key_bits + 7) // 8

    sdc_phase1_per_cell = (
        profile.hom_scale_small_s      # eq. (11) R = F ⊗ X
        + profile.hom_sub_s            # negate (modular inverse path)
        + profile.hom_add_s            # add_plain(E)
        + profile.hom_add_s            # + W̃ where present (upper bound)
        + profile.hom_scale_small_s    # α ⊗ I (α ≈ 100 bits)
        + (profile.encryption_s if fresh_beta_encryption else profile.hom_add_s)
        + profile.hom_sub_s            # ⊖ β̃ / ε flip inverse
    )
    sdc_phase2_per_cell = (
        profile.hom_sub_s              # ε ⊗ X̃ (±1 → inverse)
        + profile.hom_add_s            # add_plain(−1)
        + profile.hom_add_s            # fold into ΣQ̃
    )
    return ScaledSystemEstimate(
        num_channels=num_channels,
        num_blocks=num_blocks,
        key_bits=profile.key_bits,
        request_preparation_s=cells * profile.encryption_s,
        # Refresh with PRECOMPUTED obfuscators is one multiplication per
        # ciphertext — the same cost class as homomorphic addition
        # (§VI-A); the r**n exponentiations happen offline.
        request_refresh_s=cells * profile.hom_add_s,
        sdc_processing_s=cells * (sdc_phase1_per_cell + sdc_phase2_per_cell)
        + profile.encryption_s  # SG̃
        + profile.hom_scale_full_s,  # η ⊗ ΣQ̃
        stp_conversion_s=cells * (profile.decryption_s + profile.encryption_s),
        pu_update_prepare_s=num_channels * profile.encryption_s,
        sdc_pu_update_s=num_channels * (profile.hom_add_s + profile.hom_sub_s),
        su_request_bytes=cells * ct_bytes,
        pu_update_bytes=num_channels * ct_bytes,
        response_bytes=ct_bytes,
    )
