"""Plain-text table rendering for the benchmark harness.

Benchmarks print tables shaped like the paper's (Table I, Table II,
Figure 6's phase list) so the output can be read side by side with the
PDF.  Only fixed-width text — no plotting dependencies.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table", "format_comparison_table"]


def format_table(
    title: str, rows: Sequence[tuple[str, str]], min_width: int = 40
) -> str:
    """A two-column boxed table.

    >>> print(format_table("Demo", [("a", "1")]))  # doctest: +SKIP
    """
    label_width = max([len(label) for label, _ in rows] + [len(title), min_width // 2])
    value_width = max([len(value) for _, value in rows] + [8])
    total = label_width + value_width + 7
    lines = ["+" + "-" * (total - 2) + "+"]
    lines.append("| " + title.ljust(total - 4) + " |")
    lines.append("+" + "-" * (total - 2) + "+")
    for label, value in rows:
        lines.append(f"| {label.ljust(label_width)} | {value.rjust(value_width)} |")
    lines.append("+" + "-" * (total - 2) + "+")
    return "\n".join(lines)


def format_comparison_table(
    title: str,
    rows: Sequence[tuple[str, str, str]],
    headers: tuple[str, str, str] = ("metric", "paper", "measured"),
) -> str:
    """A three-column table: metric, paper-reported value, our value."""
    widths = [
        max([len(r[i]) for r in rows] + [len(headers[i])]) for i in range(3)
    ]
    total = sum(widths) + 10
    lines = ["+" + "-" * (total - 2) + "+"]
    lines.append("| " + title.ljust(total - 4) + " |")
    lines.append("+" + "-" * (total - 2) + "+")
    header = (
        f"| {headers[0].ljust(widths[0])} | {headers[1].rjust(widths[1])} "
        f"| {headers[2].rjust(widths[2])} |"
    )
    lines.append(header)
    lines.append("+" + "-" * (total - 2) + "+")
    for metric, paper, measured in rows:
        lines.append(
            f"| {metric.ljust(widths[0])} | {paper.rjust(widths[1])} "
            f"| {measured.rjust(widths[2])} |"
        )
    lines.append("+" + "-" * (total - 2) + "+")
    return "\n".join(lines)
