"""Span-based tracing with explicit context propagation.

A :class:`Span` covers one named phase of work — ``request``,
``admission``, ``batch``, ``phase1``, ``shard``, ``stp``, ``phase2``,
``license`` — and owns its children, forming a tree per root.  Context
is propagated *explicitly*: every instrumented call site receives its
parent span as an argument (``span=None`` disables tracing at zero
cost).  There are no globals and no thread-locals on the hot path, so
the scatter-gather thread pool in ``cluster.router`` cannot smear
context between shards, and an untraced run executes the exact same
protocol code.

Two properties matter more than anything else here:

* **Transcript neutrality** — span ids come from the tracer's *own*
  :class:`~repro.crypto.rand.DeterministicRandomSource` (or any injected
  :class:`~repro.crypto.rand.RandomSource`), never from the protocol
  rng, so enabling tracing cannot shift a single protocol draw.  Traced
  and untraced runs produce byte-identical transcripts (asserted in
  ``tests/resilience/test_chaos.py`` and the loadtest acceptance test).
* **Secret hygiene** — attribute keys are checked against the secret
  denylist at record time (raising
  :class:`~repro.errors.TelemetryError`), and the TEL001 audit rule
  flags violating call sites statically.

Span *trees* are compared structurally via :meth:`Span.signature`
(names + nesting + status, no ids/durations), which is the determinism
contract: same seed → same tree shape, even though wall-clock
durations differ run to run.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator

from repro.crypto.rand import DeterministicRandomSource, RandomSource
from repro.errors import TelemetryError

from .metrics import SECRET_LABEL_NAMES

__all__ = ["Span", "Tracer", "child"]

#: Values larger than this are almost certainly protocol integers
#: (ciphertexts, key material) rather than operational attributes;
#: recording one is refused outright.
_MAX_INT_ATTRIBUTE = 1 << 63


def _check_attributes(attributes: dict) -> None:
    for key, value in attributes.items():
        if key in SECRET_LABEL_NAMES:
            raise TelemetryError(
                f"span attribute {key!r} names secret material; "
                "telemetry must never record secrets"
            )
        if isinstance(value, int) and not isinstance(value, bool):
            if abs(value) >= _MAX_INT_ATTRIBUTE:
                raise TelemetryError(
                    f"span attribute {key!r} holds a {value.bit_length()}-bit "
                    "integer — protocol-sized values are refused as probable "
                    "ciphertext/key material"
                )


class Span:
    """One timed, named phase of work in a request's lifecycle.

    Spans are created through :class:`Tracer` (roots) or
    :meth:`Span.child`; end them with :meth:`end` or use them as context
    managers.  Attributes are small operational facts (su id, request
    id, shard index, batch size) — never protocol values.
    """

    __slots__ = (
        "tracer", "span_id", "parent_id", "name", "attributes",
        "children", "started_at", "ended_at", "status",
    )

    def __init__(
        self,
        tracer: "Tracer",
        span_id: str,
        parent_id: str | None,
        name: str,
        attributes: dict,
    ) -> None:
        _check_attributes(attributes)
        self.tracer = tracer
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attributes = dict(attributes)
        self.children: list[Span] = []
        self.started_at = tracer._clock()
        self.ended_at: float | None = None
        self.status = "ok"

    # -- lifecycle ---------------------------------------------------

    def child(self, name: str, **attributes) -> "Span":
        """Open a child span; the caller must ``end`` it (or ``with`` it)."""
        span = Span(
            self.tracer, self.tracer._next_id(), self.span_id, name, attributes
        )
        self.children.append(span)
        return span

    def set_attribute(self, key: str, value) -> None:
        _check_attributes({key: value})
        self.attributes[key] = value

    def record_error(self, exc: BaseException) -> None:
        """Mark the span failed; records the exception *type* only."""
        self.status = f"error:{type(exc).__name__}"

    def end(self) -> None:
        if self.ended_at is None:
            self.ended_at = self.tracer._clock()

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc is not None:
            self.record_error(exc)
        self.end()

    # -- reading -----------------------------------------------------

    @property
    def duration_s(self) -> float:
        end = self.ended_at if self.ended_at is not None else self.tracer._clock()
        return end - self.started_at

    def find(self, name: str) -> Iterator["Span"]:
        """Depth-first iterator over descendants (and self) named ``name``."""
        if self.name == name:
            yield self
        for span_child in self.children:
            yield from span_child.find(name)

    def signature(self) -> tuple:
        """Structural identity: ``(name, status, (child signatures...))``.

        Excludes span ids, timestamps, durations, and attribute values,
        so two runs of the same seeded workload compare equal even
        though they ran at different speeds.
        """
        return (
            self.name,
            self.status,
            tuple(span_child.signature() for span_child in self.children),
        )

    def to_dict(self) -> dict:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "status": self.status,
            "attributes": dict(self.attributes),
            "duration_s": self.duration_s,
            "children": [span_child.to_dict() for span_child in self.children],
        }

    def render(self, indent: int = 0) -> str:
        """Human-readable one-span-per-line tree."""
        attrs = " ".join(
            f"{k}={self.attributes[k]}" for k in sorted(self.attributes)
        )
        status = "" if self.status == "ok" else f" [{self.status}]"
        line = (
            f"{'  ' * indent}{self.name}  {self.duration_s * 1000.0:.2f} ms"
            f"{status}{('  ' + attrs) if attrs else ''}"
        )
        lines = [line]
        lines.extend(
            span_child.render(indent + 1) for span_child in self.children
        )
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, id={self.span_id}, children={len(self.children)})"


class Tracer:
    """Creates spans with deterministic ids and collects finished roots.

    ``rng`` defaults to a :class:`DeterministicRandomSource` seeded from
    a fixed label, so two tracers observing the same seeded workload
    assign identical span ids.  Id allocation takes a lock —
    ``DeterministicRandomSource`` is a stateful counter DRBG and the
    cluster router starts spans from pool threads — but the lock guards
    only the 64-bit draw, never protocol work.
    """

    #: Fixed seed for span-id generation.  The tracer must never draw
    #: from the protocol rng (that would perturb transcripts), so it
    #: owns an rng of its own; determinism across runs is the point, so
    #: the seed is a constant rather than entropy.
    DEFAULT_SEED = 0x7E1E_5EED

    def __init__(self, rng: RandomSource | None = None, clock=time.perf_counter) -> None:
        self._rng = rng if rng is not None else DeterministicRandomSource(self.DEFAULT_SEED)
        self._clock = clock
        self._id_lock = threading.Lock()
        self.roots: list[Span] = []

    def _next_id(self) -> str:
        with self._id_lock:
            return f"{self._rng.randbits(64):016x}"

    def start_span(self, name: str, **attributes) -> Span:
        """Open a root span; it is retained in :attr:`roots`."""
        span = Span(self, self._next_id(), None, name, attributes)
        self.roots.append(span)
        return span

    def signature(self) -> tuple:
        """Structural signature of the whole trace (all root trees)."""
        return tuple(root.signature() for root in self.roots)

    def render(self) -> str:
        return "\n".join(root.render() for root in self.roots)

    def find(self, name: str) -> Iterator[Span]:
        for root in self.roots:
            yield from root.find(name)

    def phase_latency(self) -> dict[str, dict[str, float]]:
        """Per-phase latency breakdown across every span in the trace.

        Returns ``{span_name: {count, total_s, mean_s, max_s}}`` —
        the summary the ``repro trace`` CLI prints under the tree.
        """
        out: dict[str, dict[str, float]] = {}
        stack = list(self.roots)
        while stack:
            span = stack.pop()
            stack.extend(span.children)
            entry = out.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "mean_s": 0.0, "max_s": 0.0}
            )
            duration = span.duration_s
            entry["count"] += 1
            entry["total_s"] += duration
            if duration > entry["max_s"]:
                entry["max_s"] = duration
        for entry in out.values():
            entry["mean_s"] = entry["total_s"] / entry["count"]
        return out


def child(span: Span | None, name: str, **attributes) -> Span | None:
    """``span.child(...)`` that tolerates ``span=None`` (tracing off).

    The standard idiom at instrumented call sites::

        with nullcontext(child(span, "phase1", su=su_id)) as phase_span:
            ...

    or, when the callee threads the span onward::

        phase_span = child(span, "phase1")
        try:
            ...
        finally:
            if phase_span is not None:
                phase_span.end()
    """
    if span is None:
        return None
    return span.child(name, **attributes)
