"""Unified metrics: counters, gauges, histograms, and exposition.

This module is the one metrics plane for the whole stack — the service
broker, the cluster router, the retry/circuit-breaker policy engine,
the transports, and the chaos harness all report through one
:class:`MetricsRegistry`.  (It absorbs the former
``repro.service.metrics``, which survives as a deprecation shim.)  The
design goals are the usual ones for an embedded metrics layer:

* **cheap on the hot path** — recording a sample is a few attribute
  writes, no locks (CPython's GIL suffices for our single-loop broker),
  no string formatting;
* **bounded memory** — histograms keep a fixed-size reservoir of recent
  samples for percentile estimation plus exact running count/sum/min/max
  and fixed-boundary cumulative buckets, so a week-long soak test cannot
  grow the registry;
* **machine-readable** — :meth:`MetricsRegistry.snapshot` returns plain
  dicts ready for ``json.dumps`` and
  :meth:`MetricsRegistry.to_prometheus` renders the Prometheus text
  exposition format, so live scrapes and ``BENCH_*.json`` files come
  from the same instruments.

Labels follow the Prometheus convention textually —
``requests_rejected{reason=queue_full}`` is simply a distinct metric
name — which keeps the registry a flat ``dict`` without a label-matching
engine; the exposition renderer splits the key back into name + labels.

**Secret hygiene**: label *values* are plain strings chosen by the
caller; a label key that names secret material (``sk``, ``alpha``,
``eta``, ...) is rejected at record time, and the TEL001 audit rule
flags such call sites statically.
"""

from __future__ import annotations

import json
import math
import time
from bisect import bisect_left
from collections import deque
from contextlib import contextmanager
from typing import Iterator

from repro.errors import TelemetryError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SECRET_LABEL_NAMES",
    "labelled",
    "parse_labelled",
]

#: Fixed histogram bucket boundaries (seconds).  Spanning 100 µs to
#: 60 s covers everything from a single homomorphic multiply to a
#: paper-setting 2048-bit epoch; a ``+Inf`` bucket is implicit.
DEFAULT_BUCKETS: tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Identifiers that name secret material anywhere in the protocol stack.
#: Mirrors ``repro.audit.engine.DEFAULT_SECRET_NAMES`` (kept literal here
#: so the telemetry plane never imports the analyzer).
SECRET_LABEL_NAMES: frozenset[str] = frozenset(
    {"sk", "lam", "mu", "blinding", "alpha", "beta", "epsilon", "eta"}
)


def labelled(name: str, **labels: str) -> str:
    """``labelled("rejected", reason="queue_full")`` → ``rejected{reason=queue_full}``."""
    if not labels:
        return name
    for key in labels:
        if key in SECRET_LABEL_NAMES:
            raise TelemetryError(
                f"metric label {key!r} names secret material; "
                "telemetry must never record secrets"
            )
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


def parse_labelled(key: str) -> tuple[str, dict[str, str]]:
    """Split a flat registry key back into ``(name, labels)``."""
    if "{" not in key or not key.endswith("}"):
        return key, {}
    name, _, inner = key.partition("{")
    labels: dict[str, str] = {}
    for pair in inner[:-1].split(","):
        if not pair:
            continue
        label, _, value = pair.partition("=")
        labels[label] = value
    return name, labels


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, pool size, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Sample distribution with exact totals, buckets, and percentiles.

    ``count``/``sum``/``min``/``max`` and the cumulative fixed-boundary
    ``buckets`` are exact over every observation.  Percentiles are
    computed over the most recent ``reservoir`` samples — a sliding
    window, which for a service runtime is usually *more* useful than
    all-time percentiles (it reflects current behaviour), and is what
    keeps memory bounded.
    """

    __slots__ = ("count", "total", "min", "max", "bounds", "bucket_counts", "_samples")

    def __init__(
        self,
        reservoir: int = 4096,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be positive")
        if tuple(sorted(buckets)) != tuple(buckets):
            raise ValueError("bucket boundaries must be sorted ascending")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.bounds: tuple[float, ...] = tuple(buckets)
        #: Per-boundary counts; index ``len(bounds)`` is the +Inf bucket.
        self.bucket_counts: list[int] = [0] * (len(self.bounds) + 1)
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self._samples.append(value)

    def cumulative_buckets(self) -> tuple[tuple[float, int], ...]:
        """``((le_bound, cumulative_count), ...)`` ending with ``(inf, count)``."""
        out = []
        running = 0
        for bound, bucket in zip(self.bounds, self.bucket_counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), self.count))
        return tuple(out)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = math.ceil(q / 100.0 * len(ordered))
        return ordered[max(0, min(len(ordered) - 1, rank - 1))]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._samples)

        def pct(q: float) -> float:
            rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


def _format_value(value: float) -> str:
    """Prometheus sample value: integers render bare, floats via repr."""
    if isinstance(value, bool):  # pragma: no cover - no bool metrics exist
        return "1" if value else "0"
    if isinstance(value, int) or (isinstance(value, float) and value.is_integer()):
        return str(int(value))
    return repr(float(value))


def _format_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    def escape(value: str) -> str:
        # Prometheus 0.0.4 label-value escapes: backslash, quote, newline.
        return (
            value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        )

    inner = ",".join(
        f'{k}="{escape(str(v))}"' for k, v in sorted(labels.items())
    )
    return "{" + inner + "}"


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("x").inc()`` — the registry owns the instances,
    so every component holding the registry sees the same metric.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = labelled(name, **labels)
        try:
            return self._counters[key]
        except KeyError:
            metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = labelled(name, **labels)
        try:
            return self._gauges[key]
        except KeyError:
            metric = self._gauges[key] = Gauge()
            return metric

    def histogram(
        self,
        name: str,
        reservoir: int = 4096,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: str,
    ) -> Histogram:
        key = labelled(name, **labels)
        try:
            return self._histograms[key]
        except KeyError:
            metric = self._histograms[key] = Histogram(reservoir, buckets)
            return metric

    @contextmanager
    def timer(self, name: str, **labels: str) -> Iterator[None]:
        """Time a block and record seconds into histogram ``name``."""
        histogram = self.histogram(name, **labels)
        start = self._clock()
        try:
            yield
        finally:
            histogram.observe(self._clock() - start)

    def snapshot(self) -> dict:
        """Plain-dict state of every metric, ready for ``json.dumps``."""
        return {
            "counters": {k: c.snapshot() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.snapshot() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)

    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4).

        Counters and gauges render one sample each; histograms render
        cumulative ``_bucket{le=...}`` samples plus ``_sum``/``_count``.
        ``# TYPE`` headers are emitted once per metric family, families
        sorted by name for a stable scrape.
        """
        families: dict[str, list[tuple[str, list[str]]]] = {}
        typed: dict[str, str] = {}

        def add(key: str, kind: str, render) -> None:
            name, labels = parse_labelled(key)
            typed.setdefault(name, kind)
            families.setdefault(name, []).append((key, render(name, labels)))

        for key, counter in self._counters.items():
            add(key, "counter", lambda name, labels, c=counter: [
                f"{name}{_format_labels(labels)} {_format_value(c.value)}"
            ])
        for key, gauge in self._gauges.items():
            add(key, "gauge", lambda name, labels, g=gauge: [
                f"{name}{_format_labels(labels)} {_format_value(g.value)}"
            ])
        for key, histogram in self._histograms.items():
            def render_hist(name, labels, h=histogram):
                lines = []
                for bound, cumulative in h.cumulative_buckets():
                    le = "+Inf" if bound == float("inf") else _format_value(bound)
                    lines.append(
                        f"{name}_bucket{_format_labels({**labels, 'le': le})} "
                        f"{cumulative}"
                    )
                total = h.total if h.count else 0.0
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(total)}")
                lines.append(f"{name}_count{_format_labels(labels)} {h.count}")
                return lines

            add(key, "histogram", render_hist)

        out = []
        for name in sorted(families):
            out.append(f"# TYPE {name} {typed[name]}")
            # Sort series by their flat key for scrape stability, but keep
            # each series' own lines in render order (histogram buckets
            # must stay in ascending ``le`` order).
            for _, lines in sorted(families[name], key=lambda pair: pair[0]):
                out.extend(lines)
        return "\n".join(out) + ("\n" if out else "")
