"""Profiling hooks: wall-clock timers and optional cProfile capture.

The benchmarks used to hand-roll ``time.perf_counter()`` pairs and
nearest-rank percentile math in three places; this module is the one
implementation.  :class:`Timer` measures repeated laps of one phase,
:func:`phase_profile` times a dict of labelled callables in one sweep,
and :class:`ProfileCapture` wraps :mod:`cProfile` so an epoch (or any
block) can be profiled on demand — e.g. per-epoch captures from the
broker when ``profile_epochs`` is enabled.

Everything here reports through plain floats/dicts so the benchmark
harness, the CLI, and tests consume the same numbers that a
:class:`~repro.telemetry.metrics.MetricsRegistry` histogram would see.
"""

from __future__ import annotations

import cProfile
import io
import math
import pstats
import time
from contextlib import contextmanager
from typing import Callable, Iterator

__all__ = ["Timer", "phase_profile", "ProfileCapture", "percentile"]


def percentile(samples: list[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 100]) of ``samples``.

    The textbook definition: the smallest sample such that at least
    ``q`` percent of the data is <= it (``ceil(q/100 * n)``-th order
    statistic).  No interpolation, so the result is always an observed
    sample.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    rank = math.ceil(q / 100.0 * len(ordered))
    return ordered[max(0, min(len(ordered) - 1, rank - 1))]


class Timer:
    """Repeated wall-clock laps of one named phase.

    ::

        timer = Timer("phase1")
        for _ in range(rounds):
            with timer.lap():
                run_phase1()
        print(timer.mean_s, timer.p95_s)
    """

    def __init__(self, name: str = "", clock=time.perf_counter) -> None:
        self.name = name
        self._clock = clock
        self.laps: list[float] = []

    @contextmanager
    def lap(self) -> Iterator[None]:
        start = self._clock()
        try:
            yield
        finally:
            self.laps.append(self._clock() - start)

    def time(self, fn: Callable, *args, **kwargs):
        """Time one call of ``fn``; returns its result."""
        with self.lap():
            return fn(*args, **kwargs)

    def reset(self) -> None:
        """Discard accumulated laps (between measurement windows)."""
        self.laps.clear()

    @property
    def count(self) -> int:
        return len(self.laps)

    @property
    def total_s(self) -> float:
        return sum(self.laps)

    @property
    def mean_s(self) -> float:
        return self.total_s / len(self.laps) if self.laps else 0.0

    @property
    def min_s(self) -> float:
        return min(self.laps) if self.laps else 0.0

    @property
    def max_s(self) -> float:
        return max(self.laps) if self.laps else 0.0

    @property
    def p50_s(self) -> float:
        return percentile(self.laps, 50)

    @property
    def p95_s(self) -> float:
        return percentile(self.laps, 95)

    def summary(self) -> dict[str, float]:
        return {
            "count": self.count,
            "total_s": self.total_s,
            "mean_s": self.mean_s,
            "min_s": self.min_s,
            "max_s": self.max_s,
            "p50_s": self.p50_s,
            "p95_s": self.p95_s,
        }


def phase_profile(
    phases: dict[str, Callable[[], object]],
    rounds: int = 1,
    clock=time.perf_counter,
) -> dict[str, dict[str, float]]:
    """Time each labelled phase ``rounds`` times; returns summaries.

    ``{"phase1": lambda: ..., "phase2": lambda: ...}`` →
    ``{"phase1": {"count": r, "mean_s": ..., ...}, ...}``.  Phases run
    in dict order, all laps of one phase back to back.
    """
    if rounds < 1:
        raise ValueError("rounds must be positive")
    out: dict[str, dict[str, float]] = {}
    for name, fn in phases.items():
        timer = Timer(name, clock=clock)
        for _ in range(rounds):
            timer.time(fn)
        out[name] = timer.summary()
    return out


class ProfileCapture:
    """On-demand :mod:`cProfile` capture of a code block.

    ::

        capture = ProfileCapture()
        with capture.capture():
            allocator.allocate(epoch)
        print(capture.report(limit=10))

    Repeated captures accumulate into the same stats, so the broker can
    profile every epoch of a loadtest and report one merged profile.
    """

    def __init__(self) -> None:
        self._profiles: list[cProfile.Profile] = []

    @contextmanager
    def capture(self) -> Iterator[None]:
        profile = cProfile.Profile()
        profile.enable()
        try:
            yield
        finally:
            profile.disable()
            self._profiles.append(profile)

    @property
    def captures(self) -> int:
        return len(self._profiles)

    def report(self, limit: int = 20, sort: str = "cumulative") -> str:
        """Merged text report of every capture (empty string if none)."""
        if not self._profiles:
            return ""
        buffer = io.StringIO()
        stats = pstats.Stats(self._profiles[0], stream=buffer)
        for extra in self._profiles[1:]:
            stats.add(extra)
        stats.sort_stats(sort).print_stats(limit)
        return buffer.getvalue()
