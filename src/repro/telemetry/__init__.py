"""repro.telemetry — unified tracing, metrics, and profiling plane.

One observability surface for the whole protocol stack:

* :mod:`repro.telemetry.metrics` — counters, gauges, fixed-bucket
  histograms in a :class:`MetricsRegistry` with JSON and Prometheus
  text exposition.  Absorbs the former ``repro.service.metrics``.
* :mod:`repro.telemetry.tracing` — span-based tracer with explicit
  context propagation and deterministic span ids, so tracing never
  perturbs protocol transcripts.
* :mod:`repro.telemetry.profiling` — ``Timer`` / ``phase_profile`` /
  ``ProfileCapture`` hooks shared by benchmarks and the service.

Secret-hygiene invariant: no secret-typed value (keys, plaintexts,
blinding factors) may appear as a span attribute or metric label —
enforced at runtime by both layers and statically by the TEL001 audit
rule.  See ``docs/telemetry.md``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    SECRET_LABEL_NAMES,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
    parse_labelled,
)
from .profiling import ProfileCapture, Timer, percentile, phase_profile
from .tracing import Span, Tracer, child

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
    "SECRET_LABEL_NAMES",
    "labelled",
    "parse_labelled",
    "Span",
    "Tracer",
    "child",
    "Timer",
    "phase_profile",
    "ProfileCapture",
    "percentile",
]
