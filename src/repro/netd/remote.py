"""The authority server and the broker-side proxies for remote workers.

Determinism across process boundaries hinges on one rule: **every
protocol draw happens against the broker's RNG stream**.  Local draws
(blinding triples, obfuscator nonces, keys) already do; the one remote
consumer — the STP worker's per-cell re-encryption nonces — reaches
back over the wire instead of drawing locally.  :class:`AuthorityServer`
is that reach-back point: it serves ``rand`` and ``clock`` frames
straight from the coordinator's (possibly journaling) sources, so the
unified draw stream — and therefore the epoch journal — covers the
whole deployment, and a socket-plane run replays the exact in-memory
draw order.

The same server doubles as the bootstrap registry.  Workers *pull*
their configuration: dial the authority, poll ``bootstrap`` until the
coordinator has registered a provider, apply it, bind, report ready.
Because providers serve the *current* state (blocks, cached PU updates,
registered SU keys), a crash restart re-runs the identical pull and
needs no push-style resync from the broker.

The proxies — :class:`RemoteStp`, :class:`RemoteShardSet` /
:class:`RemoteShard` — present the exact duck interfaces of
:class:`~repro.pisa.stp_server.StpServer` and
:class:`~repro.cluster.replica.ShardReplicaSet`, so the router, batch
allocator, and :class:`~repro.cluster.coordinator.ClusterSdc` run
unmodified over real sockets.
"""

from __future__ import annotations

import asyncio
import dataclasses
import signal
import threading
import time

from repro.cluster.replica import FailoverEvent
from repro.crypto.paillier import PaillierKeypair, PaillierPublicKey
from repro.crypto.rand import RandomSource
from repro.crypto.serialization import (
    decode_int,
    encode_bytes,
    encode_int,
    encode_private_key,
    encode_public_key,
)
from repro.errors import ProtocolError, ReproError, TransportError
from repro.netd.framing import read_frame, write_frame
from repro.netd.transport import PeerClient, SocketTransport, classify_network_error
from repro.netd.wire import (
    decode_control,
    decode_phase1_response,
    decode_phase2_response,
    encode_control,
    encode_error,
    encode_phase1_request,
    encode_phase2_request,
)
from repro.pisa.keys import KeyDirectory
from repro.pisa.messages import SignExtractionRequest, SignExtractionResponse
from repro.pisa.stp_server import StpStats

__all__ = [
    "AuthorityServer",
    "RemoteClock",
    "RemoteRandomSource",
    "RemoteShard",
    "RemoteShardSet",
    "RemoteStp",
]


class AuthorityServer:
    """The broker's single source of randomness, time, and bootstrap state.

    Runs on the deployment's :class:`~repro.netd.transport.NetLoop`.
    Handlers execute *off* the loop thread (``asyncio.to_thread``): a
    journaling RandomSource fsyncs its journal on every draw and
    bootstrap providers encode private keys under locks, and neither
    belongs on the event loop.  A dispatch lock serialises the handlers
    instead, so concurrent remote draws still see one stream in one
    order — exactly like concurrent local ones.
    """

    def __init__(
        self,
        runner,
        rng: RandomSource,
        clock,
        host: str = "127.0.0.1",
        ssl_context=None,
        metrics=None,
    ) -> None:
        self._runner = runner
        self._rng = rng
        self._clock = clock
        self._host = host
        self._ssl = ssl_context
        self._metrics = metrics
        self._providers: dict[str, object] = {}
        self._lock = threading.Lock()
        #: Serialises _dispatch across connections now that handlers run
        #: in worker threads: draw order must stay a single stream.
        self._dispatch_lock = threading.Lock()
        self._server: asyncio.AbstractServer | None = None
        self.address: tuple[str, int] | None = None

    def register_bootstrap(self, name: str, provider) -> None:
        """Register ``provider() -> bytes`` as worker ``name``'s config."""
        with self._lock:
            self._providers[name] = provider

    def start(self) -> tuple[str, int]:
        self.address = self._runner.run(self._start(), timeout=10.0)
        return self.address

    async def _start(self) -> tuple[str, int]:
        try:
            self._server = await asyncio.start_server(
                self._serve, self._host, 0, ssl=self._ssl
            )
        except Exception as exc:
            raise classify_network_error(exc, "authority") from exc
        port = self._server.sockets[0].getsockname()[1]
        return (self._host, port)

    async def _serve(self, reader, writer) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                try:
                    # Off-loop: randbits on a journaling source fsyncs,
                    # bootstrap providers serialize keypairs — blocking
                    # work that would stall every authority client.
                    kind, payload = await asyncio.to_thread(
                        self._dispatch, frame.kind, frame.payload
                    )
                except ReproError as exc:
                    kind, payload = "err", encode_error(exc)
                await write_frame(writer, kind, frame.seq, payload)
                if self._metrics is not None:
                    self._metrics.counter(
                        "netd_frames_total", peer="authority"
                    ).inc(2)
        except (asyncio.IncompleteReadError, ConnectionError, OSError):
            pass
        finally:
            writer.close()

    def _dispatch(self, kind: str, payload: bytes) -> tuple[str, bytes]:
        with self._dispatch_lock:
            return self._dispatch_locked(kind, payload)

    def _dispatch_locked(self, kind: str, payload: bytes) -> tuple[str, bytes]:
        if kind == "hello":
            return "hello", encode_control({})
        if kind == "ping":
            return "ok", encode_control({"ok": True})
        if kind == "rand":
            obj, _ = decode_control(payload)
            value = self._rng.randbits(int(obj["bits"]))
            return "ok", encode_int(value)
        if kind == "clock":
            return "ok", encode_control({"value": float(self._clock())})
        if kind == "bootstrap":
            obj, _ = decode_control(payload)
            name = str(obj["name"])
            with self._lock:
                provider = self._providers.get(name)
            if provider is None:
                # The worker started before the coordinator finished
                # building; tell it to poll again rather than erroring.
                return "retry", encode_control({})
            return "ok", provider()
        raise TransportError(f"authority cannot serve frame kind {kind!r}")

    def stop(self) -> None:
        server = self._server
        if server is None:
            return
        self._server = None

        async def _close() -> None:
            server.close()
            await server.wait_closed()

        try:
            self._runner.run(_close(), timeout=5.0)
        except Exception:  # pragma: no cover - teardown best effort
            pass


class RemoteRandomSource(RandomSource):
    """A worker's view of the broker's draw stream.

    Only :meth:`randbits` crosses the wire; ``randbelow``'s rejection
    sampling runs locally on top of it, so the *number and width* of
    raw draws is bit-identical to an in-process
    :class:`~repro.crypto.rand.RandomSource` — the property the
    transcript-equivalence test rests on.
    """

    def __init__(self, peer: PeerClient) -> None:
        self._peer = peer

    def randbits(self, bits: int) -> int:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0
        frame = self._peer.transact("rand", encode_control({"bits": int(bits)}))
        value, _ = decode_int(frame.payload, 0)
        return value


class RemoteClock:
    """A worker's view of the broker's (possibly journaled) clock."""

    def __init__(self, peer: PeerClient) -> None:
        self._peer = peer

    def __call__(self) -> float:
        frame = self._peer.transact("clock", encode_control({}))
        obj, _ = decode_control(frame.payload)
        return float(obj["value"])


class RemoteStp:
    """Broker-side proxy for an STP worker process.

    The key directory lives *here* (the broker enrols SUs and validates
    licenses); registrations are mirrored to the worker both live (a
    ``register_su`` frame) and via the bootstrap provider, so a
    restarted STP re-learns every key.  The group keypair is generated
    broker-side — at the exact draw position ``StpServer.__init__``
    would use — and shipped to the worker in its bootstrap.
    """

    def __init__(
        self,
        transport: SocketTransport,
        endpoint: str,
        keypair: PaillierKeypair,
        key_bits: int,
    ) -> None:
        self._transport = transport
        self._endpoint = endpoint
        self._keypair = keypair
        self.key_bits = key_bits
        self.directory = KeyDirectory(keypair.public_key)
        #: su_id → public key, in registration order (dicts preserve it);
        #: the bootstrap provider serialises this.
        self._su_registry: dict[str, PaillierPublicKey] = {}
        self.stats = StpStats()

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self._keypair.public_key

    def bootstrap_payload(self) -> bytes:
        su_ids = list(self._su_registry)
        attachments = [encode_private_key(self._keypair.private_key)]
        attachments.extend(
            encode_public_key(self._su_registry[su_id]) for su_id in su_ids
        )
        return encode_control(
            {"role": "stp", "key_bits": self.key_bits, "sus": su_ids},
            *attachments,
        )

    def register_su(self, su_id: str, public_key: PaillierPublicKey) -> None:
        self.directory.register_su_key(su_id, public_key)
        self._su_registry[su_id] = public_key
        self._transport.transact(
            self._endpoint,
            "register_su",
            encode_control({"su_id": su_id}, encode_public_key(public_key)),
        )

    def handle_sign_extraction(
        self, request: SignExtractionRequest, span=None
    ) -> SignExtractionResponse:
        if span is not None:
            span.set_attribute("rows", len(request.matrix))
        # Same early validation (and error type) as the local server —
        # a missing key must not cost a round trip.
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has not registered a key")
        su_key = self.directory.su_key(request.su_id)
        frame = self._transport.transact(
            self._endpoint, "sign_req", request.to_bytes()
        )
        response = SignExtractionResponse.from_bytes(frame.payload, su_key)
        cells = sum(len(row) for row in request.matrix)
        self.stats.cells_decrypted += cells
        self.stats.cells_encrypted += cells
        self.stats.conversions += 1
        return response


class RemoteShard:
    """The ``.primary`` face of a shard worker: sub-queries over frames.

    Phase-2 matrices are under the requesting SU's key, which the worker
    does not hold — so the frame prepends ``pk_j`` and the worker
    decodes against it (ciphertext validation needs the right modulus).
    """

    def __init__(self, owner: "RemoteShardSet") -> None:
        self._owner = owner
        self.shard_id = owner.shard_id

    @property
    def alive(self) -> bool:
        return self._owner.supervisor.is_running(self.shard_id)

    def process_phase1(self, request):
        self._owner.fire_subquery_hook("phase1", request)
        frame = self._owner.transact("phase1", encode_phase1_request(request))
        return decode_phase1_response(frame.payload, self._owner.group_public_key)

    def process_phase2(self, request):
        self._owner.fire_subquery_hook("phase2", request)
        su_key = request.matrix[0][0].public_key
        payload = encode_bytes(encode_public_key(su_key)) + encode_phase2_request(
            request
        )
        frame = self._owner.transact("phase2", payload)
        return decode_phase2_response(frame.payload, su_key)


class RemoteShardSet:
    """Broker-side stand-in for :class:`~repro.cluster.replica.ShardReplicaSet`.

    There is no warm standby process; the "promote" of the socket plane
    is *restart and re-bootstrap* — :meth:`promote` asks the supervisor
    for a live worker, and the worker pulls its full current state
    (blocks, latest update per PU, committed epoch) from the bootstrap
    provider, which this object keeps serving from its caches.  Since
    ``⊕`` is commutative and the shard keeps only the latest update per
    PU, replaying those latest updates onto a fresh shard reproduces the
    exact pre-crash aggregate ``W̃`` state.
    """

    def __init__(
        self,
        shard_id: str,
        transport: SocketTransport,
        supervisor,
        authority: AuthorityServer,
        scenario_config,
        group_public_key: PaillierPublicKey,
        heartbeat_timeout_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        self.shard_id = shard_id
        self._transport = transport
        self.supervisor = supervisor
        self._scenario_spec = dataclasses.asdict(scenario_config)
        self.group_public_key = group_public_key
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._clock = clock
        self._lock = threading.Lock()
        self._blocks: set[int] = set()
        self._pu_updates: dict[str, bytes] = {}
        self._last_epoch = -1
        self._hook = None
        self._last_heartbeat = clock()
        #: Highest fencing token installed on this shard; travels in the
        #: bootstrap so a restarted worker resumes already fenced.
        self.fence_token = 0
        self.suspect = False
        self.failovers: list[FailoverEvent] = []
        self.primary = RemoteShard(self)
        authority.register_bootstrap(shard_id, self.bootstrap_payload)

    # -- bootstrap -----------------------------------------------------------------

    def bootstrap_payload(self) -> bytes:
        with self._lock:
            pu_ids = sorted(self._pu_updates)
            attachments = [encode_public_key(self.group_public_key)]
            attachments.extend(self._pu_updates[pu_id] for pu_id in pu_ids)
            return encode_control(
                {
                    "role": "shard",
                    "shard_id": self.shard_id,
                    "scenario": self._scenario_spec,
                    "blocks": sorted(self._blocks),
                    "pus": pu_ids,
                    "epoch": self._last_epoch,
                    "fence_token": self.fence_token,
                },
                *attachments,
            )

    # -- wiring --------------------------------------------------------------------

    def transact(self, kind: str, payload: bytes):
        return self._transport.transact(self.shard_id, kind, payload)

    def set_subquery_hook(self, hook) -> None:
        """Chaos seam: ``hook(phase, request)`` fires before each transact."""
        self._hook = hook

    def fire_subquery_hook(self, phase: str, request) -> None:
        hook = self._hook
        if hook is not None:
            hook(phase, request)

    # -- state fan-out (mirrors ShardReplicaSet) -----------------------------------

    def assign_blocks(self, blocks: tuple[int, ...]) -> None:
        with self._lock:
            self._blocks.update(blocks)
        self.transact("assign_blocks", encode_control({"blocks": sorted(blocks)}))

    def release_blocks(self, blocks: tuple[int, ...]) -> None:
        with self._lock:
            self._blocks.difference_update(blocks)
        self.transact("release_blocks", encode_control({"blocks": sorted(blocks)}))

    @property
    def blocks(self) -> tuple[int, ...]:
        with self._lock:
            return tuple(sorted(self._blocks))

    def apply_pu_update(self, message, fence_token: int = 0) -> None:
        raw = message.to_bytes()
        token = fence_token or self.fence_token
        with self._lock:
            self._pu_updates[message.pu_id] = raw
        # The token is a frame prefix, never part of the message bytes —
        # a PUUpdateMessage's bytes are protocol transcript.
        self.transact("pu_update", encode_int(token) + raw)

    def commit_epoch(
        self, epoch_id: int, snapshot: bool = True, fence_token: int = 0
    ) -> None:
        token = fence_token or self.fence_token
        with self._lock:
            self._last_epoch = max(self._last_epoch, epoch_id)
        self.transact(
            "commit_epoch",
            encode_control(
                {
                    "epoch": epoch_id,
                    "snapshot": bool(snapshot),
                    "fence_token": token,
                }
            ),
        )

    # -- liveness ------------------------------------------------------------------

    def record_heartbeat(self, now: float | None = None) -> None:
        with self._lock:
            self._last_heartbeat = self._clock() if now is None else now

    def heartbeat_age(self, now: float | None = None) -> float:
        with self._lock:
            reference = self._clock() if now is None else now
            return reference - self._last_heartbeat

    def is_alive(self, now: float | None = None) -> bool:
        return (
            self.primary.alive
            and self.heartbeat_age(now) <= self.heartbeat_timeout_s
        )

    def kill_primary(self) -> None:
        """Real fault injection: SIGKILL the worker process."""
        self.supervisor.kill(self.shard_id, signal.SIGKILL)

    # -- fencing / gray failure ----------------------------------------------------

    def serving_replica(self):
        """The socket plane has no warm standby; the primary always serves."""
        return self.primary

    def mark_suspect(self, suspect: bool = True) -> None:
        with self._lock:
            self.suspect = bool(suspect)

    def install_fence(self, token: int) -> None:
        """Push a new lease token at the worker (best-effort if it is dead).

        The broker-side ratchet is what matters for safety: every
        subsequent frame — including the restarted worker's bootstrap —
        carries the new token, so a worker that missed the live ``fence``
        frame (it was the one being deposed) still learns it before it
        can serve a single request.
        """
        with self._lock:
            if token > self.fence_token:
                self.fence_token = token
        try:
            self.transact("fence", encode_control({"token": int(token)}))
        except TransportError:
            # Dead or unreachable worker: the bootstrap provider carries
            # the token; nothing the old incarnation does can commit.
            pass

    # -- failover ------------------------------------------------------------------

    def promote(self) -> FailoverEvent:
        """Restart-and-re-bootstrap; the socket plane's failover."""
        self.supervisor.ensure_running(self.shard_id)
        self.record_heartbeat()
        with self._lock:
            self.suspect = False
            event = FailoverEvent(
                shard_id=self.shard_id,
                at=self._clock(),
                resumed_epoch=self._last_epoch,
                from_snapshot=False,
                fence_token=self.fence_token,
            )
            self.failovers.append(event)
        return event

    def __repr__(self) -> str:
        return (
            f"RemoteShardSet({self.shard_id!r}, "
            f"alive={self.primary.alive}, failovers={len(self.failovers)})"
        )
