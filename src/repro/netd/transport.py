"""The broker side of the socket plane: peer clients and the transport.

Blocking protocol code (the batch allocator, the router's scatter
threads) talks to workers through :class:`PeerClient.transact`, which
posts a coroutine onto a dedicated background event loop
(:class:`NetLoop`) and blocks the *calling* thread only.  Each peer
keeps a small connection pool with a bounded in-flight semaphore —
backpressure is per peer, so a slow shard cannot starve its siblings'
links.

:class:`SocketTransport` extends the in-memory
:class:`~repro.net.recording.TranscriptTransport`: ``send()`` stays the
pure accounting/fault-injection funnel (so ``transport_*`` metrics,
§VI-A byte totals, and injected-fault semantics are identical across
planes), while the actual wire I/O goes through :meth:`transact` with
its own ``netd_*`` metric families.  Keeping the two separate is what
makes the cross-plane metric and transcript parity hold exactly.

:func:`classify_network_error` is the satellite-taxonomy seam: real OS
failures map onto the same typed errors the chaos plans inject, so the
router's retry/failover policy handles a SIGKILLed worker process
exactly like a cut in-memory wire.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import errno
import itertools
import ssl
import threading
import time

from repro.errors import (
    HandshakeTimeoutError,
    IntegrityError,
    LinkDownError,
    PortInUseError,
    TransportError,
)
from repro.net.recording import TranscriptTransport
from repro.netd.framing import Frame, read_frame, write_frame
from repro.netd.wire import encode_control, raise_remote_error

__all__ = [
    "NetLoop",
    "LoopRunner",
    "PeerClient",
    "SocketTransport",
    "classify_network_error",
]

DEFAULT_CONNECT_TIMEOUT_S = 5.0
DEFAULT_REQUEST_TIMEOUT_S = 120.0
DEFAULT_RESOLVE_TIMEOUT_S = 30.0
DEFAULT_POOL_SIZE = 2
DEFAULT_MAX_IN_FLIGHT = 8
_RESOLVE_POLL_S = 0.02


def classify_network_error(exc: BaseException, peer: str = "peer") -> TransportError:
    """Map an OS/asyncio failure onto the socket plane's typed taxonomy.

    * refused / reset / broken pipe / peer closed mid-frame →
      :class:`~repro.errors.LinkDownError` — retryable, triggers the
      same promote-and-retry path as an injected link cut;
    * ``EADDRINUSE`` → :class:`~repro.errors.PortInUseError` — not
      retryable against the same address;
    * corrupt frame → :class:`~repro.errors.IntegrityError` passes
      through unchanged (the stream is untrustworthy, not the peer
      dead — the caller tears the connection down and re-dials).
    """
    if isinstance(exc, TransportError):
        return exc
    if isinstance(exc, OSError) and exc.errno == errno.EADDRINUSE:
        return PortInUseError(f"{peer}: address already in use: {exc}")
    if isinstance(
        exc,
        (
            ConnectionRefusedError,
            ConnectionResetError,
            BrokenPipeError,
            asyncio.IncompleteReadError,
            EOFError,
        ),
    ):
        return LinkDownError(f"link to {peer} is down: {type(exc).__name__}: {exc}")
    if isinstance(exc, (ConnectionError, OSError)):
        return LinkDownError(f"link to {peer} failed: {type(exc).__name__}: {exc}")
    return TransportError(f"{peer}: {type(exc).__name__}: {exc}")


class LoopRunner:
    """Blocking facade over a running asyncio loop owned by someone else."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    @property
    def loop(self) -> asyncio.AbstractEventLoop:
        return self._loop

    def run(self, coro, timeout: float | None = None):
        """Run ``coro`` on the loop; block the calling thread for the result."""
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(timeout)
        except concurrent.futures.TimeoutError:
            future.cancel()
            raise


class NetLoop(LoopRunner):
    """A private event loop on a daemon thread for all netd I/O.

    The loadtest driver owns the process's foreground ``asyncio.run``
    loop; netd I/O must not share it (blocking protocol threads wait on
    netd futures, and waiting on your own loop deadlocks).  One NetLoop
    per deployment carries every peer connection and the authority
    server.
    """

    def __init__(self, name: str = "netd-loop") -> None:
        loop = asyncio.new_event_loop()
        super().__init__(loop)
        self._thread = threading.Thread(target=self._main, name=name, daemon=True)
        self._thread.start()

    def _main(self) -> None:
        asyncio.set_event_loop(self._loop)
        self._loop.run_forever()

    def close(self) -> None:
        if not self._loop.is_closed():
            self._loop.call_soon_threadsafe(self._loop.stop)
            self._thread.join(timeout=5.0)
            self._loop.close()


class PeerClient:
    """A pooled, backpressured request/response client for one worker.

    ``address_provider`` is re-consulted on every dial, so a worker that
    restarts on a fresh ephemeral port is reachable as soon as the
    supervisor has read its new readiness file — no explicit reconnect
    step.  Connections are validated with a hello handshake on dial
    (bounded by ``connect_timeout_s`` →
    :class:`~repro.errors.HandshakeTimeoutError`), recycled through a
    pool of ``pool_size``, and discarded on any fault.  A semaphore
    bounds in-flight requests at ``max_in_flight``.
    """

    def __init__(
        self,
        name: str,
        address_provider,
        runner: LoopRunner,
        pool_size: int = DEFAULT_POOL_SIZE,
        max_in_flight: int = DEFAULT_MAX_IN_FLIGHT,
        connect_timeout_s: float = DEFAULT_CONNECT_TIMEOUT_S,
        request_timeout_s: float = DEFAULT_REQUEST_TIMEOUT_S,
        resolve_timeout_s: float = DEFAULT_RESOLVE_TIMEOUT_S,
        ssl_context: ssl.SSLContext | None = None,
        metrics=None,
    ) -> None:
        self.name = name
        self._address_provider = address_provider
        self._runner = runner
        self._pool_size = pool_size
        self._connect_timeout_s = connect_timeout_s
        self._request_timeout_s = request_timeout_s
        self._resolve_timeout_s = resolve_timeout_s
        self._ssl = ssl_context
        self._metrics = metrics
        self._seq = itertools.count()
        # Loop-confined state, created lazily on the runner's loop.
        self._pool: asyncio.LifoQueue | None = None
        self._sem: asyncio.Semaphore | None = None
        self._max_in_flight = max_in_flight
        self._closed = False

    def _count(self, family: str, amount: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(family, peer=self.name).inc(amount)

    # -- addressing (calling-thread side) -----------------------------------------

    def _resolve_address(self) -> tuple[str, int]:
        """Consult the provider, waiting out worker (re)starts.

        Runs on the *calling* thread, never the event loop — the
        provider may poll supervisor readiness files, and the loop must
        stay free to serve the authority while a worker boots.
        """
        deadline = time.monotonic() + self._resolve_timeout_s
        while True:
            try:
                return self._address_provider()
            except TransportError as exc:
                if time.monotonic() > deadline:
                    raise LinkDownError(
                        f"no address for {self.name}: {exc}"
                    ) from exc
                time.sleep(_RESOLVE_POLL_S)  # audit-ok: RES001 — readiness poll

    # -- connection management (loop side) ---------------------------------------

    async def _dial(self, address: tuple[str, int]):
        host, port = address
        try:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(host, port, ssl=self._ssl),
                timeout=self._connect_timeout_s,
            )
        except asyncio.TimeoutError as exc:
            raise LinkDownError(
                f"connect to {self.name} at {host}:{port} timed out"
            ) from exc
        except Exception as exc:
            raise classify_network_error(exc, self.name) from exc
        try:
            sent = await write_frame(writer, "hello", next(self._seq), encode_control({}))
            hello = await asyncio.wait_for(
                read_frame(reader), timeout=self._connect_timeout_s
            )
        except asyncio.TimeoutError as exc:
            writer.close()
            raise HandshakeTimeoutError(
                f"{self.name} at {host}:{port} accepted but never said hello"
            ) from exc
        except Exception as exc:
            writer.close()
            raise classify_network_error(exc, self.name) from exc
        if hello.kind != "hello":
            writer.close()
            raise TransportError(
                f"{self.name} answered the hello with {hello.kind!r}"
            )
        self._count("netd_frames_total", 2)
        self._count("netd_bytes_total", sent)
        self._count("netd_dials_total")
        return reader, writer

    async def _checkout(self, address: tuple[str, int]):
        assert self._pool is not None
        try:
            return self._pool.get_nowait()
        except asyncio.QueueEmpty:
            return await self._dial(address)

    def _checkin(self, conn) -> None:
        assert self._pool is not None
        if self._closed or self._pool.qsize() >= self._pool_size:
            conn[1].close()
            return
        self._pool.put_nowait(conn)

    async def _transact(
        self, address: tuple[str, int], kind: str, payload: bytes
    ) -> Frame:
        if self._pool is None:
            self._pool = asyncio.LifoQueue()
            self._sem = asyncio.Semaphore(self._max_in_flight)
        assert self._sem is not None
        async with self._sem:
            reader, writer = await self._checkout(address)
            seq = next(self._seq)
            try:
                sent = await write_frame(writer, kind, seq, payload)
                response = await asyncio.wait_for(
                    read_frame(reader), timeout=self._request_timeout_s
                )
            except asyncio.TimeoutError as exc:
                writer.close()
                raise LinkDownError(
                    f"{self.name} did not answer a {kind!r} frame in "
                    f"{self._request_timeout_s:.0f}s"
                ) from exc
            except IntegrityError:
                writer.close()
                raise
            except Exception as exc:
                writer.close()
                raise classify_network_error(exc, self.name) from exc
            self._count("netd_frames_total", 2)
            self._count("netd_bytes_total", sent + len(response.payload))
            if response.seq != seq:
                writer.close()
                raise TransportError(
                    f"{self.name} answered seq {response.seq}, expected {seq}"
                )
            self._checkin((reader, writer))
            if response.kind == "err":
                raise_remote_error(response.payload, self.name)
            return response

    # -- blocking facade (any thread) ---------------------------------------------

    def transact(
        self, kind: str, payload: bytes, timeout: float | None = None
    ) -> Frame:
        """Send one frame, wait for the paired response; typed errors."""
        address = self._resolve_address()
        return self._runner.run(
            self._transact(address, kind, payload),
            timeout=timeout if timeout is not None else self._request_timeout_s + 5.0,
        )

    def close(self) -> None:
        self._closed = True

        async def _drain() -> None:
            if self._pool is None:
                return
            while True:
                try:
                    _, writer = self._pool.get_nowait()
                except asyncio.QueueEmpty:
                    return
                writer.close()

        try:
            self._runner.run(_drain(), timeout=5.0)
        except Exception:  # pragma: no cover - teardown best effort
            pass


class SocketTransport(TranscriptTransport):
    """The socket plane's transport: in-memory accounting + real wire I/O.

    ``send()`` is inherited unchanged — pure accounting, link faults,
    transcript capture — so every ``transport_*`` series and fault
    semantic matches the in-memory plane byte for byte.  Wire I/O is
    the separate :meth:`transact`, keyed by registered peer endpoint.
    """

    def __init__(self, *args, record_transcript: bool = False, **kwargs) -> None:
        super().__init__(*args, record_transcript=record_transcript, **kwargs)
        self._peers: dict[str, PeerClient] = {}

    def register_peer(self, endpoint: str, peer: PeerClient) -> None:
        self._peers[endpoint] = peer

    def peer(self, endpoint: str) -> PeerClient:
        peer = self._peers.get(endpoint)
        if peer is None:
            raise TransportError(f"no registered peer for endpoint {endpoint!r}")
        return peer

    @property
    def peer_endpoints(self) -> tuple[str, ...]:
        return tuple(sorted(self._peers))

    def transact(
        self, endpoint: str, kind: str, payload: bytes, timeout: float | None = None
    ) -> Frame:
        """One request/response exchange with ``endpoint`` over TCP."""
        return self.peer(endpoint).transact(kind, payload, timeout=timeout)

    def close_peers(self) -> None:
        for peer in self._peers.values():
            peer.close()
