"""The real socket plane: PISA components as separate OS processes.

``repro.netd`` turns the in-process deployment into an actually
distributed one.  The broker (coordinator + all protocol randomness)
stays in the launching process; SDC shards and the STP run as worker
subprocesses reached over asyncio TCP with CRC-checked, length-prefixed
frames carrying the existing ``pisa.messages`` wire encodings.

The hard invariant is determinism: a socket-plane run produces
byte-identical protocol transcripts (and an identical span-tree
signature) to the same seeded run over
:class:`~repro.net.transport.InMemoryTransport`.  The layering that
guarantees it:

* every protocol draw happens in the broker process — the shards'
  arithmetic is deterministic, and the STP worker's re-encryption
  nonces round-trip to the broker's RNG authority
  (:class:`~repro.netd.remote.RemoteRandomSource`), so a journaled
  RandomSource journals the *whole* deployment, worker draws included;
* byte codecs (:mod:`repro.netd.wire`) reuse the canonical
  ``to_bytes``/``from_bytes`` encodings, so what crosses the wire is
  exactly what the in-memory accounting already measured;
* the supervisor restarts a crashed worker and the worker re-pulls its
  full bootstrap state from the authority, so a retried sub-query sees
  the same state and re-sends the same bytes.

See ``docs/networking.md`` for the frame format, process topology, and
TLS setup.
"""

from repro.netd.chaos import PROC_PLAN_NAME, run_process_chaos
from repro.netd.framing import Frame, FrameDecoder, decode_frame, encode_frame
from repro.netd.plane import (
    SocketClusterCoordinator,
    build_socket_coordinator,
    build_socket_service,
    run_socket_loadtest,
)
from repro.netd.supervisor import ProcessSupervisor, WorkerHandle
from repro.netd.topology import ClusterSpec, TlsSpec, load_cluster_spec
from repro.netd.transport import PeerClient, SocketTransport, classify_network_error

__all__ = [
    "ClusterSpec",
    "Frame",
    "FrameDecoder",
    "PROC_PLAN_NAME",
    "PeerClient",
    "ProcessSupervisor",
    "SocketClusterCoordinator",
    "SocketTransport",
    "TlsSpec",
    "WorkerHandle",
    "build_socket_coordinator",
    "build_socket_service",
    "classify_network_error",
    "decode_frame",
    "encode_frame",
    "load_cluster_spec",
    "run_process_chaos",
    "run_socket_loadtest",
]
