"""Socket-plane worker process: ``python -m repro.netd.worker``.

One executable, three roles:

* ``shard`` — hosts one :class:`~repro.cluster.shard.SdcShard` and
  serves phase-1/phase-2 sub-queries plus state fan-out frames;
* ``stp`` — hosts an :class:`~repro.pisa.stp_server.StpServer` whose
  per-cell re-encryption nonces come from the broker's authority via
  :class:`~repro.netd.remote.RemoteRandomSource`, keeping the
  deployment on one draw stream;
* ``broker`` — runs a whole ``cluster-up`` workload (it builds the
  socket plane, spawning its own shard/STP children) and exits.

Startup is a *pull*: dial the authority, poll ``bootstrap`` until the
coordinator registers this worker's provider, apply the config, bind an
ephemeral port, atomically write the readiness file.  A crash restart
re-runs exactly the same pull — the provider serves current state — so
the supervisor never pushes anything.

The request loop reads frames on the process's asyncio loop and runs
handlers in a worker thread (``asyncio.to_thread``), so pings stay
responsive while a shard grinds through homomorphic arithmetic.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import pathlib
import signal
import sys
import time

from repro.cluster.shard import SdcShard
from repro.crypto.paillier import PaillierKeypair
from repro.crypto.serialization import (
    decode_bytes,
    decode_int,
    decode_private_key,
    decode_public_key,
)
from repro.errors import ReproError, SerializationError, TransportError
from repro.netd.framing import read_frame, write_frame
from repro.netd.remote import RemoteRandomSource
from repro.netd.topology import TlsSpec
from repro.netd.transport import LoopRunner, PeerClient, classify_network_error
from repro.netd.wire import (
    decode_control,
    decode_phase1_request,
    decode_phase2_request,
    encode_control,
    encode_error,
    encode_phase1_response,
    encode_phase2_response,
    raise_remote_error,
)
from repro.pisa.messages import PUUpdateMessage, SignExtractionRequest
from repro.pisa.storage import restore_shard_state, serialize_shard_state
from repro.pisa.stp_server import StpServer
from repro.store import SqliteStateStore
from repro.watch.scenario import ScenarioConfig, build_scenario

_BOOTSTRAP_POLL_S = 0.05
_BOOTSTRAP_TIMEOUT_S = 60.0


def _decode_header(payload: bytes) -> tuple[dict, int]:
    """Control header + offset of the first attachment."""
    raw, offset = decode_bytes(payload, 0)
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed bootstrap header: {exc}") from exc
    return obj, offset


def _read_attachments(payload: bytes, offset: int, count: int) -> list[bytes]:
    out = []
    for _ in range(count):
        blob, offset = decode_bytes(payload, offset)
        out.append(blob)
    if offset != len(payload):
        raise SerializationError("trailing bytes in bootstrap payload")
    return out


async def _fetch_clock(host: str, port: int, ssl_context=None) -> float:
    """One deterministic-clock read, done *async* on the worker's loop.

    (A blocking :class:`~repro.netd.remote.RemoteClock` would post onto
    this very loop and deadlock; only handler threads may block.)
    """
    reader, writer = await asyncio.open_connection(host, port, ssl=ssl_context)
    try:
        await write_frame(writer, "clock", 0, encode_control({}))
        frame = await read_frame(reader)
        if frame.kind == "err":
            raise_remote_error(frame.payload, "authority")
        obj, _ = decode_control(frame.payload)
        return float(obj["value"])
    finally:
        writer.close()


async def _pull_bootstrap(
    host: str, port: int, name: str, ssl_context=None
) -> bytes:
    """Poll the authority until our provider is registered."""
    loop = asyncio.get_running_loop()
    deadline = loop.time() + _BOOTSTRAP_TIMEOUT_S
    seq = 0
    while True:
        if loop.time() > deadline:
            raise TransportError(f"worker {name!r}: bootstrap timed out")
        try:
            reader, writer = await asyncio.open_connection(host, port, ssl=ssl_context)
        except OSError:
            await asyncio.sleep(_BOOTSTRAP_POLL_S)  # audit-ok: RES001 — startup poll
            continue
        try:
            while True:
                await write_frame(
                    writer, "bootstrap", seq, encode_control({"name": name})
                )
                seq += 1
                frame = await read_frame(reader)
                if frame.kind == "ok":
                    return frame.payload
                if frame.kind == "err":
                    raise_remote_error(frame.payload, "authority")
                if loop.time() > deadline:
                    raise TransportError(f"worker {name!r}: bootstrap timed out")
                await asyncio.sleep(_BOOTSTRAP_POLL_S)  # audit-ok: RES001 — startup poll
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            await asyncio.sleep(_BOOTSTRAP_POLL_S)  # audit-ok: RES001 — startup poll
        finally:
            writer.close()


async def _race_stop(awaitable, stop: asyncio.Event):
    """Run *awaitable* unless *stop* fires first; ``None`` means stopped."""
    task = asyncio.ensure_future(awaitable)
    stopper = asyncio.ensure_future(stop.wait())
    done, _ = await asyncio.wait({task, stopper}, return_when=asyncio.FIRST_COMPLETED)
    if task in done:
        stopper.cancel()
        return task.result()
    task.cancel()
    return None


class ShardState:
    """A shard worker's handler table over its local :class:`SdcShard`."""

    role = "shard"

    def __init__(self, payload: bytes, store: SqliteStateStore | None = None) -> None:
        obj, offset = _decode_header(payload)
        attachments = _read_attachments(payload, offset, 1 + len(obj["pus"]))
        self.group_public_key = decode_public_key(attachments[0])
        self.store = store
        #: Chaos seam: artificial per-sub-query service delay (seconds),
        #: armed by a ``chaos_delay`` frame for gray-failure drills.
        self.delay_s = 0.0
        scenario = build_scenario(ScenarioConfig(**obj["scenario"]))
        self.shard = SdcShard(
            str(obj["shard_id"]),
            scenario.environment,
            self.group_public_key,
            blocks=tuple(int(b) for b in obj["blocks"]),
        )
        epoch = int(obj["epoch"])
        # A durable snapshot at least as recent as the bootstrap epoch
        # wins over replaying the authority's attachments: it is the same
        # state, already folded, and proves the store survived the crash.
        latest = store.latest_snapshot(self.shard.shard_id) if store else None
        if latest is not None and latest[0] >= epoch:
            restore_shard_state(self.shard, latest[1])
        else:
            # Latest update per PU, replayed in sorted order; ⊕ commutes,
            # so this reproduces the pre-crash aggregate exactly.
            for raw in attachments[1:]:
                self.shard.handle_pu_update(
                    PUUpdateMessage.from_bytes(raw, self.group_public_key)
                )
            if epoch >= 0:
                self.shard.commit_epoch(epoch)
            if store is not None and epoch >= 0:
                store.put_snapshot(
                    self.shard.shard_id, epoch, serialize_shard_state(self.shard)
                )
        # Learn the current lease *before* serving: a restarted worker
        # must reject the deposed incarnation's stale-token requests from
        # its very first frame.
        self.shard.observe_fence(int(obj.get("fence_token", 0)))

    def handle(self, kind: str, payload: bytes) -> tuple[str, bytes]:
        if kind == "phase1":
            if self.delay_s > 0:
                time.sleep(self.delay_s)
            request = decode_phase1_request(payload, self.group_public_key)
            return "ok", encode_phase1_response(self.shard.process_phase1(request))
        if kind == "phase2":
            if self.delay_s > 0:
                time.sleep(self.delay_s)
            pk_raw, offset = decode_bytes(payload, 0)
            su_key = decode_public_key(pk_raw)
            request = decode_phase2_request(payload[offset:], su_key)
            return "ok", encode_phase2_response(self.shard.process_phase2(request))
        if kind == "pu_update":
            # Frame layout: fence token prefix, then the raw message —
            # the token never contaminates the transcript bytes.
            fence_token, offset = decode_int(payload, 0)
            raw = payload[offset:]
            message = PUUpdateMessage.from_bytes(raw, self.group_public_key)
            self.shard.handle_pu_update(message, fence_token=fence_token)
            if self.store is not None:
                self.store.put_pu_update(self.shard.shard_id, message.pu_id, raw)
            return "ok", encode_control({})
        if kind == "fence":
            obj, _ = decode_control(payload)
            self.shard.observe_fence(int(obj["token"]))
            return "ok", encode_control({})
        if kind == "chaos_delay":
            obj, _ = decode_control(payload)
            self.delay_s = float(obj["delay_s"])
            return "ok", encode_control({})
        if kind == "assign_blocks":
            obj, _ = decode_control(payload)
            self.shard.assign_blocks(tuple(int(b) for b in obj["blocks"]))
            return "ok", encode_control({})
        if kind == "release_blocks":
            obj, _ = decode_control(payload)
            self.shard.release_blocks(tuple(int(b) for b in obj["blocks"]))
            return "ok", encode_control({})
        if kind == "commit_epoch":
            obj, _ = decode_control(payload)
            epoch = int(obj["epoch"])
            self.shard.commit_epoch(
                epoch, fence_token=int(obj.get("fence_token", 0))
            )
            if self.store is not None:
                self.store.put_snapshot(
                    self.shard.shard_id, epoch, serialize_shard_state(self.shard)
                )
            return "ok", encode_control({})
        raise TransportError(f"shard worker cannot serve frame kind {kind!r}")


class StpState:
    """An STP worker: group keypair from bootstrap, nonces from the broker."""

    role = "stp"

    def __init__(self, payload: bytes, authority_peer: PeerClient) -> None:
        obj, offset = _decode_header(payload)
        su_ids = [str(s) for s in obj["sus"]]
        attachments = _read_attachments(payload, offset, 1 + len(su_ids))
        private_key = decode_private_key(attachments[0])
        keypair = PaillierKeypair(
            public_key=private_key.public_key, private_key=private_key
        )
        self.stp = StpServer(
            group_keypair=keypair, rng=RemoteRandomSource(authority_peer)
        )
        for su_id, raw in zip(su_ids, attachments[1:]):
            self.stp.register_su(su_id, decode_public_key(raw))

    def handle(self, kind: str, payload: bytes) -> tuple[str, bytes]:
        if kind == "sign_req":
            request = SignExtractionRequest.from_bytes(
                payload, self.stp.group_public_key
            )
            return "ok", self.stp.handle_sign_extraction(request).to_bytes()
        if kind == "register_su":
            obj, attachments = decode_control(payload, num_attachments=1)
            self.stp.register_su(str(obj["su_id"]), decode_public_key(attachments[0]))
            return "ok", encode_control({})
        raise TransportError(f"stp worker cannot serve frame kind {kind!r}")


def _write_ready(path: str, data: dict) -> None:
    """Atomic write: the supervisor must never read a torn file."""
    target = pathlib.Path(path)
    tmp = target.with_suffix(".tmp")
    tmp.write_text(json.dumps(data, sort_keys=True), encoding="utf-8")
    os.replace(tmp, target)


async def _serve(args, tls: TlsSpec | None) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for sig in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(sig, stop.set)

    # Orphan guard: if the supervising broker dies without a graceful
    # stop_all (SIGKILL, OOM), this process is reparented — exit rather
    # than serve a deployment that no longer exists.  The supervisor
    # ships its pid in the environment because our own ppid is already
    # the *reparented* one if the broker died while this interpreter was
    # still starting up; bare getppid() is the manual-launch fallback.
    parent_pid = int(os.environ.get("REPRO_NETD_PARENT_PID") or os.getppid())

    async def watch_parent() -> None:
        while not stop.is_set():
            if os.getppid() != parent_pid:
                stop.set()
                return
            await asyncio.sleep(0.5)  # audit-ok: RES001 — orphan watchdog tick

    # Started *before* the bootstrap pull: a worker whose broker died
    # mid-spawn must not sit in the poll loop until the 60 s timeout.
    watchdog = asyncio.ensure_future(watch_parent())

    authority_host, authority_port = args.authority.rsplit(":", 1)
    authority_port = int(authority_port)
    client_ssl = tls.client_context() if tls is not None else None
    payload = await _race_stop(
        _pull_bootstrap(
            authority_host, authority_port, args.name, ssl_context=client_ssl
        ),
        stop,
    )
    if payload is None:
        watchdog.cancel()
        return 0

    if args.role == "shard":
        # The store opens *before* the readiness file is written: a shard
        # that cannot reach its durable state must not advertise itself.
        store = SqliteStateStore(args.store) if args.store else None
        state = ShardState(payload, store=store)
        authority_peer = None
    else:
        store = None
        # The STP's nonce draws are blocking transacts posted back onto
        # this loop from handler threads; safe because handlers never
        # run on the loop thread (asyncio.to_thread below).
        authority_peer = PeerClient(
            "authority",
            lambda: (authority_host, authority_port),
            LoopRunner(loop),
            ssl_context=client_ssl,
        )
        state = StpState(payload, authority_peer)

    clock_at_boot = await _fetch_clock(
        authority_host, authority_port, ssl_context=client_ssl
    )

    ping_info = {
        "name": args.name,
        "role": state.role,
        "clock_at_boot": clock_at_boot,
    }

    # Graceful-drain accounting: frames currently inside ``state.handle``
    # on a worker thread.  Mutated only from the loop thread, so a plain
    # counter needs no lock.
    inflight = [0]

    async def serve_conn(reader, writer) -> None:
        try:
            while True:
                frame = await read_frame(reader)
                if frame.kind == "hello":
                    await write_frame(
                        writer, "hello", frame.seq, encode_control({"name": args.name})
                    )
                    continue
                if frame.kind == "ping":
                    await write_frame(
                        writer, "ok", frame.seq, encode_control(ping_info)
                    )
                    continue
                if frame.kind == "shutdown":
                    await write_frame(writer, "ok", frame.seq, encode_control({}))
                    stop.set()
                    continue
                inflight[0] += 1
                try:
                    kind, payload = await asyncio.to_thread(
                        state.handle, frame.kind, frame.payload
                    )
                except ReproError as exc:
                    kind, payload = "err", encode_error(exc)
                except Exception as exc:  # ship, don't kill the worker
                    kind, payload = "err", encode_error(exc)
                finally:
                    inflight[0] -= 1
                await write_frame(writer, kind, frame.seq, payload)
                if stop.is_set():
                    # Drain discipline: the in-flight frame was answered;
                    # take no new work from this connection.
                    break
        except (ConnectionError, asyncio.IncompleteReadError, OSError):
            pass
        finally:
            writer.close()

    server_ssl = tls.server_context() if tls is not None else None
    try:
        server = await asyncio.start_server(
            serve_conn, args.host, args.port, ssl=server_ssl
        )
    except Exception as exc:
        raise classify_network_error(exc, args.name) from exc
    port = server.sockets[0].getsockname()[1]
    # The ready-file write is sync file I/O (write_text + os.replace):
    # done inline it would stall the freshly started server's loop, so
    # it runs off-loop like every other blocking frame here (ASY001).
    await asyncio.to_thread(
        _write_ready,
        args.ready_file,
        {
            "name": args.name,
            "port": port,
            "pid": os.getpid(),
            "clock_at_boot": clock_at_boot,
        },
    )

    await stop.wait()
    watchdog.cancel()
    server.close()
    await server.wait_closed()
    # Graceful drain (SIGTERM path): finish the frame a handler thread is
    # already serving, flush durable state, and only then revoke the
    # readiness file — a supervisor that reads it mid-shutdown must never
    # see "ready" after the store has closed.
    drain_deadline = loop.time() + 5.0
    while inflight[0] > 0 and loop.time() < drain_deadline:
        await asyncio.sleep(0.01)  # audit-ok: RES001 — shutdown drain tick
    if authority_peer is not None:
        authority_peer.close()
    if store is not None:
        await asyncio.to_thread(store.close)
    if args.ready_file:
        await asyncio.to_thread(
            pathlib.Path(args.ready_file).unlink, missing_ok=True
        )
    return 0


def _run_broker(args) -> int:
    # Imported here: the broker role pulls in the whole plane (and its
    # own supervisor), which shard/stp workers never need.
    from repro.netd.plane import run_cluster_workload
    from repro.netd.topology import load_cluster_spec

    spec = load_cluster_spec(args.spec)
    if args.ready_file:
        # The broker binds no port of its own; -1 marks "launched".
        _write_ready(
            args.ready_file, {"name": args.name, "port": -1, "pid": os.getpid()}
        )
    run_cluster_workload(spec, output=args.output, metrics_path=args.metrics)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="repro.netd.worker")
    parser.add_argument("--role", required=True, choices=("shard", "stp", "broker"))
    parser.add_argument("--name", required=True)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0)
    parser.add_argument("--ready-file", default="")
    parser.add_argument("--authority", default="", help="authority host:port")
    parser.add_argument("--tls-cert", default="")
    parser.add_argument("--tls-key", default="")
    parser.add_argument("--tls-ca", default="")
    parser.add_argument(
        "--store",
        default="",
        help="shard role: SQLite state-store path, opened before readiness",
    )
    parser.add_argument("--spec", default="", help="broker role: cluster spec path")
    parser.add_argument("--output", default="", help="broker role: report JSON path")
    parser.add_argument("--metrics", default="", help="broker role: metrics text path")
    args = parser.parse_args(argv)

    try:
        if args.role == "broker":
            return _run_broker(args)
        if not args.authority:
            raise TransportError("shard/stp workers need --authority host:port")
        tls = None
        if args.tls_cert:
            tls = TlsSpec(
                certfile=args.tls_cert,
                keyfile=args.tls_key,
                cafile=args.tls_ca or None,
            )
        return asyncio.run(_serve(args, tls))
    except ReproError as exc:
        print(f"{args.name}: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
