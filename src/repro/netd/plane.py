"""The socket plane: a sharded PISA deployment across real OS processes.

:func:`build_socket_service` stands up the same deployment shape as
:func:`repro.service.loadtest.build_cluster_service`, except the SDC
shards and the STP live in worker subprocesses behind TCP frames:

* the **broker process** (this one) keeps the coordinator, the batch
  allocator, every RNG draw, and license signing;
* ``shard-N`` workers do the deterministic homomorphic arithmetic;
* the ``stp`` worker performs sign extraction, reaching back to the
  broker's authority for its per-cell nonces.

Because all randomness stays on the broker's single stream — in the
same order the in-memory plane draws it — and because
``SocketTransport.send`` *is* the in-memory accounting funnel, a
socket-plane run produces byte-identical protocol transcripts and
identical span signatures to an in-memory run with the same seeds.
That is asserted by ``tests/netd/test_equivalence.py`` and is the
contract documented in ``docs/networking.md``.

Construction order matters and is worth spelling out: the authority
starts first (bound to the run's rng/clock), workers are spawned and
poll ``bootstrap``, then the coordinator is built — registering the
bootstrap providers mid-``__init__`` at the moment the group key
exists — and the first ``transact`` of the build (block assignment)
politely waits for the target worker's readiness file.
"""

from __future__ import annotations

import asyncio
import json
import pathlib
import time
from dataclasses import dataclass

from repro.cluster.coordinator import ClusterCoordinator
from repro.crypto.paillier import generate_keypair
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ConfigurationError, TransportError
from repro.netd.remote import AuthorityServer, RemoteShardSet, RemoteStp
from repro.netd.supervisor import ProcessSupervisor
from repro.netd.topology import ClusterSpec, TlsSpec
from repro.netd.transport import NetLoop, PeerClient, SocketTransport
from repro.netd.wire import decode_control, encode_control
from repro.service import loadtest as loadtest_module
from repro.service.batching import BatchAllocator
from repro.service.broker import ServiceConfig, SpectrumAccessBroker
from repro.service.loadtest import LoadtestConfig, LoadtestReport, ServiceFixture
from repro.telemetry import MetricsRegistry, Tracer
from repro.watch.scenario import ScenarioConfig, build_scenario

__all__ = [
    "SocketClusterCoordinator",
    "build_socket_coordinator",
    "build_socket_service",
    "health_check",
    "run_cluster_workload",
    "run_socket_loadtest",
]

STP_ENDPOINT = "stp"


@dataclass
class NetdContext:
    """Everything one socket-plane deployment owns besides the coordinator."""

    loop: NetLoop
    authority: AuthorityServer
    supervisor: ProcessSupervisor
    transport: SocketTransport
    client_ssl: object = None

    def close(self) -> None:
        # SIGTERM first (workers shut down gracefully and the monitor
        # stops resurrecting), then drop connections and the loop.
        self.supervisor.stop_all()
        self.transport.close_peers()
        self.authority.stop()
        self.loop.close()


class SocketClusterCoordinator(ClusterCoordinator):
    """A :class:`ClusterCoordinator` whose STP and shards are processes.

    Only the two build hooks change: :meth:`_build_stp` draws the group
    keypair *at the exact position* the in-process ``StpServer.__init__``
    would (first draw of construction, before the signing key), then
    hands it to a :class:`~repro.netd.remote.RemoteStp`; and
    :meth:`_build_replica_set` yields
    :class:`~repro.netd.remote.RemoteShardSet` proxies.  Everything else
    — router, allocator, clients, license signing — is inherited
    unchanged, which is the point.
    """

    def __init__(self, environment, netd: NetdContext, scenario_config, **kwargs):
        # The build hooks run inside super().__init__; stash their
        # dependencies first.
        self._netd = netd
        self._scenario_config = scenario_config
        super().__init__(environment, **kwargs)

    def _build_stp(self, key_bits: int, stp_executor) -> RemoteStp:
        keypair = generate_keypair(key_bits, rng=self._rng)
        stp = RemoteStp(self._netd.transport, STP_ENDPOINT, keypair, key_bits)
        self._netd.authority.register_bootstrap(
            STP_ENDPOINT, stp.bootstrap_payload
        )
        return stp

    def _build_replica_set(self, shard_id: str) -> RemoteShardSet:
        return RemoteShardSet(
            shard_id,
            self._netd.transport,
            self._netd.supervisor,
            self._netd.authority,
            self._scenario_config,
            self.stp.group_public_key,
            heartbeat_timeout_s=self._heartbeat_timeout_s,
        )

    def close(self) -> None:
        super().close()
        self._netd.close()


def build_socket_coordinator(
    num_shards: int,
    key_bits: int,
    rng,
    scenario_config: ScenarioConfig,
    metrics: MetricsRegistry | None = None,
    clock=None,
    record_transcript: bool = False,
    tls: TlsSpec | None = None,
    host: str = "127.0.0.1",
    workdir=None,
    max_attempts: int = 2,
    scatter_threads: int | None = None,
    store_dir=None,
):
    """Stand up the process topology and the coordinator over it.

    Returns ``(coordinator, scenario)``; nothing is enrolled yet.  The
    lower-level seam shared by :func:`build_socket_service` and the
    process-chaos harness (which drives Figure-5 rounds directly, no
    broker).
    """
    if num_shards < 1:
        raise ConfigurationError("the socket plane needs at least one shard")
    scenario = build_scenario(scenario_config)
    metrics = metrics if metrics is not None else MetricsRegistry()
    clock = clock if clock is not None else time.time

    loop = NetLoop()
    client_ssl = tls.client_context() if tls is not None else None
    server_ssl = tls.server_context() if tls is not None else None
    # The authority serves the same rng/clock objects the coordinator
    # will draw from — one stream for the whole deployment.
    authority = AuthorityServer(
        loop, rng, clock, host=host, ssl_context=server_ssl, metrics=metrics
    )
    supervisor = ProcessSupervisor(host=host, workdir=workdir, metrics=metrics)
    transport = SocketTransport(record_transcript=record_transcript)
    try:
        authority_host, authority_port = authority.start()
        worker_args = ["--authority", f"{authority_host}:{authority_port}"]
        if tls is not None:
            worker_args += ["--tls-cert", tls.certfile, "--tls-key", tls.keyfile]
            if tls.cafile:
                worker_args += ["--tls-ca", tls.cafile]
        store_root = None
        if store_dir:
            store_root = pathlib.Path(store_dir)
            store_root.mkdir(parents=True, exist_ok=True)
        names = [f"shard-{i}" for i in range(num_shards)] + [STP_ENDPOINT]
        for i in range(num_shards):
            shard_args = list(worker_args)
            if store_root is not None:
                # Per-shard database: restarts of the same worker name
                # find the same file; shards never share a connection.
                shard_args += ["--store", str(store_root / f"shard-{i}.sqlite")]
            supervisor.start(f"shard-{i}", "shard", tuple(shard_args))
        supervisor.start(STP_ENDPOINT, "stp", tuple(worker_args))
        for name in names:
            transport.register_peer(
                name,
                PeerClient(
                    name,
                    # late-bound per peer; the provider re-reads the
                    # readiness file, so restarts re-resolve transparently
                    (lambda n: (lambda: supervisor.address(n)))(name),
                    loop,
                    ssl_context=client_ssl,
                    metrics=metrics,
                ),
            )
        netd = NetdContext(loop, authority, supervisor, transport, client_ssl)
        coordinator = SocketClusterCoordinator(
            scenario.environment,
            netd=netd,
            scenario_config=scenario_config,
            num_shards=num_shards,
            key_bits=key_bits,
            rng=rng,
            transport=transport,
            metrics=metrics,
            clock=clock,
            max_attempts=max_attempts,
            scatter_threads=scatter_threads,
        )
    except BaseException:
        supervisor.stop_all()
        transport.close_peers()
        authority.stop()
        loop.close()
        raise
    return coordinator, scenario


def build_socket_service(
    config: LoadtestConfig,
    scenario_config: ScenarioConfig | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    clock=None,
    record_transcript: bool = False,
    tls: TlsSpec | None = None,
    host: str = "127.0.0.1",
    workdir=None,
    store_dir=None,
) -> ServiceFixture:
    """Stand up a socket-plane deployment wrapped in a service broker.

    Same fixture surface as ``build_cluster_service`` — the loadtest
    driver, broker, and report code run on it unmodified.  Call
    ``fixture.close()``; it tears down the worker processes too.
    """
    if scenario_config is None:
        # The registry build and this plain config produce the identical
        # environment: registry entries only add broker-side policy.
        scenario_config = ScenarioConfig(
            seed=config.seed, num_sus=max(config.num_sus, 1)
        )
    metrics = metrics if metrics is not None else MetricsRegistry()
    coordinator, scenario = build_socket_coordinator(
        config.shards,
        max(config.key_bits, 512),
        DeterministicRandomSource(config.seed),
        scenario_config,
        metrics=metrics,
        clock=clock,
        record_transcript=record_transcript,
        tls=tls,
        host=host,
        workdir=workdir,
        store_dir=store_dir,
    )
    pu_clients = [coordinator.enroll_pu(pu) for pu in scenario.pus]
    su_ids = []
    for su in scenario.sus[: config.num_sus]:
        coordinator.enroll_su(su)
        su_ids.append(su.su_id)
    # Tier policy is broker-side only — the workers never see it, which
    # is why the wire format and the worker processes stay unchanged
    # across scenarios.
    admission = loadtest_module._admission_for(config, scenario, metrics)
    broker = SpectrumAccessBroker(
        allocator=BatchAllocator.for_coordinator(coordinator),
        pu_update_handler=coordinator.sdc.handle_pu_update,
        config=config.service,
        metrics=metrics,
        tracer=tracer,
        admission=admission,
    )
    return ServiceFixture(
        broker=broker,
        coordinator=coordinator,
        scenario=scenario,
        pu_clients=pu_clients,
        su_ids=su_ids,
        admission=admission,
    )


async def _run_fixture(fixture: ServiceFixture, config: LoadtestConfig) -> LoadtestReport:
    start = time.perf_counter()
    async with fixture.broker:
        decisions = await loadtest_module._drive(fixture, config)
    wall = time.perf_counter() - start
    return LoadtestReport(
        decisions=tuple(decisions),
        wall_seconds=wall,
        metrics=fixture.broker.metrics.snapshot(),
    )


def run_socket_loadtest(
    config: LoadtestConfig,
    scenario_config: ScenarioConfig | None = None,
    metrics: MetricsRegistry | None = None,
    tracer: Tracer | None = None,
    clock=None,
    record_transcript: bool = False,
    tls: TlsSpec | None = None,
    host: str = "127.0.0.1",
    workdir=None,
    store_dir=None,
) -> tuple[LoadtestReport, tuple[str, ...]]:
    """Drive the standard loadtest over real sockets.

    Returns the report plus the captured protocol transcript
    (fingerprints; empty unless ``record_transcript=True``) so callers
    can compare planes without keeping the deployment alive.
    """
    fixture = build_socket_service(
        config,
        scenario_config=scenario_config,
        metrics=metrics,
        tracer=tracer,
        clock=clock,
        record_transcript=record_transcript,
        tls=tls,
        host=host,
        workdir=workdir,
        store_dir=store_dir,
    )
    try:
        report = asyncio.run(_run_fixture(fixture, config))
        fingerprints = tuple(fixture.coordinator.transport.fingerprints)
    finally:
        fixture.close()
    return report, fingerprints


def health_check(fixture: ServiceFixture) -> dict:
    """Ping every worker over its live link; include process liveness."""
    coordinator = fixture.coordinator
    netd: NetdContext = coordinator._netd
    out = {}
    for name in netd.transport.peer_endpoints:
        entry = {"process_running": netd.supervisor.is_running(name)}
        try:
            frame = netd.transport.transact(
                name, "ping", encode_control({}), timeout=5.0
            )
            info, _ = decode_control(frame.payload)
            entry.update(info)
            entry["reachable"] = True
        except TransportError as exc:
            entry["reachable"] = False
            entry["error"] = str(exc)
        out[name] = entry
    return out


def run_cluster_workload(
    spec: ClusterSpec,
    output: str = "",
    metrics_path: str = "",
) -> LoadtestReport:
    """Materialise a spec's process topology and run its workload.

    This is what ``repro cluster-up`` executes (inside the broker
    worker): build the socket plane, drive the seeded loadtest, and
    write the report JSON / Prometheus metrics text where asked.
    """
    config = LoadtestConfig(
        seed=spec.seed,
        num_requests=spec.requests,
        arrivals_per_second=spec.rate_per_second,
        num_sus=spec.sus,
        num_pu_switches=spec.pu_switches,
        key_bits=spec.key_bits,
        shards=spec.shards,
        service=ServiceConfig(
            batch_window_s=spec.batch_window_ms / 1000.0, max_batch=spec.max_batch
        ),
    )
    metrics = MetricsRegistry()
    report, _ = run_socket_loadtest(
        config,
        scenario_config=ScenarioConfig(seed=spec.scenario_seed, num_sus=max(spec.sus, 1)),
        metrics=metrics,
        tls=spec.tls,
        host=spec.host,
        store_dir=spec.store_dir or None,
    )
    if output:
        pathlib.Path(output).write_text(
            json.dumps(report.to_json_dict(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
    if metrics_path:
        pathlib.Path(metrics_path).write_text(
            metrics.to_prometheus(), encoding="utf-8"
        )
    return report
