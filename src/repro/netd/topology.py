"""Cluster topology specs for ``repro cluster-up``.

A spec file is a small JSON document describing the process topology
and the seeded workload to run over it::

    {
      "shards": 2,
      "requests": 6,
      "rate_per_second": 200.0,
      "sus": 2,
      "pu_switches": 0,
      "seed": 7,
      "scenario_seed": 5,
      "key_bits": 256,
      "batch_window_ms": 0.0,
      "max_batch": 4,
      "host": "127.0.0.1",
      "tls": {"certfile": "...", "keyfile": "...", "cafile": "..."}
    }

Everything except ``shards`` has a default; ``tls`` is optional (see
``docs/networking.md`` for certificate setup).  Ports are never part of
a spec — workers bind ephemeral ports and report them through their
readiness files, so two clusters can share a machine.
"""

from __future__ import annotations

import json
import pathlib
import ssl
from dataclasses import dataclass, field

from repro.errors import ConfigurationError

__all__ = ["ClusterSpec", "TlsSpec", "load_cluster_spec"]


@dataclass(frozen=True)
class TlsSpec:
    """Paths for mutually authenticated TLS between broker and workers."""

    certfile: str
    keyfile: str
    cafile: str | None = None

    def __post_init__(self) -> None:
        for label, path in (("certfile", self.certfile), ("keyfile", self.keyfile)):
            if not pathlib.Path(path).exists():
                raise ConfigurationError(f"tls {label} does not exist: {path}")
        if self.cafile is not None and not pathlib.Path(self.cafile).exists():
            raise ConfigurationError(f"tls cafile does not exist: {self.cafile}")

    def client_context(self) -> ssl.SSLContext:
        context = ssl.create_default_context(
            ssl.Purpose.SERVER_AUTH, cafile=self.cafile
        )
        context.load_cert_chain(self.certfile, self.keyfile)
        # Workers present the shared deployment certificate, not a
        # per-host one; identity is the CA, not the hostname.
        context.check_hostname = False
        return context

    def server_context(self) -> ssl.SSLContext:
        context = ssl.create_default_context(
            ssl.Purpose.CLIENT_AUTH, cafile=self.cafile
        )
        context.load_cert_chain(self.certfile, self.keyfile)
        if self.cafile is not None:
            context.verify_mode = ssl.CERT_REQUIRED
        return context


@dataclass(frozen=True)
class ClusterSpec:
    """One materialisable deployment: topology + seeded workload."""

    shards: int = 2
    requests: int = 6
    rate_per_second: float = 200.0
    sus: int = 2
    pu_switches: int = 0
    seed: int = 7
    scenario_seed: int = 5
    key_bits: int = 256
    batch_window_ms: float = 0.0
    max_batch: int = 4
    host: str = "127.0.0.1"
    #: When set, each shard worker opens a SQLite state store at
    #: ``<store_dir>/<shard>.sqlite`` before writing its readiness file.
    store_dir: str = ""
    tls: TlsSpec | None = field(default=None)

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ConfigurationError("a cluster spec needs at least one shard")
        if self.requests < 1:
            raise ConfigurationError("a cluster spec needs at least one request")
        if self.rate_per_second <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.sus < 1:
            raise ConfigurationError("a cluster spec needs at least one SU")

    def to_json_dict(self) -> dict:
        out = {
            "shards": self.shards,
            "requests": self.requests,
            "rate_per_second": self.rate_per_second,
            "sus": self.sus,
            "pu_switches": self.pu_switches,
            "seed": self.seed,
            "scenario_seed": self.scenario_seed,
            "key_bits": self.key_bits,
            "batch_window_ms": self.batch_window_ms,
            "max_batch": self.max_batch,
            "host": self.host,
        }
        if self.store_dir:
            out["store_dir"] = self.store_dir
        if self.tls is not None:
            out["tls"] = {
                "certfile": self.tls.certfile,
                "keyfile": self.tls.keyfile,
                "cafile": self.tls.cafile,
            }
        return out


_SPEC_KEYS = {
    "shards",
    "requests",
    "rate_per_second",
    "sus",
    "pu_switches",
    "seed",
    "scenario_seed",
    "key_bits",
    "batch_window_ms",
    "max_batch",
    "host",
    "store_dir",
    "tls",
}


def load_cluster_spec(path: str | pathlib.Path) -> ClusterSpec:
    """Parse and validate a spec file; unknown keys are typos, not noise."""
    try:
        raw = pathlib.Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigurationError(f"cannot read cluster spec {path}: {exc}") from exc
    try:
        data = json.loads(raw)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"cluster spec {path} is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ConfigurationError("a cluster spec must be a JSON object")
    unknown = sorted(set(data) - _SPEC_KEYS)
    if unknown:
        raise ConfigurationError(
            f"unknown cluster spec keys: {', '.join(unknown)}"
        )
    tls_data = data.pop("tls", None)
    tls = None
    if tls_data is not None:
        if not isinstance(tls_data, dict):
            raise ConfigurationError("cluster spec 'tls' must be an object")
        tls = TlsSpec(**tls_data)
    return ClusterSpec(tls=tls, **data)
