"""Length-prefixed, CRC-checked frames for the socket plane.

One frame carries one message between processes::

    b"NP" | u32 body_len | body | u32 crc32(body)
    body  = encode_bytes(kind) + encode_int(seq) + encode_bytes(payload)

The envelope mirrors :func:`repro.pisa.storage.frame_payload` (magic,
explicit length, trailing CRC over the body) with two stream-oriented
additions: the length prefix sits *outside* the body so a reader can
size its next read before trusting anything else, and the body carries
a ``kind`` tag plus a ``seq`` echo so responses pair with requests on a
pooled connection.

Payloads are the canonical byte encodings — ``pisa.messages.to_bytes``
for protocol messages, :mod:`repro.netd.wire` codecs for shard
sub-queries and control frames — so the socket plane adds framing, not
a second serialisation format.

Corruption anywhere (bad magic, torn frame, truncated length prefix,
CRC mismatch, garbage body) raises
:class:`~repro.errors.IntegrityError`, the same taxonomy the snapshot
and journal readers use.
"""

from __future__ import annotations

import asyncio
import struct  # audit-ok: NET001 — netd owns the frame header layout
import zlib

from repro.crypto.serialization import decode_bytes, decode_int, encode_bytes, encode_int
from repro.errors import IntegrityError, SerializationError

__all__ = [
    "FRAME_MAGIC",
    "FRAME_OVERHEAD",
    "MAX_FRAME_BYTES",
    "Frame",
    "FrameDecoder",
    "decode_frame",
    "encode_frame",
    "read_frame",
    "write_frame",
]

FRAME_MAGIC = b"NP"
_LEN = struct.Struct(">I")
#: magic + length prefix + trailing CRC.
FRAME_OVERHEAD = len(FRAME_MAGIC) + _LEN.size + 4
#: Default ceiling on one frame's body.  A paper-scale phase-1
#: sub-query at 2048-bit keys is a few MB; 256 MB rejects garbage
#: lengths (a corrupt prefix would otherwise stall a reader waiting for
#: gigabytes) without constraining any real message.
MAX_FRAME_BYTES = 256 * 1024 * 1024


class Frame:
    """One decoded frame: a ``kind`` tag, a ``seq`` echo, and the payload."""

    __slots__ = ("kind", "seq", "payload")

    def __init__(self, kind: str, seq: int, payload: bytes) -> None:
        self.kind = kind
        self.seq = seq
        self.payload = payload

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Frame)
            and self.kind == other.kind
            and self.seq == other.seq
            and self.payload == other.payload
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Frame({self.kind!r}, seq={self.seq}, {len(self.payload)}B)"


def encode_frame(kind: str, seq: int, payload: bytes) -> bytes:
    """Serialise one frame; the inverse of :func:`decode_frame`."""
    body = encode_bytes(kind.encode("utf-8")) + encode_int(seq) + encode_bytes(payload)
    return FRAME_MAGIC + _LEN.pack(len(body)) + body + _LEN.pack(zlib.crc32(body))


def _decode_body(body: bytes) -> Frame:
    try:
        kind_bytes, offset = decode_bytes(body, 0)
        seq, offset = decode_int(body, offset)
        payload, offset = decode_bytes(body, offset)
        kind = kind_bytes.decode("utf-8")
    except (SerializationError, UnicodeDecodeError) as exc:
        raise IntegrityError(f"frame body is malformed: {exc}") from exc
    if offset != len(body):
        raise IntegrityError(f"frame body has {len(body) - offset} trailing bytes")
    return Frame(kind, seq, payload)


def decode_frame(
    buffer: bytes, offset: int = 0, max_frame_bytes: int = MAX_FRAME_BYTES
) -> tuple[Frame, int]:
    """Decode one frame at ``offset``; returns ``(frame, next_offset)``."""
    header_end = offset + len(FRAME_MAGIC) + _LEN.size
    if len(buffer) < header_end:
        raise IntegrityError("frame truncated inside the length prefix")
    if buffer[offset : offset + len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise IntegrityError("bad frame magic")
    (body_len,) = _LEN.unpack_from(buffer, offset + len(FRAME_MAGIC))
    if body_len > max_frame_bytes:
        raise IntegrityError(
            f"frame body of {body_len} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    end = header_end + body_len + 4
    if len(buffer) < end:
        raise IntegrityError("frame truncated before its CRC")
    body = buffer[header_end : header_end + body_len]
    (expected_crc,) = _LEN.unpack_from(buffer, header_end + body_len)
    if zlib.crc32(body) != expected_crc:
        raise IntegrityError("frame CRC mismatch")
    return _decode_body(body), end


class FrameDecoder:
    """Incremental decoder for a TCP byte stream.

    Feed arbitrary chunks; complete frames come out in order.  The
    decoder never resynchronises after corruption — a TCP stream with a
    bad frame has no trustworthy continuation, so the connection must be
    torn down (the caller maps :class:`~repro.errors.IntegrityError` to
    a link fault).
    """

    def __init__(self, max_frame_bytes: int = MAX_FRAME_BYTES) -> None:
        self._buffer = bytearray()
        self._max = max_frame_bytes

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)

    def feed(self, data: bytes) -> list[Frame]:
        self._buffer.extend(data)
        frames: list[Frame] = []
        header_size = len(FRAME_MAGIC) + _LEN.size
        while len(self._buffer) >= header_size:
            if bytes(self._buffer[: len(FRAME_MAGIC)]) != FRAME_MAGIC:
                raise IntegrityError("bad frame magic in stream")
            (body_len,) = _LEN.unpack_from(self._buffer, len(FRAME_MAGIC))
            if body_len > self._max:
                raise IntegrityError(
                    f"frame body of {body_len} bytes exceeds the {self._max}-byte cap"
                )
            total = header_size + body_len + 4
            if len(self._buffer) < total:
                break
            frame, _ = decode_frame(bytes(self._buffer[:total]), 0, self._max)
            frames.append(frame)
            del self._buffer[:total]
        return frames


async def read_frame(
    reader: asyncio.StreamReader, max_frame_bytes: int = MAX_FRAME_BYTES
) -> Frame:
    """Read exactly one frame from an asyncio stream.

    Raises :class:`~repro.errors.IntegrityError` on corruption and lets
    ``asyncio.IncompleteReadError`` (peer closed mid-frame) propagate
    for the connection layer to classify as a link fault.
    """
    header = await reader.readexactly(len(FRAME_MAGIC) + _LEN.size)
    if header[: len(FRAME_MAGIC)] != FRAME_MAGIC:
        raise IntegrityError("bad frame magic on stream")
    (body_len,) = _LEN.unpack_from(header, len(FRAME_MAGIC))
    if body_len > max_frame_bytes:
        raise IntegrityError(
            f"frame body of {body_len} bytes exceeds the {max_frame_bytes}-byte cap"
        )
    rest = await reader.readexactly(body_len + 4)
    body = rest[:body_len]
    (expected_crc,) = _LEN.unpack_from(rest, body_len)
    if zlib.crc32(body) != expected_crc:
        raise IntegrityError("frame CRC mismatch on stream")
    return _decode_body(body)


async def write_frame(
    writer: asyncio.StreamWriter, kind: str, seq: int, payload: bytes
) -> int:
    """Encode and write one frame; returns the bytes put on the wire."""
    data = encode_frame(kind, seq, payload)
    writer.write(data)
    await writer.drain()
    return len(data)
