"""Process-level chaos: SIGKILL a real shard worker mid-round.

The in-memory chaos harness (:mod:`repro.resilience.chaos`) injects
faults into a simulated transport; this module injects the real thing —
``SIGKILL`` delivered to a shard *subprocess* while a Figure-5 round is
mid-phase-1 — and holds the socket plane to the same verdict:

* the supervisor restarts the worker, which re-pulls its full state
  from the bootstrap provider;
* the router's retry re-sends the *identical* sub-query bytes (phase
  randomness was drawn centrally before the scatter, so nothing is
  re-drawn);
* the protocol transcript stays byte-identical to an **in-memory
  control run** with the same seeds, and every license verifies.

Passing both properties at once proves cross-plane determinism *and*
crash recovery in a single schedule.  The verdict reuses
:class:`repro.resilience.chaos.ChaosResult` so ``repro chaos`` renders
it exactly like the simulated plans (``replayed_draws``/``fallback_draws``
are ``-1`` — no journal replay happens here).
"""

from __future__ import annotations

import signal

from repro.cluster.coordinator import ClusterCoordinator
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ChaosPlanError, FencedError
from repro.net.recording import TranscriptTransport
from repro.netd.wire import encode_control
from repro.resilience.chaos import FROZEN_CLOCK, ChaosResult
from repro.telemetry.tracing import child
from repro.watch.scenario import ScenarioConfig, build_scenario

__all__ = [
    "PROC_PLAN_NAME",
    "PARTITION_PLAN_NAMES",
    "run_process_chaos",
    "run_partition_chaos",
]

#: The plan name ``repro chaos --plan`` dispatches to this module.
PROC_PLAN_NAME = "proc-kill-shard"

#: Socket-plane partition drills (the fencing / gray-failure smoke).
PARTITION_PLAN_NAMES = ("proc-split-brain", "proc-gray-slow")


def _run_round(coordinator, transport, su_id: str, tracer=None):
    """One direct Figure-5 round (the chaos harness's driver, plain sends).

    Unlike the in-memory harness there is no send-retry wrapper:
    protocol-link sends are pure accounting on both planes and never
    fail here — the injected fault lives on the router↔shard leg, where
    the router's own policy recovers it.
    """
    client = coordinator.su_client(su_id)
    root = tracer.start_span("round", su=su_id) if tracer is not None else None

    def phase(name, fn, message):
        span = child(root, name)
        try:
            return fn(message, span=span)
        except BaseException as exc:
            if span is not None:
                span.record_error(exc)
            raise
        finally:
            if span is not None:
                span.end()

    try:
        request = client.prepare_request()
        transport.send(request, su_id, "sdc")
        sign_request = phase("phase1", coordinator.sdc.start_request, request)
        transport.send(sign_request, "sdc", "stp")
        sign_response = phase(
            "stp", coordinator.stp.handle_sign_extraction, sign_request
        )
        transport.send(sign_response, "stp", "sdc")
        response = phase("phase2", coordinator.sdc.finish_request, sign_response)
        transport.send(response, "sdc", su_id)
        return phase(
            "license",
            lambda message, span=None: client.process_response(
                message, coordinator.stp.directory
            ),
            response,
        )
    except BaseException as exc:
        if root is not None:
            root.record_error(exc)
        raise
    finally:
        if root is not None:
            root.end()


def _execute(coordinator, transport, rounds: int, su_ids, tracer=None):
    transport.mark()  # close the enrolment segment
    outcomes = []
    for round_index in range(rounds):
        outcomes.append(
            _run_round(
                coordinator, transport, su_ids[round_index % len(su_ids)], tracer
            )
        )
        transport.mark()
    return (
        transport.segments(),
        tuple(o.granted for o in outcomes),
        tuple(o.license for o in outcomes),
    )


def _control_run(seed, shards, rounds, key_bits, scenario_seed, metrics):
    """The clean in-memory run every faulted socket run is judged against."""
    scenario = build_scenario(ScenarioConfig(seed=scenario_seed))
    transport = TranscriptTransport()
    coordinator = ClusterCoordinator(
        scenario.environment,
        num_shards=shards,
        key_bits=key_bits,
        rng=DeterministicRandomSource(seed),
        transport=transport,
        scatter_threads=1,
        max_attempts=4,
        clock=lambda: FROZEN_CLOCK,
        metrics=metrics,
    )
    try:
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        su_ids = []
        for su in scenario.sus:
            coordinator.enroll_su(su)
            su_ids.append(su.su_id)
        return _execute(coordinator, transport, rounds, su_ids)
    finally:
        coordinator.close()


def run_process_chaos(
    seed: int = 7,
    shards: int = 2,
    rounds: int = 2,
    key_bits: int = 256,
    scenario_seed: int = 5,
    metrics=None,
    tracer=None,
    workdir=None,
) -> ChaosResult:
    """SIGKILL shard-0's worker mid-phase-1 of round 1; judge vs control.

    The fault fires from the sub-query hook *just before* the router's
    first phase-1 transact to the victim, and waits for the process to
    actually exit — so the transact deterministically hits a dead
    worker, fails with ``LinkDownError``, and exercises the full
    promote → restart → re-bootstrap → re-send path.
    """
    from repro.netd.plane import build_socket_coordinator

    control_segments, control_granted, _ = _control_run(
        seed, shards, rounds, key_bits, scenario_seed, metrics
    )
    if metrics is not None:
        metrics.counter("chaos_runs_total", plan=PROC_PLAN_NAME).inc()

    coordinator, scenario = build_socket_coordinator(
        shards,
        key_bits,
        DeterministicRandomSource(seed),
        ScenarioConfig(seed=scenario_seed),
        metrics=metrics,
        clock=lambda: FROZEN_CLOCK,
        record_transcript=True,
        workdir=workdir,
        max_attempts=4,
        scatter_threads=1,
    )
    victim = "shard-0"
    notes: list[str] = []
    try:
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        su_ids = []
        for su in scenario.sus:
            coordinator.enroll_su(su)
            su_ids.append(su.su_id)

        supervisor = coordinator._netd.supervisor
        fired = [False]

        def kill_once(phase: str, request) -> None:
            if fired[0] or phase != "phase1" or request.shard_id != victim:
                return
            fired[0] = True
            supervisor.kill(victim, signal.SIGKILL)
            code = supervisor.wait_exit(victim)
            notes.append(f"SIGKILL {victim} before phase-1 transact (exit {code})")

        coordinator.replica_sets[victim].set_subquery_hook(kill_once)

        transport = coordinator.transport
        segments, granted, licenses = _execute(
            coordinator, transport, rounds, su_ids, tracer
        )
        if not fired[0]:
            notes.append(f"fault never fired: no phase-1 sub-query hit {victim}")
        notes.append(f"restarts({victim})={supervisor.restarts(victim)}")
        failovers = coordinator.router.stats.failovers
        drops_retried = coordinator.router.stats.drops_retried
        fault_stats = dict(transport.fault_stats)
    finally:
        coordinator.close()

    transcript_equal = fired[0] and segments == control_segments
    licenses_valid = granted == control_granted and all(
        lic is not None for lic in licenses
    )
    return ChaosResult(
        plans=(PROC_PLAN_NAME,),
        seed=seed,
        shards=shards,
        rounds=rounds,
        transcript_equal=transcript_equal,
        exact_segments=len(control_segments),
        licenses_valid=licenses_valid,
        replayed_draws=-1,
        fallback_draws=-1,
        fault_stats=fault_stats,
        failovers=failovers,
        drops_retried=drops_retried,
        notes=tuple(notes),
    )


#: Artificial service delay for ``proc-gray-slow`` — well above the
#: router's suspect floor, well below anything that kills heartbeats.
_GRAY_DELAY_S = 0.4


def run_partition_chaos(
    plan: str,
    seed: int = 7,
    shards: int = 2,
    rounds: int = 2,
    key_bits: int = 256,
    scenario_seed: int = 5,
    metrics=None,
    tracer=None,
    workdir=None,
) -> ChaosResult:
    """Run one socket-plane partition drill; judge vs the in-memory control.

    * ``proc-split-brain`` — before the last round, the authority fences
      and promotes shard-0 **while its worker is alive and serving**;
      the deposed incarnation's stale-token ``commit_epoch`` frame must
      come back as a typed :class:`~repro.errors.FencedError` over the
      wire, and the transcript must not move a byte.
    * ``proc-gray-slow`` — shard-0's worker serves every sub-query
      ~400 ms slow (below the heartbeat-death threshold).  The router's
      RTT quantile must flag it *suspect* with **zero** promotions, and
      the transcript must still match the control.
    """
    if plan not in PARTITION_PLAN_NAMES:
        raise ChaosPlanError(
            f"unknown partition plan {plan!r} "
            f"(known: {', '.join(PARTITION_PLAN_NAMES)})"
        )
    from repro.netd.plane import build_socket_coordinator

    control_segments, control_granted, _ = _control_run(
        seed, shards, rounds, key_bits, scenario_seed, metrics
    )
    if metrics is not None:
        metrics.counter("chaos_runs_total", plan=plan).inc()

    coordinator, scenario = build_socket_coordinator(
        shards,
        key_bits,
        DeterministicRandomSource(seed),
        ScenarioConfig(seed=scenario_seed),
        metrics=metrics,
        clock=lambda: FROZEN_CLOCK,
        record_transcript=True,
        workdir=workdir,
        max_attempts=4,
        scatter_threads=1,
    )
    victim = "shard-0"
    notes: list[str] = []
    fenced_rejections = 0
    try:
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        su_ids = []
        for su in scenario.sus:
            coordinator.enroll_su(su)
            su_ids.append(su.su_id)

        replica_set = coordinator.replica_sets[victim]
        transport = coordinator.transport
        transport.mark()  # close the enrolment segment
        outcomes = []
        for round_index in range(rounds):
            if plan == "proc-gray-slow" and round_index == 0:
                replica_set.transact(
                    "chaos_delay", encode_control({"delay_s": _GRAY_DELAY_S})
                )
                notes.append(
                    f"armed {_GRAY_DELAY_S * 1000:.0f} ms gray slowdown "
                    f"on {victim}'s worker"
                )
            if plan == "proc-split-brain" and round_index == rounds - 1:
                incumbent = coordinator.fencing.bump(victim, "manual")
                replica_set.install_fence(incumbent.token)
                successor = coordinator.fencing.bump(victim, "failover")
                replica_set.install_fence(successor.token)
                replica_set.promote()
                coordinator.membership.record_lease(victim, successor.token)
                notes.append(
                    f"fenced+promoted {victim} while its worker serves "
                    f"(lease {incumbent.token}->{successor.token})"
                )
                try:
                    replica_set.transact(
                        "commit_epoch",
                        encode_control(
                            {"epoch": 999, "fence_token": incumbent.token}
                        ),
                    )
                except FencedError as exc:
                    fenced_rejections += 1
                    coordinator.fencing.note_rejection(victim)
                    notes.append(
                        f"stale-token commit rejected over the wire: {exc}"
                    )
                else:
                    notes.append(
                        f"SPLIT BRAIN: stale-token commit on {victim} landed"
                    )
            outcomes.append(
                _run_round(
                    coordinator,
                    transport,
                    su_ids[round_index % len(su_ids)],
                    tracer,
                )
            )
            transport.mark()
        segments = transport.segments()
        granted = tuple(o.granted for o in outcomes)
        licenses = tuple(o.license for o in outcomes)
        stats = coordinator.router.stats
        failovers, drops_retried = stats.failovers, stats.drops_retried
        suspects = stats.suspects
        if suspects:
            notes.append(f"router flagged {suspects} suspect(s), promoted none")
        fault_stats = dict(transport.fault_stats)
    finally:
        coordinator.close()

    transcript_equal = segments == control_segments
    licenses_valid = granted == control_granted and all(
        lic is not None for lic in licenses
    )
    return ChaosResult(
        plans=(plan,),
        seed=seed,
        shards=shards,
        rounds=rounds,
        transcript_equal=transcript_equal,
        exact_segments=len(control_segments),
        licenses_valid=licenses_valid,
        replayed_draws=-1,
        fallback_draws=-1,
        fault_stats=fault_stats,
        failovers=failovers,
        drops_retried=drops_retried,
        notes=tuple(notes),
        fenced_rejections=fenced_rejections,
        suspects=suspects,
    )
