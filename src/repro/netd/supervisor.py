"""Process supervision for socket-plane workers.

The supervisor owns the worker subprocesses of one deployment: it
spawns them (``python -m repro.netd.worker``), waits for their
readiness files, health-checks liveness, restarts crashed workers with
the canonical :mod:`repro.resilience` retry/backoff policy, and tears
everything down gracefully (SIGTERM, then SIGKILL after a grace
period).

Readiness is file-based: a worker binds an ephemeral port, finishes its
bootstrap pull from the broker's authority, then atomically writes
``{"name", "port", "pid"}`` next to its log.  The pid in the file must
match the live process — a stale file from a previous incarnation is
never trusted, which is what makes restart-then-reconnect race-free:
:meth:`ProcessSupervisor.address` only ever returns a port some
*currently running* worker actually bound.

Crash recovery has two entry points that share one per-worker lock: the
background monitor thread notices exits and restarts autonomously, and
the router's failover path calls :meth:`ensure_running` synchronously
when a sub-query hits a dead link.  Either way the worker re-pulls its
full state at startup, so the caller only needs the new address.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import TransportError
from repro.resilience.policy import RetryPolicy, run_with_policy

__all__ = ["ProcessSupervisor", "WorkerHandle", "DEFAULT_RESTART_POLICY"]

#: Restart budget per recovery: a few fast attempts with decorrelated
#: backoff.  Real process spawn is slow compared to the in-memory
#: promote path, so the budget is attempts-shaped, not wall-clock.
DEFAULT_RESTART_POLICY = RetryPolicy(
    max_attempts=4,
    base_backoff_s=0.05,
    backoff_cap_s=0.5,
    retryable=(TransportError,),
)

_READY_POLL_S = 0.02


class WorkerHandle:
    """One supervised worker: its spec, process, and latest address."""

    def __init__(
        self, name: str, role: str, extra_args: tuple[str, ...], restart: bool
    ) -> None:
        self.name = name
        self.role = role
        self.extra_args = extra_args
        #: Whether the monitor should resurrect this worker on crash
        #: (serving roles yes; one-shot broker runs no).
        self.restart = restart
        self.process: subprocess.Popen | None = None
        self.address: tuple[str, int] | None = None
        self.restarts = 0
        self.lock = threading.RLock()


class ProcessSupervisor:
    """Spawns, watches, restarts, and stops one deployment's workers."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        workdir: str | pathlib.Path | None = None,
        restart_policy: RetryPolicy = DEFAULT_RESTART_POLICY,
        ready_timeout_s: float = 30.0,
        metrics=None,
        monitor: bool = True,
        monitor_interval_s: float = 0.05,
    ) -> None:
        self.host = host
        if workdir is None:
            self._tmp = tempfile.TemporaryDirectory(prefix="repro-netd-")
            self.workdir = pathlib.Path(self._tmp.name)
        else:
            self._tmp = None
            self.workdir = pathlib.Path(workdir)
            self.workdir.mkdir(parents=True, exist_ok=True)
            # A reused workdir may hold readiness files from a previous
            # supervisor incarnation (SIGKILLed workers never get to
            # unlink theirs).  The pid check already refuses to trust
            # them, but a pid-recycled OS could resurrect one — sweep
            # them so this incarnation starts from a clean slate.
            for stale in self.workdir.glob("*.ready.json"):
                stale.unlink(missing_ok=True)
        self._policy = restart_policy
        self._ready_timeout_s = ready_timeout_s
        self._metrics = metrics
        self._retry_rng = DeterministicRandomSource(0)
        self._handles: dict[str, WorkerHandle] = {}
        self._stopping = False
        self._monitor_thread: threading.Thread | None = None
        if monitor:
            self._monitor_thread = threading.Thread(
                target=self._monitor,
                args=(monitor_interval_s,),
                name="netd-supervisor",
                daemon=True,
            )
            self._monitor_thread.start()

    # -- paths --------------------------------------------------------------------

    def _ready_file(self, name: str) -> pathlib.Path:
        return self.workdir / f"{name}.ready.json"

    def log_file(self, name: str) -> pathlib.Path:
        return self.workdir / f"{name}.log"

    # -- spawning -----------------------------------------------------------------

    def start(
        self,
        name: str,
        role: str,
        extra_args: tuple[str, ...] = (),
        restart: bool = True,
    ) -> WorkerHandle:
        """Register and launch one worker (non-blocking; see wait_ready)."""
        handle = WorkerHandle(name, role, tuple(extra_args), restart)
        self._handles[name] = handle
        with handle.lock:
            self._spawn(handle)
        return handle

    def _spawn(self, handle: WorkerHandle) -> None:
        ready = self._ready_file(handle.name)
        ready.unlink(missing_ok=True)
        handle.address = None
        cmd = [
            sys.executable,
            "-m",
            "repro.netd.worker",
            "--role",
            handle.role,
            "--name",
            handle.name,
            "--host",
            self.host,
            "--ready-file",
            str(ready),
            *handle.extra_args,
        ]
        env = dict(os.environ)
        # The worker's orphan guard compares os.getppid() against this,
        # not against a ppid captured after exec — a worker whose
        # supervisor dies during the worker's own interpreter startup
        # would otherwise capture the reparented ppid and never notice.
        env["REPRO_NETD_PARENT_PID"] = str(os.getpid())
        log = open(self.log_file(handle.name), "ab")
        try:
            handle.process = subprocess.Popen(
                cmd, stdout=log, stderr=subprocess.STDOUT, env=env
            )
        finally:
            log.close()

    def _read_ready(self, handle: WorkerHandle) -> tuple[str, int] | None:
        """The worker's reported address, iff written by the live process."""
        process = handle.process
        if process is None or process.poll() is not None:
            return None
        try:
            data = json.loads(self._ready_file(handle.name).read_text("utf-8"))
        except (OSError, json.JSONDecodeError):
            return None
        if data.get("pid") != process.pid:
            return None
        port = data.get("port")
        if not isinstance(port, int):
            return None
        return (self.host, port)

    def _stderr_tail(self, name: str, lines: int = 12) -> str:
        try:
            text = self.log_file(name).read_text("utf-8", errors="replace")
        except OSError:
            return ""
        return "\n".join(text.splitlines()[-lines:])

    def wait_ready(
        self, names: list[str] | None = None, timeout_s: float | None = None
    ) -> dict[str, tuple[str, int]]:
        """Block until every named worker has reported an address."""
        names = list(self._handles) if names is None else names
        deadline = time.monotonic() + (
            timeout_s if timeout_s is not None else self._ready_timeout_s
        )
        addresses: dict[str, tuple[str, int]] = {}
        for name in names:
            handle = self._handles[name]
            while True:
                address = self._read_ready(handle)
                if address is not None:
                    with handle.lock:
                        handle.address = address
                    addresses[name] = address
                    break
                process = handle.process
                if process is not None and process.poll() is not None:
                    raise TransportError(
                        f"worker {name!r} exited with status "
                        f"{process.returncode} before becoming ready:\n"
                        f"{self._stderr_tail(name)}"
                    )
                if time.monotonic() > deadline:
                    raise TransportError(
                        f"worker {name!r} did not become ready in time:\n"
                        f"{self._stderr_tail(name)}"
                    )
                time.sleep(_READY_POLL_S)  # audit-ok: RES001 — readiness poll, not a retry
        return addresses

    # -- liveness / addressing -----------------------------------------------------

    def is_running(self, name: str) -> bool:
        handle = self._handles.get(name)
        if handle is None or handle.process is None:
            return False
        return handle.process.poll() is None

    def address(self, name: str) -> tuple[str, int]:
        """Latest known address; raises LinkDown-classified TransportError.

        Refreshes from the readiness file on a cache miss, so peers that
        dial lazily (before anyone called :meth:`wait_ready`, or after a
        restart) pick up the worker's current ephemeral port the moment
        the live process reports it.
        """
        handle = self._handles.get(name)
        if handle is None:
            raise TransportError(f"no supervised worker named {name!r}")
        with handle.lock:
            address = handle.address
            if address is None:
                address = self._read_ready(handle)
                if address is not None:
                    handle.address = address
        if address is None or not self.is_running(name):
            raise TransportError(f"worker {name!r} has no live address")
        return address

    def worker_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._handles))

    def restarts(self, name: str) -> int:
        return self._handles[name].restarts

    # -- recovery -------------------------------------------------------------------

    def ensure_running(self, name: str, timeout_s: float | None = None) -> tuple[str, int]:
        """Restart ``name`` if dead; return a live address either way.

        Safe to call from router failover threads concurrently with the
        monitor — the per-worker lock serialises recoveries, and a
        recovery that lost the race simply observes the winner's fresh
        address.
        """
        handle = self._handles.get(name)
        if handle is None:
            raise TransportError(f"no supervised worker named {name!r}")
        with handle.lock:
            if self.is_running(name) and handle.address is not None:
                return handle.address

            def attempt() -> tuple[str, int]:
                if not self.is_running(name):
                    self._spawn(handle)
                    handle.restarts += 1
                    if self._metrics is not None:
                        self._metrics.counter(
                            "netd_restarts_total", worker=name
                        ).inc()
                return self.wait_ready([name], timeout_s=timeout_s)[name]

            return run_with_policy(attempt, self._policy, rng=self._retry_rng)

    def _monitor(self, interval_s: float) -> None:
        while not self._stopping:
            for handle in list(self._handles.values()):
                if self._stopping:
                    break
                if not handle.restart:
                    continue
                process = handle.process
                if process is not None and process.poll() is not None:
                    try:
                        self.ensure_running(handle.name)
                    except TransportError:
                        # Exhausted the restart budget; the data path
                        # will surface ShardDownError on next contact.
                        pass
            time.sleep(interval_s)  # audit-ok: RES001 — watchdog tick, not a retry

    # -- fault injection / teardown --------------------------------------------------

    def kill(self, name: str, sig: int = signal.SIGKILL) -> None:
        """Deliver a signal to a worker (the process-chaos fault)."""
        handle = self._handles.get(name)
        if handle is None or handle.process is None:
            return
        try:
            handle.process.send_signal(sig)
        except ProcessLookupError:  # pragma: no cover - already gone
            pass

    def wait_exit(self, name: str, timeout_s: float = 10.0) -> int | None:
        """Block until a worker's current process exits; its return code.

        Used by fault injection to make a SIGKILL *landed* before the
        next sub-query fires (so the failure is deterministic, not a
        race with process teardown).
        """
        handle = self._handles.get(name)
        if handle is None or handle.process is None:
            return None
        try:
            return handle.process.wait(timeout=timeout_s)
        except subprocess.TimeoutExpired:  # pragma: no cover - SIGKILL always lands
            return None

    def stop_all(self, grace_s: float = 3.0) -> None:
        """Graceful shutdown: SIGTERM every worker, SIGKILL stragglers."""
        self._stopping = True
        if self._monitor_thread is not None:
            self._monitor_thread.join(timeout=2.0)
        procs = []
        for handle in self._handles.values():
            with handle.lock:
                process = handle.process
            if process is not None and process.poll() is None:
                try:
                    process.terminate()
                except ProcessLookupError:  # pragma: no cover
                    continue
                procs.append(process)
        deadline = time.monotonic() + grace_s
        for process in procs:
            remaining = max(0.0, deadline - time.monotonic())
            try:
                process.wait(timeout=remaining)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        if self._tmp is not None:
            self._tmp.cleanup()
            self._tmp = None
