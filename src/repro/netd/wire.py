"""Byte codecs for everything the socket plane puts in a frame payload.

Three payload families cross process boundaries:

* **Protocol messages** (``pisa.messages``) already own canonical
  ``to_bytes``/``from_bytes`` encodings; frames carry those bytes
  verbatim.  :data:`PROTOCOL_KINDS` names the frame kind per class.
* **Shard sub-queries** (``cluster.shard`` dataclasses) existed only
  in-process before; this module gives them byte codecs built from the
  same :mod:`repro.crypto.serialization` primitives, matching the
  ``wire_size()`` arithmetic the §VI-A accounting already used (ε as a
  one-byte-magnitude sign flag, obfuscators with a presence flag).
* **Control frames** (hello, config, bootstrap, rand, clock, errors)
  are small JSON objects — sorted keys, UTF-8 — optionally followed by
  binary attachments via ``encode_bytes``.

Error propagation is typed end to end: a worker catches a
:class:`~repro.errors.ReproError`, ships ``{"error": <class name>,
"message": ...}`` in an ``err`` frame, and :func:`raise_remote_error`
re-raises the same class in the caller — so a remote
``ProtocolError`` is indistinguishable from a local one.
"""

from __future__ import annotations

import json

import repro.errors as errors_module
from repro.cluster.shard import (
    ShardPhase1Request,
    ShardPhase1Response,
    ShardPhase2Request,
    ShardPhase2Response,
)
from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.serialization import (
    decode_bytes,
    decode_ciphertext,
    decode_int,
    encode_bytes,
    encode_ciphertext,
    encode_int,
)
from repro.errors import ReproError, SerializationError, TransportError
from repro.pisa.blinding import CellBlinding
from repro.pisa.messages import (
    LicenseResponse,
    PUUpdateMessage,
    SignExtractionRequest,
    SignExtractionResponse,
    SURequestMessage,
)

__all__ = [
    "PROTOCOL_KINDS",
    "decode_control",
    "decode_error",
    "decode_phase1_request",
    "decode_phase1_response",
    "decode_phase2_request",
    "decode_phase2_response",
    "encode_control",
    "encode_error",
    "encode_phase1_request",
    "encode_phase1_response",
    "encode_phase2_request",
    "encode_phase2_response",
    "raise_remote_error",
]

#: Frame kind per protocol message class (payload = ``to_bytes()``).
PROTOCOL_KINDS: dict[type, str] = {
    PUUpdateMessage: "pu_update",
    SURequestMessage: "su_request",
    SignExtractionRequest: "sign_req",
    SignExtractionResponse: "sign_resp",
    LicenseResponse: "license_resp",
}


def _encode_str(value: str) -> bytes:
    return encode_bytes(value.encode("utf-8"))


def _decode_str(buffer: bytes, offset: int) -> tuple[str, int]:
    raw, offset = decode_bytes(buffer, offset)
    return raw.decode("utf-8"), offset


def _encode_ints(values: tuple[int, ...]) -> bytes:
    return encode_int(len(values)) + b"".join(encode_int(v) for v in values)


def _decode_ints(buffer: bytes, offset: int) -> tuple[tuple[int, ...], int]:
    count, offset = decode_int(buffer, offset)
    out = []
    for _ in range(count):
        value, offset = decode_int(buffer, offset)
        out.append(value)
    return tuple(out), offset


def _check_consumed(buffer: bytes, offset: int, what: str) -> None:
    if offset != len(buffer):
        raise SerializationError(f"trailing bytes in {what}")


# -- shard sub-queries ------------------------------------------------------------
#
# Dimensions travel as (rows, cols) headers; ε as 0/1 (−1 ↔ 0) so every
# field stays a non-negative ``encode_int`` — the same one-byte-magnitude
# sign flag the dataclasses' ``wire_size()`` arithmetic already assumed.


def encode_phase1_request(request: ShardPhase1Request) -> bytes:
    parts = [
        _encode_str(request.round_id),
        _encode_str(request.su_id),
        _encode_str(request.shard_id),
        encode_int(request.fence_token),
        _encode_ints(request.columns),
        _encode_ints(request.blocks),
        encode_int(len(request.matrix)),
        encode_int(len(request.matrix[0]) if request.matrix else 0),
    ]
    for row, blinding_row, obf_row in zip(
        request.matrix, request.blindings, request.obfuscators
    ):
        for ct, cell, r in zip(row, blinding_row, obf_row):
            parts.append(encode_ciphertext(ct))
            parts.append(encode_int(cell.alpha))
            parts.append(encode_int(cell.beta))
            parts.append(encode_int(1 if cell.epsilon == 1 else 0))
            if r is None:
                parts.append(encode_int(0))
            else:
                parts.append(encode_int(1))
                parts.append(encode_int(r))
    return b"".join(parts)


def decode_phase1_request(
    buffer: bytes, public_key: PaillierPublicKey
) -> ShardPhase1Request:
    round_id, offset = _decode_str(buffer, 0)
    su_id, offset = _decode_str(buffer, offset)
    shard_id, offset = _decode_str(buffer, offset)
    fence_token, offset = decode_int(buffer, offset)
    columns, offset = _decode_ints(buffer, offset)
    blocks, offset = _decode_ints(buffer, offset)
    n_rows, offset = decode_int(buffer, offset)
    n_cols, offset = decode_int(buffer, offset)
    matrix, blindings, obfuscators = [], [], []
    for _ in range(n_rows):
        ct_row, blinding_row, obf_row = [], [], []
        for _ in range(n_cols):
            ct, offset = decode_ciphertext(buffer, public_key, offset)
            alpha, offset = decode_int(buffer, offset)
            beta, offset = decode_int(buffer, offset)
            eps_flag, offset = decode_int(buffer, offset)
            has_r, offset = decode_int(buffer, offset)
            r = None
            if has_r:
                r, offset = decode_int(buffer, offset)
            ct_row.append(ct)
            blinding_row.append(
                CellBlinding(alpha=alpha, beta=beta, epsilon=1 if eps_flag else -1)
            )
            obf_row.append(r)
        matrix.append(tuple(ct_row))
        blindings.append(tuple(blinding_row))
        obfuscators.append(tuple(obf_row))
    _check_consumed(buffer, offset, "shard phase-1 request")
    return ShardPhase1Request(
        round_id=round_id,
        su_id=su_id,
        shard_id=shard_id,
        columns=columns,
        blocks=blocks,
        matrix=tuple(matrix),
        blindings=tuple(blindings),
        obfuscators=tuple(obfuscators),
        fence_token=fence_token,
    )


def encode_phase1_response(response: ShardPhase1Response) -> bytes:
    parts = [
        _encode_str(response.round_id),
        _encode_str(response.shard_id),
        _encode_ints(response.columns),
        encode_int(len(response.matrix)),
        encode_int(len(response.matrix[0]) if response.matrix else 0),
    ]
    for row in response.matrix:
        parts.extend(encode_ciphertext(ct) for ct in row)
    return b"".join(parts)


def decode_phase1_response(
    buffer: bytes, public_key: PaillierPublicKey
) -> ShardPhase1Response:
    round_id, offset = _decode_str(buffer, 0)
    shard_id, offset = _decode_str(buffer, offset)
    columns, offset = _decode_ints(buffer, offset)
    n_rows, offset = decode_int(buffer, offset)
    n_cols, offset = decode_int(buffer, offset)
    matrix = []
    for _ in range(n_rows):
        row = []
        for _ in range(n_cols):
            ct, offset = decode_ciphertext(buffer, public_key, offset)
            row.append(ct)
        matrix.append(tuple(row))
    _check_consumed(buffer, offset, "shard phase-1 response")
    return ShardPhase1Response(
        round_id=round_id, shard_id=shard_id, columns=columns, matrix=tuple(matrix)
    )


def encode_phase2_request(request: ShardPhase2Request) -> bytes:
    parts = [
        _encode_str(request.round_id),
        _encode_str(request.shard_id),
        encode_int(request.fence_token),
        _encode_ints(request.columns),
        encode_int(len(request.matrix)),
        encode_int(len(request.matrix[0]) if request.matrix else 0),
    ]
    for row, eps_row in zip(request.matrix, request.epsilons):
        for ct, epsilon in zip(row, eps_row):
            parts.append(encode_ciphertext(ct))
            parts.append(encode_int(1 if epsilon == 1 else 0))
    return b"".join(parts)


def decode_phase2_request(
    buffer: bytes, su_public_key: PaillierPublicKey
) -> ShardPhase2Request:
    round_id, offset = _decode_str(buffer, 0)
    shard_id, offset = _decode_str(buffer, offset)
    fence_token, offset = decode_int(buffer, offset)
    columns, offset = _decode_ints(buffer, offset)
    n_rows, offset = decode_int(buffer, offset)
    n_cols, offset = decode_int(buffer, offset)
    matrix, epsilons = [], []
    for _ in range(n_rows):
        ct_row, eps_row = [], []
        for _ in range(n_cols):
            ct, offset = decode_ciphertext(buffer, su_public_key, offset)
            eps_flag, offset = decode_int(buffer, offset)
            ct_row.append(ct)
            eps_row.append(1 if eps_flag else -1)
        matrix.append(tuple(ct_row))
        epsilons.append(tuple(eps_row))
    _check_consumed(buffer, offset, "shard phase-2 request")
    return ShardPhase2Request(
        round_id=round_id,
        shard_id=shard_id,
        columns=columns,
        matrix=tuple(matrix),
        epsilons=tuple(epsilons),
        fence_token=fence_token,
    )


def encode_phase2_response(response: ShardPhase2Response) -> bytes:
    return b"".join(
        [
            _encode_str(response.round_id),
            _encode_str(response.shard_id),
            encode_int(response.cell_count),
            encode_ciphertext(response.partial_q),
        ]
    )


def decode_phase2_response(
    buffer: bytes, su_public_key: PaillierPublicKey
) -> ShardPhase2Response:
    round_id, offset = _decode_str(buffer, 0)
    shard_id, offset = _decode_str(buffer, offset)
    cell_count, offset = decode_int(buffer, offset)
    partial_q, offset = decode_ciphertext(buffer, su_public_key, offset)
    _check_consumed(buffer, offset, "shard phase-2 response")
    return ShardPhase2Response(
        round_id=round_id,
        shard_id=shard_id,
        cell_count=cell_count,
        partial_q=partial_q,
    )


# -- control frames ---------------------------------------------------------------


def encode_control(obj: dict, *attachments: bytes) -> bytes:
    """A JSON control header plus ordered binary attachments."""
    payload = encode_bytes(
        json.dumps(obj, sort_keys=True, separators=(",", ":")).encode("utf-8")
    )
    return payload + b"".join(encode_bytes(blob) for blob in attachments)


def decode_control(
    payload: bytes, num_attachments: int = 0
) -> tuple[dict, list[bytes]]:
    raw, offset = decode_bytes(payload, 0)
    try:
        obj = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise SerializationError(f"malformed control frame: {exc}") from exc
    if not isinstance(obj, dict):
        raise SerializationError("control frame header must be a JSON object")
    attachments = []
    for _ in range(num_attachments):
        blob, offset = decode_bytes(payload, offset)
        attachments.append(blob)
    _check_consumed(payload, offset, "control frame")
    return obj, attachments


# -- typed remote errors ----------------------------------------------------------


def encode_error(exc: BaseException) -> bytes:
    """Serialise an exception for an ``err`` frame."""
    return encode_control({"error": type(exc).__name__, "message": str(exc)})


def decode_error(payload: bytes) -> tuple[str, str]:
    obj, _ = decode_control(payload)
    return str(obj.get("error", "TransportError")), str(obj.get("message", ""))


def raise_remote_error(payload: bytes, peer: str) -> None:
    """Re-raise a worker-side failure under its original typed class.

    Unknown names (a worker running newer code, a non-Repro exception)
    degrade to :class:`~repro.errors.TransportError` rather than being
    swallowed.
    """
    name, message = decode_error(payload)
    exc_type = getattr(errors_module, name, None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(f"{peer}: {message}")
    raise TransportError(f"{peer} failed with {name}: {message}")
