"""DET0xx — determinism prover rules.

The stack's defining invariant is that a seeded run produces
byte-identical protocol transcripts across the in-memory, cluster, and
socket planes.  Everything that can silently break that invariant has
one of five shapes, and each gets a rule:

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``…)
  outside the injected Clock seam.  Monotonic/perf-counter reads are
  fine (local measurement only).
* **DET002** — ambient randomness (``random``, ``secrets``,
  ``os.urandom``, ``uuid4``) reachable from transcript-producing code
  outside the journaled RandomSource funnel.
* **DET003** — iterating a ``set``/``frozenset`` where the iteration
  order can feed serialized output; set order varies across processes
  when PYTHONHASHSEED varies.
* **DET004** — the ``hash()`` builtin on protocol values;
  ``PYTHONHASHSEED`` randomizes string hashing per process.
* **DET005** — float accumulation in ΣQ̃-style sums; float addition is
  non-associative, so a different reduction order changes the bytes.

DET001/DET002 are *summary* rules: they use the interprocedural fact
lattice, so a wall-clock read three calls deep in a helper module is
attributed to the in-scope call site that reaches it.  DET003–005 match
local operation records extracted into the same summaries.
"""

from __future__ import annotations

from typing import Iterator

from repro.audit.findings import Finding
from repro.audit.registry import register_rule
from repro.audit.taint import FACT_AMBIENT_RANDOM, FACT_WALLCLOCK


def _finding_from_op(op, info, rule: str, message: str, path: str) -> Finding:
    return Finding(
        path=path,
        line=op.lineno,
        col=op.col,
        rule=rule,
        message=message,
        module=info.module,
        context=op.context,
        snippet=op.snippet,
    )


def _finding_from_call(call, info, rule: str, message: str, path: str) -> Finding:
    return Finding(
        path=path,
        line=call.lineno,
        col=call.col,
        rule=rule,
        message=message,
        module=info.module,
        context=call.context,
        snippet=call.snippet,
    )


def _fact_findings(project, config, *, fact, op_kind, rule, noun) -> Iterator[Finding]:
    """Shared shape of DET001/DET002: local ops + boundary-crossing calls."""
    for module, summary in sorted(project.modules.items()):
        if not config.in_scope(module, config.determinism_scope):
            continue
        for info in summary.functions.values():
            for op in info.ops:
                if op.kind == op_kind:
                    if fact == FACT_WALLCLOCK and module in config.clock_seam_modules:
                        continue
                    if fact == FACT_AMBIENT_RANDOM and module in config.randomness_allowed:
                        continue
                    yield _finding_from_op(
                        op,
                        info,
                        rule,
                        f"{noun} via {op.detail} — inject it through the "
                        "seeded seam instead",
                        summary.path,
                    )
            for call in info.calls:
                for callee in project.resolve(module, info.qualname, call.callee):
                    callee_info = project.functions[callee]
                    if config.in_scope(callee_info.module, config.determinism_scope):
                        continue  # the source itself is flagged there
                    provenance = project.facts.get(callee, {}).get(fact)
                    if provenance:
                        yield _finding_from_call(
                            call,
                            info,
                            rule,
                            f"{noun} reachable through {call.callee}() "
                            f"({provenance})",
                            summary.path,
                        )
                        break


@register_rule(
    "DET001",
    "no wall-clock reads outside the injected Clock seam",
    kind="summary",
    rationale=(
        "Transcript bytes must be a function of (seed, inputs) alone. A "
        "time.time()/datetime.now() read anywhere on a transcript path makes "
        "replay runs diverge from the journal; every timestamp must flow "
        "through the injected clock so tests and replay can pin it. "
        "time.monotonic/perf_counter are exempt — they never reach "
        "serialized output, only local duration measurement."
    ),
    bad="issued_at = int(time.time())        # wall clock inside the protocol",
    good="issued_at = int(self._clock())      # injected seam, replayable",
)
def check_wallclock(project, config) -> Iterator[Finding]:
    yield from _fact_findings(
        project,
        config,
        fact=FACT_WALLCLOCK,
        op_kind="wallclock",
        rule="DET001",
        noun="wall-clock read",
    )


@register_rule(
    "DET002",
    "no ambient randomness reachable from transcript-producing code",
    kind="summary",
    rationale=(
        "All entropy must flow through the journaled RandomSource so a "
        "transcript can be replayed draw-for-draw. An os.urandom/uuid4/"
        "random.random call reachable from protocol code — even three "
        "helpers deep — silently desynchronizes replay. CRY001 already "
        "flags the imports; DET002 follows the *calls* across functions."
    ),
    bad="nonce = os.urandom(16)              # invisible to the journal",
    good="nonce = rng.randbits(128)           # journaled RandomSource draw",
)
def check_ambient_randomness(project, config) -> Iterator[Finding]:
    yield from _fact_findings(
        project,
        config,
        fact=FACT_AMBIENT_RANDOM,
        op_kind="ambient-random",
        rule="DET002",
        noun="ambient randomness",
    )


@register_rule(
    "DET003",
    "no set/frozenset iteration where order can feed serialized output",
    kind="summary",
    rationale=(
        "Set iteration order depends on PYTHONHASHSEED and insertion "
        "history, so two processes disagree on it. Any loop over a set "
        "that appends to a message, a journal record, or a ΣQ̃ "
        "accumulation produces plane-dependent bytes. Sort first: the "
        "transcript needs one canonical order anyway."
    ),
    bad="for su_id in shard_ids:             # shard_ids is a set",
    good="for su_id in sorted(shard_ids):     # canonical transcript order",
)
def check_set_iteration(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not config.in_scope(module, config.determinism_scope):
            continue
        for info in summary.functions.values():
            for op in info.ops:
                if op.kind == "set-iter":
                    yield _finding_from_op(
                        op,
                        info,
                        "DET003",
                        f"iteration over an unordered set ({op.detail}) — "
                        "wrap in sorted() to fix the transcript order",
                        summary.path,
                    )


@register_rule(
    "DET004",
    "no hash() builtin on protocol values",
    kind="summary",
    rationale=(
        "hash() on str/bytes is salted per process by PYTHONHASHSEED: the "
        "same SU id hashes differently on every worker, so any routing, "
        "bucketing, or dedup keyed on hash() diverges across the planes. "
        "Use repro.crypto.hashing.sha256 (stable) or int keys. Defining "
        "__hash__ on a value type is fine — calling the builtin is not."
    ),
    bad="bucket = hash(su_id) % shards       # salted per process",
    good="bucket = stable_bucket(su_id, shards)  # sha256-based, plane-stable",
)
def check_hash_builtin(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not config.in_scope(module, config.determinism_scope):
            continue
        for info in summary.functions.values():
            for op in info.ops:
                if op.kind == "hash":
                    yield _finding_from_op(
                        op,
                        info,
                        "DET004",
                        "hash() is PYTHONHASHSEED-salted and differs across "
                        "processes — use repro.crypto.hashing for stable digests",
                        summary.path,
                    )


@register_rule(
    "DET005",
    "no float accumulation in protocol-core sums",
    kind="summary",
    rationale=(
        "Float addition is non-associative: reordering a ΣQ̃ reduction "
        "(e.g. merging shard partials in a different order) changes the "
        "low bits, which changes ciphertext plaintexts, which changes "
        "transcript bytes. Protocol sums must stay in exact integer "
        "(fixed-point) arithmetic; floats belong in analysis/reporting "
        "code only."
    ),
    bad="total += q_tilde / scale            # float partial sums reorder",
    good="total += q_fixed                    # integer fixed-point, exact",
)
def check_float_accumulation(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not config.in_scope(module, config.float_accum_scope):
            continue
        for info in summary.functions.values():
            for op in info.ops:
                if op.kind == "float-accum":
                    yield _finding_from_op(
                        op,
                        info,
                        "DET005",
                        f"float accumulation ({op.detail}) in protocol core — "
                        "use integer fixed-point so reduction order cannot "
                        "change the bytes",
                        summary.path,
                    )
