"""RES001 — ad-hoc retry loops and bare exception swallowing.

All retry behaviour in the runtime layers is supposed to flow through
:func:`repro.resilience.policy.run_with_policy`, which provides jittered
backoff, budgets, idempotency keys, and circuit breaking.  A hand-rolled
``while: ... sleep(...)`` loop or a bare ``except:`` handler bypasses all
of that: the loop retries forever with no budget, and the bare handler
swallows ``KeyboardInterrupt``/``SystemExit`` along with the error it
meant to catch.  The rule flags:

* bare ``except:`` handlers (no exception type) anywhere in scope;
* calls to ``time.sleep``/``asyncio.sleep`` (or a bare ``sleep``)
  lexically inside a ``while``/``for`` loop — the signature shape of a
  homemade retry loop.

:mod:`repro.resilience.policy` itself is exempt — it is the one place a
sleep-in-a-loop is the point.  Legitimate pacing sleeps (e.g. open-loop
load generators) carry an inline ``# audit-ok: RES001`` waiver.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule

RULE_ID = "RES001"

_SLEEP_MODULES = ("time", "asyncio")


def _is_sleep_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "sleep":
        return (
            isinstance(func.value, ast.Name) and func.value.id in _SLEEP_MODULES
        )
    if isinstance(func, ast.Name) and func.id == "sleep":
        return True
    return False


def _scan(unit, node: ast.AST, loop_depth: int, qualname: str) -> Iterator:
    for child in ast.iter_child_nodes(node):
        child_qualname = qualname
        child_depth = loop_depth
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def starts a fresh lexical context: a sleep inside
            # a callback defined in a loop body does not itself loop.
            child_qualname = (
                child.name if qualname == "<module>" else f"{qualname}.{child.name}"
            )
            child_depth = 0
        elif isinstance(child, (ast.While, ast.For, ast.AsyncFor)):
            child_depth = loop_depth + 1
        if isinstance(child, ast.ExceptHandler) and child.type is None:
            yield unit.finding(
                child,
                RULE_ID,
                "bare 'except:' swallows BaseException — catch a typed "
                "repro.errors exception instead",
                context=qualname,
            )
        if isinstance(child, ast.Call) and _is_sleep_call(child) and loop_depth > 0:
            yield unit.finding(
                child,
                RULE_ID,
                "sleep inside a loop is an ad-hoc retry — use "
                "repro.resilience.policy.run_with_policy",
                context=qualname,
            )
        yield from _scan(unit, child, child_depth, child_qualname)


@register_rule(RULE_ID, "ad-hoc retry loop or bare except outside the policy engine")
def check_adhoc_resilience(unit, config) -> Iterator:
    if not config.in_scope(unit.module, config.resilience_scope):
        return
    if unit.module in config.resilience_exempt:
        return
    yield from _scan(unit, unit.tree, 0, "<module>")
