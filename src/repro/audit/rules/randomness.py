"""CRY001 — all randomness (and hashing) flows through the crypto façade.

Blinding factors, obfuscators, and keys must come from
:class:`repro.crypto.rand.RandomSource` so that (a) tests can inject the
deterministic source, and (b) the transcript-order invariant holds — a
stray ``random.random()`` or ``os.urandom`` call is invisible to the
deterministic replay machinery and silently breaks byte-identical
transcripts.  The same funneling applies to :mod:`hashlib`: the shared
``repro.crypto.hashing`` helper is the one place allowed to touch it, so
a future hash-agility change is a one-line edit.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule
from repro.audit.rules.common import build_context_map

RULE_ID = "CRY001"

_RANDOM_MODULES = {"random", "secrets"}


@register_rule(RULE_ID, "randomness must flow through repro.crypto.rand.RandomSource")
def check_randomness(unit, config) -> Iterator:
    randomness_ok = unit.module in config.randomness_allowed
    hashing_ok = unit.module in config.hashing_allowed
    contexts = build_context_map(unit.tree)

    def ctx(node: ast.AST) -> str:
        return contexts.get(id(node), "<module>")

    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".")[0]
                if root in _RANDOM_MODULES and not randomness_ok:
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"direct import of '{alias.name}' — use "
                        "repro.crypto.rand.RandomSource instead",
                        context=ctx(node),
                    )
                elif root == "hashlib" and not hashing_ok:
                    yield unit.finding(
                        node,
                        RULE_ID,
                        "direct import of 'hashlib' — use repro.crypto.hashing",
                        context=ctx(node),
                    )
        elif isinstance(node, ast.ImportFrom):
            root = (node.module or "").split(".")[0]
            if root in _RANDOM_MODULES and not randomness_ok:
                yield unit.finding(
                    node,
                    RULE_ID,
                    f"direct import from '{node.module}' — use "
                    "repro.crypto.rand.RandomSource instead",
                    context=ctx(node),
                )
            elif root == "hashlib" and not hashing_ok:
                yield unit.finding(
                    node,
                    RULE_ID,
                    "direct import from 'hashlib' — use repro.crypto.hashing",
                    context=ctx(node),
                )
        elif isinstance(node, ast.Call) and not randomness_ok:
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "urandom"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                yield unit.finding(
                    node,
                    RULE_ID,
                    "os.urandom bypasses RandomSource — use "
                    "repro.crypto.rand.SystemRandomSource",
                    context=ctx(node),
                )
