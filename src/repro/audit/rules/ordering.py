"""ORD001 — transcript-order invariant inside protocol hot loops.

The PISA implementation guarantees byte-identical transcripts whether
``pow_many`` runs on the :class:`~repro.crypto.parallel.SerialExecutor`
or a process pool.  That only holds if *all* randomness for a protocol
step is drawn in the parent, in protocol order, **before** the first
executor dispatch.  An ``rng`` draw after ``pow_many`` means the draw's
position in the stream depends on batching, and deterministic replays
diverge between executors.

The rule is per-function and linear: within each function in the
``repro.pisa`` package, any RNG draw appearing (in source order) after
the first executor dispatch is flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule
from repro.audit.rules.common import iter_function_defs, nodes_in_source_order

RULE_ID = "ORD001"

#: Method names that always denote an RNG draw.
_DRAW_ATTRS = {"randbits", "randbelow", "randrange", "rand_odd", "random_r", "draw_eta"}
#: Method names that are draws only when the receiver looks like an RNG.
_DRAW_ATTRS_ON_RNG = {"choice", "draw", "fork"}
#: Receiver identifiers (substring, lowercase) that mark an RNG-ish object.
_RNG_RECEIVERS = ("rng", "factory")

#: Method names that denote an executor dispatch.
_DISPATCH_ATTRS = {"pow_many"}
_DISPATCH_ATTRS_ON_EXECUTOR = {"submit", "map"}


def _receiver_name(func: ast.Attribute) -> str:
    value = func.value
    if isinstance(value, ast.Name):
        return value.id
    if isinstance(value, ast.Attribute):
        return value.attr
    return ""


def _is_draw(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr in _DRAW_ATTRS:
        return True
    if attr in _DRAW_ATTRS_ON_RNG:
        receiver = _receiver_name(node.func).lower()
        return any(tag in receiver for tag in _RNG_RECEIVERS)
    return False


def _is_dispatch(node: ast.Call) -> bool:
    if not isinstance(node.func, ast.Attribute):
        return False
    attr = node.func.attr
    if attr in _DISPATCH_ATTRS:
        return True
    if attr in _DISPATCH_ATTRS_ON_EXECUTOR:
        receiver = _receiver_name(node.func).lower()
        return "executor" in receiver or "pool" in receiver
    return False


@register_rule(RULE_ID, "draw all randomness before the first executor dispatch")
def check_transcript_order(unit, config) -> Iterator:
    if not config.in_scope(unit.module, config.ordering_scope):
        return
    for qualname, func in iter_function_defs(unit.tree):
        dispatched = False
        for node in nodes_in_source_order(func):
            if not isinstance(node, ast.Call):
                continue
            if _is_dispatch(node):
                dispatched = True
            elif dispatched and _is_draw(node):
                yield unit.finding(
                    node,
                    RULE_ID,
                    "RNG draw after executor dispatch — breaks the "
                    "transcript-order invariant (draw all randomness before "
                    "pow_many)",
                    context=qualname,
                )
