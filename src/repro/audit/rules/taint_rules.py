"""Taint-driven rules: CRY002 (float math), SEC001 (leaky logging),
SEC002 (secret-dependent branching).

All three share the intra-function taint walk from
:mod:`repro.audit.taint`, seeded by the secret-identifier registry.

* **CRY002** — Paillier/Damgård–Jurik arithmetic is exact integer math;
  a float sneaking into a blinding factor or ciphertext silently
  truncates and breaks eq. (14)/(17) correctness.  True division ``/``,
  ``float(...)`` coercion, and mixing float literals into tainted
  expressions are all flagged; ``//`` floor division is fine.
* **SEC001** — logging or printing a secret-derived value leaks exactly
  the material the protocol exists to hide.  Applies in the protocol and
  service layers, where log lines leave the process.
* **SEC002** — branching on a secret-derived value creates a timing /
  control-flow side channel.  The STP sign-extraction modules are the
  one place the protocol *requires* comparing a decrypted value, so they
  are exempt by configuration.

Engine v2 makes all three *interprocedural*: when a project call graph
is available, locals bound from calls that resolve to secret-returning
functions (``material = secret_part(key)``) are seeded into the taint
set, so a leak split across two functions is no longer invisible.
Without a project (unit tests, ``run_unit``) the rules degrade to the
intra-function analysis.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule
from repro.audit.taint import (
    expr_is_tainted,
    interprocedural_seeds,
    tainted_names,
)
from repro.audit.rules.common import iter_function_defs


def _tainted(expr: ast.AST, tainted: frozenset[str], config) -> bool:
    return expr_is_tainted(expr, tainted, config.secret_names)


def _taint_set(func, unit, config, project, qualname) -> frozenset[str]:
    """Intra-function taint plus cross-function secret-return seeds."""
    local = tainted_names(func, config.secret_names)
    seeds = interprocedural_seeds(func, project, unit.module, qualname)
    if not seeds:
        return local
    # Seeds are taint sources too: rerun the fixpoint with them treated
    # as secret names so second-order assignments propagate.
    widened = tainted_names(func, config.secret_names | seeds)
    return local | seeds | widened


def _has_float_constant(expr: ast.AST) -> bool:
    return any(
        isinstance(node, ast.Constant) and isinstance(node.value, float)
        for node in ast.walk(expr)
    )


@register_rule(
    "CRY002",
    "no float arithmetic or true division on secret-derived values",
    kind="taint",
    rationale=(
        "Paillier/Damgård–Jurik arithmetic is exact integer math mod n^(s+1); "
        "a float truncates silently and breaks the eq. (14)/(17) recovery "
        "identities, corrupting every transcript downstream."
    ),
    bad="noise = lam / 2            # true division on the Carmichael secret",
    good="noise = lam // 2           # floor division stays in the integers",
)
def check_float_taint(unit, config, project=None) -> Iterator:
    if not config.in_scope(unit.module, config.taint_scope):
        return
    for qualname, func in iter_function_defs(unit.tree):
        tainted = _taint_set(func, unit, config, project, qualname)
        for node in ast.walk(func):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Div):
                if _tainted(node.left, tainted, config) or _tainted(
                    node.right, tainted, config
                ):
                    yield unit.finding(
                        node,
                        "CRY002",
                        "true division '/' on a secret-derived value — modular "
                        "arithmetic needs '//' or modinv",
                        context=qualname,
                    )
            elif isinstance(node, ast.BinOp) and _has_float_constant(node):
                if _tainted(node, tainted, config):
                    yield unit.finding(
                        node,
                        "CRY002",
                        "float constant mixed into secret-derived arithmetic",
                        context=qualname,
                    )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "float"
                and any(_tainted(arg, tainted, config) for arg in node.args)
            ):
                yield unit.finding(
                    node,
                    "CRY002",
                    "float() coercion of a secret-derived value",
                    context=qualname,
                )


def _is_log_call(node: ast.Call) -> bool:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id == "print"
    if isinstance(func, ast.Attribute):
        receiver = func.value
        receiver_name = ""
        if isinstance(receiver, ast.Name):
            receiver_name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            receiver_name = receiver.attr
        return "log" in receiver_name.lower() and func.attr in {
            "debug",
            "info",
            "warning",
            "error",
            "critical",
            "exception",
            "log",
        }
    return False


@register_rule(
    "SEC001",
    "no logging/printing/interpolation of secret-derived values",
    kind="taint",
    rationale=(
        "A log line or f-string carrying sk/λ/μ or a blinding factor leaks "
        "exactly the material PISA's privacy argument assumes stays inside "
        "the process; log aggregation makes the leak durable. The v2 engine "
        "follows secrets through helper-function returns, so splitting the "
        "leak across two functions no longer hides it."
    ),
    bad=(
        "material = secret_part(key)   # helper returns key.lam\n"
        "log.info(material)            # cross-function leak"
    ),
    good='log.info("keygen done", extra={"bits": key.bits})  # sizes only',
)
def check_secret_logging(unit, config, project=None) -> Iterator:
    if not config.in_scope(unit.module, config.logging_scope):
        return
    for qualname, func in iter_function_defs(unit.tree):
        tainted = _taint_set(func, unit, config, project, qualname)
        for node in ast.walk(func):
            if isinstance(node, ast.Call) and _is_log_call(node):
                args = list(node.args) + [kw.value for kw in node.keywords]
                if any(_tainted(arg, tainted, config) for arg in args):
                    yield unit.finding(
                        node,
                        "SEC001",
                        "secret-derived value reaches a log/print sink",
                        context=qualname,
                    )
            elif isinstance(node, ast.JoinedStr):
                for part in node.values:
                    if isinstance(part, ast.FormattedValue) and _tainted(
                        part.value, tainted, config
                    ):
                        yield unit.finding(
                            node,
                            "SEC001",
                            "f-string interpolates a secret-derived value",
                            context=qualname,
                        )
                        break


@register_rule(
    "SEC002",
    "no branching/comparison on secret-derived values",
    kind="taint",
    rationale=(
        "Branching on secret-derived values creates control-flow timing "
        "side channels; only the STP sign-extraction modules are sanctioned "
        "to compare decrypted values, and they are exempt by configuration."
    ),
    bad="if lam > threshold:          # timing reveals the secret's magnitude",
    good="mask = int(gcd(lam, n) != 1)  # constant-shape arithmetic selection",
)
def check_secret_branching(unit, config, project=None) -> Iterator:
    if not config.in_scope(unit.module, config.taint_scope):
        return
    if unit.module in config.sign_extraction_modules:
        return  # sign extraction is the protocol's sanctioned secret compare
    for qualname, func in iter_function_defs(unit.tree):
        tainted = _taint_set(func, unit, config, project, qualname)
        for node in ast.walk(func):
            if isinstance(node, ast.Compare):
                operands = [node.left] + list(node.comparators)
                if any(_tainted(op, tainted, config) for op in operands):
                    yield unit.finding(
                        node,
                        "SEC002",
                        "comparison on a secret-derived value — potential "
                        "control-flow side channel",
                        context=qualname,
                    )
            elif isinstance(node, (ast.If, ast.While, ast.IfExp)):
                test = node.test
                if not isinstance(test, ast.Compare) and _tainted(
                    test, tainted, config
                ):
                    yield unit.finding(
                        test,
                        "SEC002",
                        "branch condition depends on a secret-derived value",
                        context=qualname,
                    )
