"""Shared AST helpers used by several rules."""

from __future__ import annotations

import ast
from typing import Iterator

__all__ = [
    "build_context_map",
    "iter_function_defs",
    "terminal_identifier",
    "mentions_identifier",
    "nodes_in_source_order",
]


def build_context_map(tree: ast.Module) -> dict[int, str]:
    """Map ``id(node)`` → enclosing qualified name for every node.

    Module-level nodes map to ``<module>``; nodes inside ``class C: def
    f():`` map to ``C.f``.  Def/class nodes map to their own qualname so a
    finding on a signature line reads naturally.
    """
    ctx_map: dict[int, str] = {}

    def visit(node: ast.AST, ctx: str) -> None:
        child_ctx = ctx
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            child_ctx = node.name if ctx == "<module>" else f"{ctx}.{node.name}"
            ctx_map[id(node)] = child_ctx
        else:
            ctx_map[id(node)] = ctx
        for child in ast.iter_child_nodes(node):
            visit(child, child_ctx)

    visit(tree, "<module>")
    return ctx_map


def iter_function_defs(
    tree: ast.Module,
) -> Iterator[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield ``(qualname, def-node)`` for every function in the module."""

    def walk(node: ast.AST, ctx: str) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = child.name if ctx == "<module>" else f"{ctx}.{child.name}"
                yield qualname, child
                yield from walk(child, qualname)
            elif isinstance(child, ast.ClassDef):
                qualname = child.name if ctx == "<module>" else f"{ctx}.{child.name}"
                yield from walk(child, qualname)
            else:
                yield from walk(child, ctx)

    yield from walk(tree, "<module>")


def terminal_identifier(expr: ast.AST) -> str:
    """The last dotted component of a name-ish expression ('' otherwise)."""
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Attribute):
        return expr.attr
    if isinstance(expr, ast.Call):
        return terminal_identifier(expr.func)
    return ""


def mentions_identifier(expr: ast.AST, fragment: str) -> bool:
    """True when any Name/Attribute in ``expr`` contains ``fragment``."""
    fragment = fragment.lower()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and fragment in node.id.lower():
            return True
        if isinstance(node, ast.Attribute) and fragment in node.attr.lower():
            return True
    return False


def nodes_in_source_order(root: ast.AST) -> list[ast.AST]:
    """All located descendants of ``root`` sorted by (line, col)."""
    located = [
        node
        for node in ast.walk(root)
        if hasattr(node, "lineno") and hasattr(node, "col_offset")
    ]
    located.sort(key=lambda n: (n.lineno, n.col_offset))
    return located
