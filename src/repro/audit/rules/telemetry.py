"""TEL001 — secret material must never reach the telemetry plane.

Spans and metrics are *exported*: the tracer renders attribute values,
and the metrics registry serialises every label into the Prometheus
exposition.  A secret that leaks into either outlives the process's
memory-hygiene guarantees.  The runtime already refuses secret-*named*
attribute keys and label names (:mod:`repro.telemetry`), but a value
smuggled under an innocent key (``span.set_attribute("x", sk)``) passes
the runtime check — this rule closes that gap statically.

Flagged, inside ``telemetry_scope``:

* ``set_attribute(<secret-name>, ...)`` or ``set_attribute(..., <expr
  mentioning a secret identifier>)``;
* keyword arguments to the recording surfaces (``start_span`` /
  ``child`` / ``counter`` / ``gauge`` / ``histogram`` / ``timer``)
  whose *name* is a secret identifier or whose *value expression*
  mentions one;
* ``inc`` / ``set`` / ``observe`` / ``record`` calls whose argument
  mentions a secret identifier (a counter incremented *by* ``lam`` is
  as much a leak as a label).

"Mentions" is the same identifier test the secret-logging rule (SEC001)
uses: any :class:`ast.Name` or attribute access whose terminal name is
exactly one of ``config.secret_names``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule

RULE_ID = "TEL001"

#: Callables that create spans / metric instruments and accept ``**labels``
#: or ``**attributes`` keywords rendered into exports.
_RECORDING_FUNCS = frozenset(
    {"start_span", "child", "counter", "gauge", "histogram", "timer"}
)

#: Instrument methods whose positional argument becomes an exported value.
_VALUE_FUNCS = frozenset({"inc", "set", "observe", "record"})


def _callee_name(func: ast.AST) -> str:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return ""


def _secret_identifiers(expr: ast.AST, secret_names: frozenset[str]) -> set[str]:
    """Terminal identifiers in ``expr`` that exactly match a secret name."""
    found: set[str] = set()
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in secret_names:
            found.add(node.id)
        elif isinstance(node, ast.Attribute) and node.attr in secret_names:
            found.add(node.attr)
    return found


@register_rule(RULE_ID, "secret-typed value recorded as span attribute or metric label")
def check_telemetry_hygiene(unit, config) -> Iterator:
    if not config.in_scope(unit.module, config.telemetry_scope):
        return
    secret_names = config.secret_names
    for node in ast.walk(unit.tree):
        if not isinstance(node, ast.Call):
            continue
        callee = _callee_name(node.func)
        if callee == "set_attribute":
            if node.args and isinstance(node.args[0], ast.Constant):
                key = node.args[0].value
                if isinstance(key, str) and key in secret_names:
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"span attribute key {key!r} names secret material",
                    )
            for value in node.args[1:]:
                for name in sorted(_secret_identifiers(value, secret_names)):
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"span attribute value mentions secret {name!r}",
                    )
        elif callee in _RECORDING_FUNCS:
            for keyword in node.keywords:
                if keyword.arg is not None and keyword.arg in secret_names:
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"telemetry label/attribute {keyword.arg!r} names "
                        "secret material",
                    )
                    continue
                for name in sorted(
                    _secret_identifiers(keyword.value, secret_names)
                ):
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"telemetry label/attribute value mentions secret "
                        f"{name!r}",
                    )
        elif callee in _VALUE_FUNCS:
            for arg in node.args:
                for name in sorted(_secret_identifiers(arg, secret_names)):
                    yield unit.finding(
                        node,
                        RULE_ID,
                        f"metric value expression mentions secret {name!r}",
                    )
