"""Rule modules — importing this package registers every built-in rule."""

from __future__ import annotations

from repro.audit.rules import (  # noqa: F401
    concurrency,
    determinism,
    net,
    ordering,
    randomness,
    resilience,
    service,
    taint_rules,
    telemetry,
)

__all__ = [
    "concurrency",
    "determinism",
    "net",
    "ordering",
    "randomness",
    "resilience",
    "service",
    "taint_rules",
    "telemetry",
]
