"""NET001 — wire-format and socket primitives outside their owners.

The socket plane has exactly one byte-layout authority per concern:
:mod:`repro.netd.framing` owns the frame header (``struct``),
:mod:`repro.crypto.serialization` owns ciphertext encodings, and
:mod:`repro.resilience.journal` owns its record layout.  Any other
module reaching for ``socket``/``struct`` is inventing a second wire
format the equivalence tests don't cover, and ``pickle``/``marshal``
anywhere in the protocol path is worse: both execute attacker-chosen
bytecode/constructors on load, which for a service that accepts frames
from the network is remote code execution waiting for a peer.

The rule flags ``import``/``from … import`` of the four primitive
modules outside the owner allowlist.  Legitimate one-off uses carry an
inline ``# audit-ok: NET001`` waiver naming the reason.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule

RULE_ID = "NET001"

#: Modules whose import means "I am defining a wire format / raw socket".
_PRIMITIVES = {"socket", "pickle", "marshal", "struct"}

_REASONS = {
    "socket": "raw sockets belong to repro.netd (framed, CRC-checked, TLS-able)",
    "struct": "byte layouts belong to a single owner module per format",
    "pickle": "pickle.load runs attacker-chosen constructors — never on wire data",
    "marshal": "marshal.loads executes untrusted bytecode — never on wire data",
}


def _imported_primitives(node: ast.AST) -> Iterator[str]:
    if isinstance(node, ast.Import):
        for alias in node.names:
            root = alias.name.split(".", 1)[0]
            if root in _PRIMITIVES:
                yield root
    elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
        root = node.module.split(".", 1)[0]
        if root in _PRIMITIVES:
            yield root


@register_rule(RULE_ID, "socket/struct/pickle primitives outside repro.netd owners")
def check_network_primitives(unit, config) -> Iterator:
    if not config.in_scope(unit.module, config.network_scope):
        return
    if config.in_scope(unit.module, config.network_owned):
        return
    if unit.module in config.network_allowed:
        return
    for node in ast.walk(unit.tree):
        for name in _imported_primitives(node):
            yield unit.finding(
                node,
                RULE_ID,
                f"import of {name!r} outside the wire-format owners — "
                f"{_REASONS[name]}",
                context=unit.module,
            )
