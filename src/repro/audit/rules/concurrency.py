"""ASY0xx — asyncio-hygiene rules for the socket plane.

``repro.netd`` runs the protocol over a real event loop with worker
processes and a monitor thread; ``repro.service`` runs the broker loop.
Five failure shapes cover the concurrency bugs that actually bite
there:

* **ASY001** — a blocking call (``time.sleep``, sync socket/file I/O,
  ``fsync``) *reachable* from a coroutine: it stalls every connection
  on the loop, not just the caller.  The sanctioned escape hatch is
  ``asyncio.to_thread``/``run_in_executor``, which the fact lattice
  treats as a mask.
* **ASY002** — calling a coroutine function without ``await``: the body
  never runs and the bug is silent until a "never awaited" warning in
  some unrelated test.
* **ASY003** — ``create_task``/``ensure_future`` whose result is
  dropped: the event loop keeps only a weak reference, so the task can
  be garbage-collected mid-flight, and its exceptions vanish.
* **ASY004** — shared ``self`` state read before an ``await`` and
  written after it without a lock: another task interleaves inside the
  window and the write clobbers its update.
* **ASY005** — sync code touching a live loop with non-thread-safe
  methods (``loop.call_soon``/``create_task``): from the supervisor's
  monitor thread this corrupts the loop's internal queues; the
  thread-safe spellings exist for exactly this.

All five are *summary* rules: they run over cached module summaries and
the interprocedural fact lattice, never re-parsing unchanged files.
"""

from __future__ import annotations

from typing import Iterator

from repro.audit.findings import Finding
from repro.audit.registry import register_rule
from repro.audit.taint import FACT_BLOCKING

_SPAWNERS = ("create_task", "ensure_future")


def _finding(summary, info, anchor, rule: str, message: str) -> Finding:
    return Finding(
        path=summary.path,
        line=anchor.lineno,
        col=anchor.col,
        rule=rule,
        message=message,
        module=info.module,
        context=anchor.context,
        snippet=anchor.snippet,
    )


def _in_asyncio_scope(config, module: str) -> bool:
    return config.in_scope(module, config.asyncio_scope)


@register_rule(
    "ASY001",
    "no blocking calls reachable from event-loop coroutines",
    kind="summary",
    rationale=(
        "A coroutine runs on the shared event loop: one time.sleep, sync "
        "socket read, or fsync inside it — or inside anything it calls, "
        "any number of frames deep — freezes every connection on the "
        "plane for the duration. The fact lattice propagates 'may block' "
        "across the call graph, and treats asyncio.to_thread/"
        "run_in_executor as the sanctioned mask."
    ),
    bad=(
        "async def _serve(...):\n"
        "    _write_ready(path, payload)   # helper does write_text+os.replace"
    ),
    good=(
        "async def _serve(...):\n"
        "    await asyncio.to_thread(_write_ready, path, payload)"
    ),
)
def check_blocking_in_coroutine(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not _in_asyncio_scope(config, module):
            continue
        for info in summary.functions.values():
            if not info.is_async:
                continue
            for op in info.ops:
                if op.kind == "blocking" and not op.wrapped:
                    yield _finding(
                        summary,
                        info,
                        op,
                        "ASY001",
                        f"blocking call {op.detail} inside a coroutine — "
                        "wrap it in asyncio.to_thread",
                    )
            for call in info.calls:
                if call.wrapped:
                    continue
                for callee in project.resolve(module, info.qualname, call.callee):
                    provenance = project.facts.get(callee, {}).get(FACT_BLOCKING)
                    if provenance:
                        yield _finding(
                            summary,
                            info,
                            call,
                            "ASY001",
                            f"coroutine reaches blocking work through "
                            f"{call.callee}() ({provenance}) — move the "
                            "blocking frame behind asyncio.to_thread",
                        )
                        break


@register_rule(
    "ASY002",
    "no coroutine calls without await",
    kind="summary",
    rationale=(
        "Calling an async function returns a coroutine object; without an "
        "await (or task wrapper) the body never executes. The failure is "
        "silent at the call site — the handshake/cleanup simply doesn't "
        "happen — and surfaces only as a 'coroutine was never awaited' "
        "warning somewhere else entirely."
    ),
    bad="conn.drain()                        # coroutine object discarded",
    good="await conn.drain()",
)
def check_unawaited_coroutine(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not _in_asyncio_scope(config, module):
            continue
        for info in summary.functions.values():
            for call in info.calls:
                if call.awaited or call.task_spawn or call.wrapped:
                    continue
                if not call.bare_expr:
                    continue
                for callee in project.resolve(module, info.qualname, call.callee):
                    if project.functions[callee].is_async:
                        yield _finding(
                            summary,
                            info,
                            call,
                            "ASY002",
                            f"{call.callee}() is a coroutine function but the "
                            "result is discarded without await",
                        )
                        break


@register_rule(
    "ASY003",
    "no fire-and-forget tasks held by no reference",
    kind="summary",
    rationale=(
        "The event loop holds only a weak reference to tasks: a bare "
        "create_task/ensure_future call can be garbage-collected before "
        "it finishes, and any exception it raises is swallowed. Hold the "
        "handle (self._task = ...) or await it; the orphan-guard watchdog "
        "in repro.netd exists because of exactly this failure."
    ),
    bad="asyncio.create_task(self._run())    # GC may cancel it mid-flight",
    good="self._loop_task = asyncio.create_task(self._run())",
)
def check_fire_and_forget(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not _in_asyncio_scope(config, module):
            continue
        for info in summary.functions.values():
            for call in info.calls:
                tail = call.callee.rsplit(".", 1)[-1]
                if tail in _SPAWNERS and call.bare_expr and not call.awaited:
                    yield _finding(
                        summary,
                        info,
                        call,
                        "ASY003",
                        f"{call.callee}() result is dropped — the loop keeps "
                        "only a weak reference, so the task can be GC'd; "
                        "store the handle",
                    )


@register_rule(
    "ASY004",
    "no shared-state mutation across an await without a lock",
    kind="summary",
    rationale=(
        "An await is a scheduling point: between reading self.x and "
        "writing it back, any other task can run and update the same "
        "attribute, and the write after the await silently clobbers it. "
        "Guard the read-modify-write with an asyncio.Lock, or restructure "
        "so the state is written before suspending."
    ),
    bad=(
        "pending = self._pending\n"
        "result = await self._dispatch(req)\n"
        "self._pending = pending - 1         # clobbers concurrent updates"
    ),
    good=(
        "async with self._lock:\n"
        "    self._pending -= 1              # atomic w.r.t. other tasks"
    ),
)
def check_await_boundary_race(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not _in_asyncio_scope(config, module):
            continue
        for info in summary.functions.values():
            for race in info.races:
                if race.locked:
                    continue
                yield _finding(
                    summary,
                    info,
                    race,
                    "ASY004",
                    f"self.{race.attr} read at line {race.read_line} and "
                    f"written at line {race.write_line} with an await in "
                    "between and no lock — another task can interleave",
                )


@register_rule(
    "ASY005",
    "no non-thread-safe loop calls from sync (thread) code",
    kind="summary",
    rationale=(
        "loop.call_soon/call_at/call_later/create_task mutate the loop's "
        "ready queue without locking — they are only safe from the loop "
        "thread itself. The supervisor's monitor thread and any worker "
        "thread must use call_soon_threadsafe (or "
        "asyncio.run_coroutine_threadsafe), which wakes the loop through "
        "its self-pipe."
    ),
    bad="self._loop.call_soon(conn.close)    # from the monitor thread",
    good="self._loop.call_soon_threadsafe(conn.close)",
)
def check_cross_thread_loop_access(project, config) -> Iterator[Finding]:
    for module, summary in sorted(project.modules.items()):
        if not _in_asyncio_scope(config, module):
            continue
        for info in summary.functions.values():
            if info.is_async:
                continue  # coroutines already run on the loop thread
            for op in info.ops:
                if op.kind == "loop-handoff":
                    yield _finding(
                        summary,
                        info,
                        op,
                        "ASY005",
                        f"{op.detail} from sync code — not thread-safe; use "
                        "call_soon_threadsafe/run_coroutine_threadsafe",
                    )
