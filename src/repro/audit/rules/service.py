"""SVC001 — shared-state race heuristic for the service layer.

The broker runs on one asyncio event loop but hands CPU-bound work to
threads (``asyncio.to_thread``) and worker pools; a read-modify-write on
shared state (``self.counter += 1``) is only safe when it happens on the
loop or under a lock.  The heuristic flags:

* augmented assignment to ``self.<attr>`` or a module-level global from
  an ``async def`` body (grandfathered when provably loop-confined — the
  baseline records the reasoning);
* the same from a *sync* method of a class that instantiates an
  ``Executor``/``Pool``/``Thread`` (those methods run off-loop);
* mutable literal defaults (list/dict/set) declared at class-body level,
  which are silently shared across instances.

An augmented assignment inside a ``with`` block whose context expression
mentions a lock (``with self._stats_lock:``) is considered guarded.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.audit.registry import register_rule
from repro.audit.rules.common import mentions_identifier

RULE_ID = "SVC001"

_POOL_MARKERS = ("Executor", "Pool", "Thread")


def _module_globals(tree: ast.Module) -> frozenset[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return frozenset(names)


def _class_spawns_workers(cls: ast.ClassDef) -> bool:
    """True when the class body instantiates an Executor/Pool/Thread."""
    for node in ast.walk(cls):
        if isinstance(node, ast.Call):
            func = node.func
            name = ""
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if any(marker in name for marker in _POOL_MARKERS):
                return True
    return False


def _is_shared_target(target: ast.AST, module_globals: frozenset[str]) -> bool:
    if isinstance(target, ast.Attribute):
        return isinstance(target.value, ast.Name) and target.value.id == "self"
    if isinstance(target, ast.Name):
        return target.id in module_globals
    return False


def _scan_function(
    unit,
    func: ast.FunctionDef | ast.AsyncFunctionDef,
    qualname: str,
    module_globals: frozenset[str],
    off_loop: bool,
) -> Iterator:
    """Yield findings for unguarded shared-state AugAssigns in ``func``.

    ``off_loop`` marks contexts whose statements may run concurrently
    with the event loop (async bodies race with to_thread work; sync
    methods of worker-spawning classes race with the loop).
    """
    if not off_loop:
        return

    def walk(node: ast.AST, lock_depth: int) -> Iterator:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs analyzed separately
            child_lock_depth = lock_depth
            if isinstance(child, (ast.With, ast.AsyncWith)):
                if any(
                    mentions_identifier(item.context_expr, "lock")
                    for item in child.items
                ):
                    child_lock_depth += 1
            if isinstance(child, ast.AugAssign):
                if lock_depth == 0 and _is_shared_target(child.target, module_globals):
                    yield unit.finding(
                        child,
                        RULE_ID,
                        "read-modify-write on shared state without a lock in a "
                        "context that can run concurrently with the event loop",
                        context=qualname,
                    )
            yield from walk(child, child_lock_depth)

    yield from walk(func, 0)


@register_rule(RULE_ID, "shared service state mutated without lock/queue")
def check_shared_state(unit, config) -> Iterator:
    if unit.module not in config.service_modules:
        return
    module_globals = _module_globals(unit.tree)

    def scan_body(
        body: list[ast.stmt], ctx: str, in_worker_class: bool
    ) -> Iterator:
        for node in body:
            if isinstance(node, ast.ClassDef):
                qualname = node.name if ctx == "<module>" else f"{ctx}.{node.name}"
                spawns = _class_spawns_workers(node)
                # Mutable class-level defaults are shared across instances.
                for stmt in node.body:
                    value = None
                    if isinstance(stmt, ast.Assign):
                        value = stmt.value
                    elif isinstance(stmt, ast.AnnAssign):
                        value = stmt.value
                    if isinstance(value, (ast.List, ast.Dict, ast.Set, ast.ListComp)):
                        yield unit.finding(
                            stmt,
                            RULE_ID,
                            "mutable class-level default is shared across "
                            "instances (and across tasks)",
                            context=qualname,
                        )
                yield from scan_body(node.body, qualname, spawns)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = node.name if ctx == "<module>" else f"{ctx}.{node.name}"
                off_loop = isinstance(node, ast.AsyncFunctionDef) or in_worker_class
                yield from _scan_function(
                    unit, node, qualname, module_globals, off_loop
                )
                yield from scan_body(
                    [n for n in node.body if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef))],
                    qualname,
                    in_worker_class,
                )

    yield from scan_body(unit.tree.body, "<module>", False)
