"""Project-wide symbol table and call graph for the audit engine.

Engine v2 reasons *across* functions: a blocking ``os.fsync`` buried in
a helper must still fail the audit when a coroutine reaches it three
calls away.  This module extracts, per source file, a JSON-serializable
:class:`ModuleSummary` — every function definition, every call site,
and every "primitive operation of interest" (blocking I/O, wall-clock
reads, ambient randomness, ``hash()``, unordered-set iteration, float
accumulation, await-boundary read/write pairs) — and assembles the
summaries into a :class:`Project` that resolves call sites to callees
and answers reachability questions.

Summaries deliberately hold **no AST nodes**: they round-trip through
JSON, which is what makes the content-hash cache
(:mod:`repro.audit.cache`) sound — an unchanged file contributes the
identical summary without being re-parsed, and the interprocedural
rules run over summaries alone.

Resolution is *static and conservative*.  A call site resolves when the
callee is:

* a function or class defined in the same module (a class resolves to
  its ``__init__``);
* ``self.method`` inside a class body (single class, no MRO walk);
* ``self.attr.method`` where ``self.attr`` was assigned a known class
  instance in any method of the same class (``self._x = Foo(...)``) or
  bound from a parameter annotated with a known class name;
* an imported name (``from mod import f``; ``import pkg.mod as m`` +
  ``m.f``), followed through to the defining module when that module is
  part of the project;
* a local alias, including ``g = f`` and ``g = functools.partial(f,
  ...)`` — partials resolve to their first argument.

Anything else (duck-typed receivers, dynamic dispatch) stays
unresolved, which keeps the analysis honest: facts only flow along
edges we can actually prove.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = [
    "CallRecord",
    "OpRecord",
    "AwaitRace",
    "FunctionInfo",
    "ModuleSummary",
    "Project",
    "build_module_summary",
]


# --------------------------------------------------------------------------
# primitive-operation tables
# --------------------------------------------------------------------------

#: ``module.attr`` calls that block the calling thread.
BLOCKING_DOTTED = frozenset(
    {
        "time.sleep",
        "os.fsync",
        "os.sync",
        "os.replace",
        "os.waitpid",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "socket.create_connection",
        "socket.socket",
        "shutil.copy",
        "shutil.copytree",
    }
)

#: Terminal attributes that block regardless of receiver (file/socket I/O
#: and this repository's documented blocking seams).
BLOCKING_ATTRS = frozenset(
    {
        "fsync",
        "write_text",
        "read_text",
        "write_bytes",
        "read_bytes",
        "sendall",
        "makefile",
        "transact",  # PeerClient.transact: documented thread-blocking
        "ensure_running",  # ProcessSupervisor: spawn + wait_ready
        "wait_ready",
        "stop_all",
        "run_with_policy",
    }
)

#: Terminal attributes that block only when the receiver name hints at
#: the right kind of object (``thread.join`` blocks; ``", ".join`` does
#: not).
BLOCKING_ATTRS_BY_RECEIVER = {
    "join": ("thread", "proc", "process"),
    "wait": ("proc", "process", "popen"),
    "result": ("future", "fut"),
    "recv": ("sock", "conn"),
    "accept": ("sock", "server"),
    "connect": ("sock", "conn"),
    "barrier": ("journal", "writer"),
    "acquire": ("lock", "sem"),
}

#: Bare-name calls that block (builtins).
BLOCKING_NAMES = frozenset({"open", "input", "sleep"})

#: Wall-clock reads — the determinism rules treat monotonic/perf_counter
#: as benign (local measurement), but civil time reaches transcripts.
WALLCLOCK_TIME_ATTRS = frozenset(
    {"time", "time_ns", "localtime", "gmtime", "ctime", "strftime", "asctime"}
)
WALLCLOCK_DATE_ATTRS = frozenset({"now", "utcnow", "today"})

#: Ambient (non-RandomSource) randomness.
AMBIENT_RANDOM_RECEIVERS = frozenset({"random", "secrets"})
AMBIENT_RANDOM_DOTTED = frozenset({"os.urandom", "uuid.uuid4", "uuid.uuid1"})

#: Callables that wrap their *argument* callable to run off the loop.
OFFLOOP_WRAPPERS = frozenset({"to_thread", "run_in_executor"})

#: Callables that schedule their argument coroutine as a task.
TASK_SPAWNERS = frozenset({"create_task", "ensure_future", "gather", "wait", "shield"})

#: Event-loop methods that are not thread-safe (ASY005).
LOOP_UNSAFE_ATTRS = frozenset({"call_soon", "call_at", "call_later", "create_task"})


# --------------------------------------------------------------------------
# summary records (all JSON-round-trippable)
# --------------------------------------------------------------------------


@dataclass(frozen=True)
class CallRecord:
    """One call site inside a function body."""

    callee: str  #: dotted callee text as written (``self._dispatch``, ``os.fsync``)
    lineno: int
    col: int
    snippet: str
    context: str  #: qualname of the enclosing function
    awaited: bool = False  #: the call is directly under an ``await``
    wrapped: str = ""  #: "offloop" when passed to to_thread/run_in_executor
    task_spawn: bool = False  #: wrapped in create_task/ensure_future/gather
    bare_expr: bool = False  #: an expression statement whose value is discarded


@dataclass(frozen=True)
class OpRecord:
    """One primitive operation of interest, found locally in a function."""

    kind: str  #: blocking | wallclock | ambient-random | hash | set-iter | float-accum | loop-handoff
    detail: str  #: e.g. ``os.fsync`` — what exactly was seen
    lineno: int
    col: int
    snippet: str
    context: str
    wrapped: str = ""  #: "offloop" when the op sits inside an off-loop wrapper arg


@dataclass(frozen=True)
class AwaitRace:
    """A read→await→write window on shared ``self`` state."""

    attr: str
    read_line: int
    write_line: int
    lineno: int
    col: int
    snippet: str
    context: str
    locked: bool = False


@dataclass
class FunctionInfo:
    """Everything the interprocedural rules need to know about one def."""

    qualname: str
    module: str
    lineno: int
    is_async: bool = False
    params: tuple[str, ...] = ()
    decorators: tuple[str, ...] = ()
    returns_secret: bool = False  #: a return expression is locally secret-tainted
    #: dotted callee texts appearing inside return expressions (for
    #: transitive secret-return propagation)
    return_calls: tuple[str, ...] = ()
    calls: tuple[CallRecord, ...] = ()
    ops: tuple[OpRecord, ...] = ()
    races: tuple[AwaitRace, ...] = ()

    @property
    def ident(self) -> str:
        return f"{self.module}:{self.qualname}"

    def to_json_dict(self) -> dict:
        return {
            "qualname": self.qualname,
            "module": self.module,
            "lineno": self.lineno,
            "is_async": self.is_async,
            "params": list(self.params),
            "decorators": list(self.decorators),
            "returns_secret": self.returns_secret,
            "return_calls": list(self.return_calls),
            "calls": [vars(c) for c in self.calls],
            "ops": [vars(o) for o in self.ops],
            "races": [vars(r) for r in self.races],
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "FunctionInfo":
        return cls(
            qualname=data["qualname"],
            module=data["module"],
            lineno=data["lineno"],
            is_async=data["is_async"],
            params=tuple(data["params"]),
            decorators=tuple(data["decorators"]),
            returns_secret=data["returns_secret"],
            return_calls=tuple(data.get("return_calls", ())),
            calls=tuple(CallRecord(**c) for c in data["calls"]),
            ops=tuple(OpRecord(**o) for o in data["ops"]),
            races=tuple(AwaitRace(**r) for r in data["races"]),
        )


@dataclass
class ModuleSummary:
    """The per-file unit of the interprocedural analysis."""

    module: str
    path: str
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    #: local name → dotted import target ("m" → "pkg.mod", "f" → "pkg.mod.f")
    imports: dict[str, str] = field(default_factory=dict)
    #: "context::name" → callee text, for ``g = f`` / ``g = partial(f, …)``
    aliases: dict[str, str] = field(default_factory=dict)
    #: class qualname → {attr → class-callee text} from ``self.x = C(...)``
    attr_types: dict[str, dict[str, str]] = field(default_factory=dict)
    #: class qualnames defined here (resolution maps C() → C.__init__)
    classes: tuple[str, ...] = ()
    #: line → waived rule list (None = waive everything on the line)
    waivers: dict[int, list[str] | None] = field(default_factory=dict)

    def to_json_dict(self) -> dict:
        return {
            "module": self.module,
            "path": self.path,
            "functions": {q: f.to_json_dict() for q, f in self.functions.items()},
            "imports": self.imports,
            "aliases": self.aliases,
            "attr_types": self.attr_types,
            "classes": list(self.classes),
            "waivers": {str(k): v for k, v in self.waivers.items()},
        }

    @classmethod
    def from_json_dict(cls, data: dict) -> "ModuleSummary":
        return cls(
            module=data["module"],
            path=data["path"],
            functions={
                q: FunctionInfo.from_json_dict(f)
                for q, f in data["functions"].items()
            },
            imports=dict(data["imports"]),
            aliases=dict(data["aliases"]),
            attr_types={k: dict(v) for k, v in data["attr_types"].items()},
            classes=tuple(data["classes"]),
            waivers={
                int(k): (list(v) if v is not None else None)
                for k, v in data["waivers"].items()
            },
        )

    def waived(self, line: int, rule: str) -> bool:
        if line not in self.waivers:
            return False
        rules = self.waivers[line]
        return rules is None or rule in rules


# --------------------------------------------------------------------------
# extraction
# --------------------------------------------------------------------------


def _dotted_text(expr: ast.AST) -> str:
    """Rebuild a dotted name from a Name/Attribute chain ('' if dynamic)."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""


def _receiver_text(expr: ast.AST) -> str:
    """Dotted text of a call's receiver ('' for bare names)."""
    if isinstance(expr, ast.Attribute):
        return _dotted_text(expr.value)
    return ""


def _is_wallclock(callee: str) -> bool:
    head, _, tail = callee.rpartition(".")
    if not head:
        return False
    receiver = head.rsplit(".", 1)[-1].lower()
    if receiver == "time" and tail in WALLCLOCK_TIME_ATTRS:
        return True
    if "date" in receiver and tail in WALLCLOCK_DATE_ATTRS:
        return True
    return False


def _is_ambient_random(callee: str) -> bool:
    if callee in AMBIENT_RANDOM_DOTTED:
        return True
    head, _, tail = callee.rpartition(".")
    if tail in ("default_rng", "Generator", "SeedSequence"):
        return False  # numpy's seeded constructors are deterministic
    return head.rsplit(".", 1)[-1] in AMBIENT_RANDOM_RECEIVERS if head else False


def _is_blocking(callee: str) -> bool:
    if callee in BLOCKING_DOTTED:
        return True
    head, _, tail = callee.rpartition(".")
    if not head:
        return callee in BLOCKING_NAMES
    if tail in BLOCKING_ATTRS:
        return True
    hints = BLOCKING_ATTRS_BY_RECEIVER.get(tail)
    if hints:
        receiver = head.rsplit(".", 1)[-1].lower()
        return any(h in receiver for h in hints)
    return False


def _mentions_secret(expr: ast.AST, secret_names: frozenset[str]) -> bool:
    from repro.audit.taint import is_secret_identifier

    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and is_secret_identifier(node.id, secret_names):
            return True
        if isinstance(node, ast.Attribute) and is_secret_identifier(
            node.attr, secret_names
        ):
            return True
    return False


class _FunctionScanner:
    """Extracts one FunctionInfo from a def node."""

    def __init__(
        self,
        unit,
        qualname: str,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        secret_names: frozenset[str],
    ) -> None:
        self.unit = unit
        self.qualname = qualname
        self.func = func
        self.secret_names = secret_names
        self.calls: list[CallRecord] = []
        self.ops: list[OpRecord] = []
        self.races: list[AwaitRace] = []
        self.aliases: dict[str, str] = {}
        self.returns_secret = False
        self.return_calls: list[str] = []
        self._set_locals: set[str] = set()
        self._float_locals: set[str] = set()
        # await-boundary tracking (source order is statement order here)
        self._await_lines: list[int] = []
        self._attr_reads: dict[str, list[int]] = {}

    # -- helpers -----------------------------------------------------------

    def _loc(self, node: ast.AST) -> tuple[int, int, str]:
        line = getattr(node, "lineno", 0)
        return line, getattr(node, "col_offset", 0), self.unit.snippet(line)

    def _op(self, node: ast.AST, kind: str, detail: str, wrapped: str = "") -> None:
        line, col, snippet = self._loc(node)
        self.ops.append(
            OpRecord(
                kind=kind,
                detail=detail,
                lineno=line,
                col=col,
                snippet=snippet,
                context=self.qualname,
                wrapped=wrapped,
            )
        )

    # -- the walk ----------------------------------------------------------

    def scan(self) -> FunctionInfo:
        self._walk(self.func, awaited=False, wrapped="", spawned=False, lock_depth=0)
        decorators = tuple(
            _dotted_text(d.func if isinstance(d, ast.Call) else d)
            for d in self.func.decorator_list
        )
        return FunctionInfo(
            qualname=self.qualname,
            module=self.unit.module,
            lineno=self.func.lineno,
            is_async=isinstance(self.func, ast.AsyncFunctionDef),
            params=tuple(a.arg for a in self.func.args.args),
            decorators=decorators,
            returns_secret=self.returns_secret,
            return_calls=tuple(dict.fromkeys(self.return_calls)),
            calls=tuple(self.calls),
            ops=tuple(self.ops),
            races=tuple(self.races),
        )

    def _record_call(
        self,
        node: ast.Call,
        awaited: bool,
        wrapped: str,
        spawned: bool,
        bare: bool,
    ) -> None:
        callee = _dotted_text(node.func)
        if not callee:
            return
        line, col, snippet = self._loc(node)
        self.calls.append(
            CallRecord(
                callee=callee,
                lineno=line,
                col=col,
                snippet=snippet,
                context=self.qualname,
                awaited=awaited,
                wrapped=wrapped,
                task_spawn=spawned,
                bare_expr=bare,
            )
        )
        # Primitive classification (skip awaited calls: ``await x.wait()``
        # is an async primitive, not a thread block).
        if not awaited and _is_blocking(callee):
            self._op(node, "blocking", callee, wrapped=wrapped)
        if _is_wallclock(callee):
            self._op(node, "wallclock", callee, wrapped=wrapped)
        if _is_ambient_random(callee):
            self._op(node, "ambient-random", callee, wrapped=wrapped)
        if callee == "hash" and not self.qualname.endswith("__hash__"):
            self._op(node, "hash", "hash()", wrapped=wrapped)
        tail = callee.rsplit(".", 1)[-1]
        head = callee.rpartition(".")[0]
        if (
            tail in LOOP_UNSAFE_ATTRS
            and head
            and "loop" in head.rsplit(".", 1)[-1].lower()
        ):
            self._op(node, "loop-handoff", callee, wrapped=wrapped)

    def _iter_is_unordered_set(self, expr: ast.AST) -> str:
        """Non-empty detail when ``for x in <expr>`` iterates a set."""
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return "set literal"
        if isinstance(expr, ast.Call):
            callee = _dotted_text(expr.func)
            if callee in ("set", "frozenset"):
                return f"{callee}(...)"
            tail = callee.rsplit(".", 1)[-1]
            if tail in ("union", "intersection", "difference", "symmetric_difference"):
                return f".{tail}(...)"
        if isinstance(expr, ast.Name) and expr.id in self._set_locals:
            return f"local set {expr.id!r}"
        if isinstance(expr, ast.BinOp) and isinstance(expr.op, (ast.BitOr, ast.BitAnd)):
            if self._iter_is_unordered_set(expr.left) or self._iter_is_unordered_set(
                expr.right
            ):
                return "set expression"
        return ""

    def _note_assignment(self, target: ast.AST, value: ast.AST) -> None:
        if not isinstance(target, ast.Name):
            return
        if isinstance(value, (ast.Set, ast.SetComp)) or (
            isinstance(value, ast.Call)
            and _dotted_text(value.func) in ("set", "frozenset")
        ):
            self._set_locals.add(target.id)
        if isinstance(value, ast.Constant) and isinstance(value.value, float):
            self._float_locals.add(target.id)
        if isinstance(value, ast.Call):
            callee = _dotted_text(value.func)
            tail = callee.rsplit(".", 1)[-1]
            if tail == "partial" and value.args:
                inner = _dotted_text(value.args[0])
                if inner:
                    self.aliases[target.id] = inner
        elif isinstance(value, (ast.Name, ast.Attribute)):
            dotted = _dotted_text(value)
            if dotted and "." not in dotted and dotted != target.id:
                self.aliases[target.id] = dotted

    def _self_attr(self, node: ast.AST) -> str:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return ""

    def _note_race_write(self, target: ast.AST, node: ast.AST, lock_depth: int) -> None:
        attr = self._self_attr(target)
        if not attr or not isinstance(self.func, ast.AsyncFunctionDef):
            return
        write_line = getattr(node, "lineno", 0)
        for read_line in self._attr_reads.get(attr, ()):
            if any(read_line <= aw < write_line for aw in self._await_lines):
                line, col, snippet = self._loc(node)
                self.races.append(
                    AwaitRace(
                        attr=attr,
                        read_line=read_line,
                        write_line=write_line,
                        lineno=line,
                        col=col,
                        snippet=snippet,
                        context=self.qualname,
                        locked=lock_depth > 0,
                    )
                )
                return

    def _walk(
        self,
        node: ast.AST,
        awaited: bool,
        wrapped: str,
        spawned: bool,
        lock_depth: int,
    ) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                continue  # nested defs get their own FunctionInfo
            child_awaited = awaited
            child_wrapped = wrapped
            child_spawned = spawned
            child_lock = lock_depth

            if isinstance(child, ast.Await):
                self._await_lines.append(getattr(child, "lineno", 0))
                child_awaited = True
            elif isinstance(child, (ast.With, ast.AsyncWith)):
                from repro.audit.rules.common import mentions_identifier

                if any(
                    mentions_identifier(item.context_expr, "lock")
                    for item in child.items
                ):
                    child_lock += 1
            elif isinstance(child, ast.Return) and child.value is not None:
                if _mentions_secret(child.value, self.secret_names):
                    self.returns_secret = True
                for call in ast.walk(child.value):
                    if isinstance(call, ast.Call):
                        dotted = _dotted_text(call.func)
                        if dotted:
                            self.return_calls.append(dotted)
            elif isinstance(child, ast.Assign):
                for target in child.targets:
                    self._note_assignment(target, child.value)
                    self._note_race_write(target, child, lock_depth)
            elif isinstance(child, ast.AnnAssign) and child.value is not None:
                self._note_assignment(child.target, child.value)
                self._note_race_write(child.target, child, lock_depth)
            elif isinstance(child, ast.AugAssign):
                self._note_race_write(child.target, child, lock_depth)
                # ``self._total += await f()`` reads, suspends, then
                # writes — a race window inside a single statement.
                attr = self._self_attr(child.target)
                if (
                    attr
                    and isinstance(self.func, ast.AsyncFunctionDef)
                    and any(isinstance(n, ast.Await) for n in ast.walk(child.value))
                ):
                    line, col, snippet = self._loc(child)
                    self.races.append(
                        AwaitRace(
                            attr=attr,
                            read_line=line,
                            write_line=line,
                            lineno=line,
                            col=col,
                            snippet=snippet,
                            context=self.qualname,
                            locked=lock_depth > 0,
                        )
                    )
                # float accumulation: ``acc += <float-ish>`` onto a local
                # seeded from a float constant, or a float constant in
                # the increment.
                is_float_target = (
                    isinstance(child.target, ast.Name)
                    and child.target.id in self._float_locals
                )
                has_float_value = any(
                    isinstance(n, ast.Constant) and isinstance(n.value, float)
                    for n in ast.walk(child.value)
                ) or any(
                    isinstance(n, ast.BinOp) and isinstance(n.op, ast.Div)
                    for n in ast.walk(child.value)
                )
                if isinstance(child.op, ast.Add) and (
                    is_float_target or has_float_value
                ):
                    target_text = _dotted_text(child.target) or "<target>"
                    self._op(child, "float-accum", f"{target_text} += ...")
            elif isinstance(child, (ast.For, ast.AsyncFor)):
                detail = self._iter_is_unordered_set(child.iter)
                if detail:
                    self._op(child, "set-iter", detail)
            elif isinstance(child, ast.comprehension):
                detail = self._iter_is_unordered_set(child.iter)
                if detail:
                    self._op(child, "set-iter", detail)
            elif isinstance(child, ast.Call):
                callee = _dotted_text(child.func)
                tail = callee.rsplit(".", 1)[-1]
                bare = isinstance(node, ast.Expr) and node.value is child
                self._record_call(
                    child, child_awaited, child_wrapped, child_spawned, bare
                )
                if tail in OFFLOOP_WRAPPERS:
                    # Arguments of to_thread/run_in_executor execute off
                    # the loop: record them wrapped.
                    for arg in child.args:
                        self._walk_call_arg(arg, "offloop", child_spawned, child_lock)
                    continue
                if tail in TASK_SPAWNERS:
                    for arg in child.args:
                        self._walk_call_arg(arg, child_wrapped, True, child_lock)
                    continue
                child_awaited = False  # args of a call are not themselves awaited
            elif isinstance(child, (ast.Attribute, ast.Name)) and isinstance(
                getattr(child, "ctx", None), ast.Load
            ):
                attr = self._self_attr(child)
                if attr:
                    self._attr_reads.setdefault(attr, []).append(
                        getattr(child, "lineno", 0)
                    )
            self._walk(child, child_awaited, child_wrapped, child_spawned, child_lock)

    def _walk_call_arg(
        self, arg: ast.AST, wrapped: str, spawned: bool, lock_depth: int
    ) -> None:
        """Record a call appearing as a wrapper argument, then recurse."""
        if isinstance(arg, ast.Call):
            self._record_call(arg, False, wrapped, spawned, bare=False)
        elif isinstance(arg, (ast.Name, ast.Attribute)):
            # ``to_thread(f, x)`` passes f uncalled; record the reference
            # as a wrapped call so facts still flow (it *will* be called).
            callee = _dotted_text(arg)
            if callee:
                line, col, snippet = self._loc(arg)
                self.calls.append(
                    CallRecord(
                        callee=callee,
                        lineno=line,
                        col=col,
                        snippet=snippet,
                        context=self.qualname,
                        awaited=False,
                        wrapped=wrapped,
                        task_spawn=spawned,
                        bare_expr=False,
                    )
                )
            return
        self._walk(arg, False, wrapped, spawned, lock_depth)


def build_module_summary(unit, secret_names: frozenset[str]) -> ModuleSummary:
    """Extract the interprocedural summary of one parsed module."""
    from repro.audit.rules.common import iter_function_defs

    summary = ModuleSummary(module=unit.module, path=unit.path)

    # Imports.
    for node in ast.walk(unit.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                summary.imports[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.level == 0 and node.module:
            for alias in node.names:
                summary.imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )

    # Module-level aliases (``g = f``, ``g = partial(f, …)``).
    for node in unit.tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                value = node.value
                if isinstance(value, ast.Call):
                    callee = _dotted_text(value.func)
                    if callee.rsplit(".", 1)[-1] == "partial" and value.args:
                        inner = _dotted_text(value.args[0])
                        if inner:
                            summary.aliases[f"<module>::{target.id}"] = inner
                elif isinstance(value, (ast.Name, ast.Attribute)):
                    dotted = _dotted_text(value)
                    if dotted:
                        summary.aliases[f"<module>::{target.id}"] = dotted

    # Classes and self-attribute types.
    classes: list[str] = []

    def visit_class(cls: ast.ClassDef, prefix: str) -> None:
        qualname = cls.name if prefix == "<module>" else f"{prefix}.{cls.name}"
        classes.append(qualname)
        attr_types: dict[str, str] = {}
        annotated_params: dict[str, str] = {}
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if isinstance(method, ast.ClassDef):
                    visit_class(method, qualname)
                continue
            for arg in method.args.args:
                if arg.annotation is not None:
                    text = _dotted_text(arg.annotation)
                    if text:
                        annotated_params[f"{method.name}::{arg.arg}"] = text
            for node in ast.walk(method):
                if isinstance(node, ast.Assign) and len(node.targets) == 1:
                    target = node.targets[0]
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    ):
                        value = node.value
                        if isinstance(value, ast.Call):
                            callee = _dotted_text(value.func)
                            if callee and callee[:1].isupper() or "." in callee:
                                attr_types.setdefault(target.attr, callee)
                        elif isinstance(value, ast.Name):
                            anno = annotated_params.get(
                                f"{method.name}::{value.id}"
                            )
                            if anno:
                                attr_types.setdefault(target.attr, anno)
        if attr_types:
            summary.attr_types[qualname] = attr_types

    for node in unit.tree.body:
        if isinstance(node, ast.ClassDef):
            visit_class(node, "<module>")
    summary.classes = tuple(classes)

    # Functions.
    for qualname, func in iter_function_defs(unit.tree):
        scanner = _FunctionScanner(unit, qualname, func, secret_names)
        info = scanner.scan()
        summary.functions[qualname] = info
        for name, target in scanner.aliases.items():
            summary.aliases[f"{qualname}::{name}"] = target

    # Waivers (cached so interprocedural findings honor them without the
    # source being re-read on a cache hit).
    for line in range(1, len(unit.lines) + 1):
        waived = unit.waived_rules(line)
        if waived is not None:
            summary.waivers[line] = sorted(waived) if waived else None

    return summary


# --------------------------------------------------------------------------
# the project: resolution + reachability
# --------------------------------------------------------------------------


class Project:
    """All module summaries of one audit run, with call resolution."""

    def __init__(self, summaries: dict[str, ModuleSummary]) -> None:
        self.modules = summaries
        #: function ident → FunctionInfo
        self.functions: dict[str, FunctionInfo] = {}
        self._class_index: dict[str, set[str]] = {}
        for summary in summaries.values():
            for info in summary.functions.values():
                self.functions[info.ident] = info
            for cls in summary.classes:
                self._class_index.setdefault(summary.module, set()).add(cls)
        #: filled in by :func:`repro.audit.taint.propagate_facts`
        self.facts: dict[str, dict[str, str]] = {}
        self.secret_returners: frozenset[str] = frozenset()
        # Resolution is pure per built project and called hot inside the
        # fact fixpoint — memoize it.
        self._resolve_memo: dict[tuple[str, str, str], tuple[str, ...]] = {}

    # -- resolution --------------------------------------------------------

    def _function_in(self, module: str, qualname: str) -> str | None:
        ident = f"{module}:{qualname}"
        if ident in self.functions:
            return ident
        # A class name resolves to its constructor.
        if qualname in self._class_index.get(module, ()):  # C() → C.__init__
            init = f"{module}:{qualname}.__init__"
            if init in self.functions:
                return init
        return None

    def _resolve_alias(
        self, summary: ModuleSummary, context: str, name: str, depth: int = 0
    ) -> str | None:
        if depth > 4:
            return None
        target = summary.aliases.get(f"{context}::{name}") or summary.aliases.get(
            f"<module>::{name}"
        )
        if target is None:
            return None
        resolved = self.resolve(summary.module, context, target)
        if resolved:
            return resolved[0]
        return None

    def resolve(
        self, module: str, context: str, callee: str
    ) -> tuple[str, ...]:
        """Resolve a call-site text to function idents (empty = unknown)."""
        key = (module, context, callee)
        cached = self._resolve_memo.get(key)
        if cached is None:
            cached = self._resolve_uncached(module, context, callee)
            self._resolve_memo[key] = cached
        return cached

    def _resolve_uncached(
        self, module: str, context: str, callee: str
    ) -> tuple[str, ...]:
        summary = self.modules.get(module)
        if summary is None:
            return ()
        parts = callee.split(".")

        # self.method / self.attr.method
        if parts[0] == "self" and "." in context:
            cls = context.rsplit(".", 1)[0]
            if len(parts) == 2:
                found = self._function_in(module, f"{cls}.{parts[1]}")
                return (found,) if found else ()
            if len(parts) == 3:
                attr_cls = self.modules[module].attr_types.get(cls, {}).get(parts[1])
                if attr_cls:
                    owner = self._resolve_class(module, attr_cls)
                    if owner:
                        owner_module, owner_cls = owner
                        found = self._function_in(
                            owner_module, f"{owner_cls}.{parts[2]}"
                        )
                        return (found,) if found else ()
            return ()

        # bare name: alias → local def → import
        if len(parts) == 1:
            via_alias = self._resolve_alias(summary, context, parts[0])
            if via_alias:
                return (via_alias,)
            # local defs shadow imports; walk enclosing contexts for
            # nested defs (context "outer.inner" may call sibling
            # "outer.helper").
            scopes = []
            ctx = context
            while ctx and ctx != "<module>":
                ctx = ctx.rsplit(".", 1)[0] if "." in ctx else ""
                scopes.append(f"{ctx}.{parts[0]}" if ctx else parts[0])
            scopes.append(parts[0])
            for qualname in scopes:
                found = self._function_in(module, qualname)
                if found:
                    return (found,)
            imported = summary.imports.get(parts[0])
            if imported:
                return self._resolve_imported(imported)
            return ()

        # dotted name rooted at an import: "m.f", "m.C", "pkg.mod.f"
        root = summary.imports.get(parts[0])
        if root:
            return self._resolve_imported(".".join([root] + parts[1:]))
        # dotted name rooted at a local class: "C.method" (rare, but
        # covers explicit base-class calls)
        found = self._function_in(module, callee)
        return (found,) if found else ()

    def _resolve_class(self, module: str, text: str) -> tuple[str, str] | None:
        """Resolve a class-name text to ``(module, class qualname)``."""
        summary = self.modules.get(module)
        if summary is None:
            return None
        parts = text.split(".")
        if len(parts) == 1:
            if text in self._class_index.get(module, ()):
                return (module, text)
            imported = summary.imports.get(text)
            if imported:
                return self._imported_class(imported)
            return None
        root = summary.imports.get(parts[0])
        if root:
            return self._imported_class(".".join([root] + parts[1:]))
        if text in self._class_index.get(module, ()):
            return (module, text)
        return None

    def _imported_class(self, dotted: str) -> tuple[str, str] | None:
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            mod = ".".join(parts[:split])
            if mod in self.modules:
                qualname = ".".join(parts[split:])
                if qualname in self._class_index.get(mod, ()):
                    return (mod, qualname)
                return None
        return None

    def _resolve_imported(self, dotted: str) -> tuple[str, ...]:
        """Resolve "pkg.mod.name" / "pkg.mod.Class.method" across modules."""
        # Longest module prefix wins.
        parts = dotted.split(".")
        for split in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:split])
            if module in self.modules:
                qualname = ".".join(parts[split:])
                found = self._function_in(module, qualname)
                if found:
                    return (found,)
                return ()
        return ()

    # -- reachability ------------------------------------------------------

    def callees_of(self, ident: str) -> tuple[str, ...]:
        info = self.functions.get(ident)
        if info is None:
            return ()
        out: list[str] = []
        for call in info.calls:
            out.extend(self.resolve(info.module, info.qualname, call.callee))
        return tuple(dict.fromkeys(out))

    def reachable_from(self, ident: str) -> frozenset[str]:
        """Transitive closure of :meth:`callees_of` (cycle-safe)."""
        seen: set[str] = set()
        frontier = [ident]
        while frontier:
            current = frontier.pop()
            for callee in self.callees_of(current):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        return frozenset(seen)

    def waived(self, module: str, line: int, rule: str) -> bool:
        summary = self.modules.get(module)
        return summary is not None and summary.waived(line, rule)
