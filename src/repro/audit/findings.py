"""Finding objects produced by the static analyzer.

A :class:`Finding` pins a rule violation to a source location and to a
*fingerprint* — a location-independent identity used by the baseline
machinery.  Fingerprints deliberately exclude the line number: moving a
grandfathered violation up or down a file (or editing unrelated code
above it) must not resurrect it as "new", while editing the violating
line itself must.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.hashing import sha256

__all__ = ["Finding"]


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    #: File path as given to the engine (kept relative when the input was).
    path: str
    #: 1-indexed source line.
    line: int
    #: 0-indexed column.
    col: int
    #: Rule identifier, e.g. ``CRY001``.
    rule: str
    #: Human-readable description of the violation.
    message: str
    #: Dotted module name, e.g. ``repro.pisa.blinding``.
    module: str = ""
    #: Qualified name of the enclosing function/class, ``<module>`` at top level.
    context: str = "<module>"
    #: The stripped source line the finding points at.
    snippet: str = field(default="", compare=False)

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline matching (line-number independent)."""
        basis = "|".join((self.rule, self.module, self.context, self.snippet))
        return sha256(basis.encode("utf-8")).hex()[:16]

    def render(self) -> str:
        """One-line ``path:line:col RULE message`` presentation."""
        return f"{self.path}:{self.line}:{self.col} {self.rule} {self.message}"

    def to_json_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "module": self.module,
            "context": self.context,
            "message": self.message,
            "snippet": self.snippet,
            "fingerprint": self.fingerprint,
        }
