"""Entry point behind ``repro audit``.

Exit status: 0 when no *new* findings (relative to the baseline), 1 when
new findings exist, so CI can gate on it directly.  ``--update-baseline``
rewrites the baseline to exactly the current finding set (preserving
reasons for entries that survive) and always exits 0.

``--explain RULEID`` prints the rule card (rationale, bad/good example,
waiver syntax) and exits without analyzing anything.  ``--cache PATH``
enables the incremental summary cache: warm runs skip parsing for
unchanged files.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.audit.baseline import Baseline, diff_against_baseline
from repro.audit.engine import AuditConfig, AuditEngine
from repro.audit.reporters import render_json, render_sarif, render_text

__all__ = ["run_audit", "explain_rule", "DEFAULT_BASELINE"]

DEFAULT_BASELINE = "audit-baseline.json"


def explain_rule(rule_id: str, *, stream=None) -> int:
    """Print the rule card for ``rule_id`` (``repro audit --explain``)."""
    from repro.audit.registry import get_rule
    from repro.errors import AuditError

    stream = stream if stream is not None else sys.stdout
    try:
        rule = get_rule(rule_id.upper())
    except AuditError as exc:
        from repro.audit.registry import rule_ids

        print(f"{exc}\nknown rules: {', '.join(rule_ids())}", file=stream)
        return 1
    print(rule.explain(), file=stream)
    return 0


def run_audit(
    paths: list[str],
    *,
    baseline_path: str = DEFAULT_BASELINE,
    update_baseline: bool = False,
    json_path: str | None = None,
    sarif_path: str | None = None,
    output_format: str = "text",
    select: list[str] | None = None,
    cache_path: str | None = None,
    verbose: bool = False,
    stream=None,
) -> int:
    stream = stream if stream is not None else sys.stdout
    config = AuditConfig(select=frozenset(select or ()))
    engine = AuditEngine(config)

    cache = None
    if cache_path is not None:
        from repro.audit.cache import AuditCache

        cache = AuditCache(cache_path)
    findings = engine.run(paths, cache=cache)
    if cache is not None:
        cache.save()

    baseline = Baseline.load(baseline_path)
    new, grandfathered, stale = diff_against_baseline(findings, baseline)

    if update_baseline:
        refreshed = Baseline.from_findings(findings)
        # Keep hand-written reasons for entries that are still present.
        for fingerprint, entry in refreshed.entries.items():
            old = baseline.entries.get(fingerprint)
            if old and old.get("reason"):
                entry["reason"] = old["reason"]
        refreshed.save(baseline_path)
        print(
            f"baseline updated: {len(refreshed)} entr"
            f"{'y' if len(refreshed) == 1 else 'ies'} -> {baseline_path}",
            file=stream,
        )
        return 0

    if json_path is not None:
        Path(json_path).write_text(
            render_json(new, grandfathered, stale), encoding="utf-8"
        )
    if sarif_path is not None:
        Path(sarif_path).write_text(
            render_sarif(new, grandfathered, stale), encoding="utf-8"
        )

    if output_format == "json":
        print(render_json(new, grandfathered, stale), file=stream, end="")
    elif output_format == "sarif":
        print(render_sarif(new, grandfathered, stale), file=stream, end="")
    else:
        print(render_text(new, grandfathered, stale, verbose=verbose), file=stream)

    return 1 if new else 0
