"""Analyzer engine: file collection, parsing, rule dispatch, waivers.

The engine turns each ``.py`` file into a :class:`ModuleUnit` (source +
AST + derived dotted module name), runs every registered rule over it,
and drops findings whose source line carries an inline waiver comment::

    if math.gcd(lam, n) != 1:  # audit-ok: SEC002 — keygen validity check

Waivers are per-line and per-rule; ``# audit-ok: SEC002,CRY002`` waives
both rules on that line.  A bare ``# audit-ok`` (no rule list) waives
every rule on the line — use sparingly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.audit.findings import Finding
from repro.audit.registry import Rule, all_rules
from repro.errors import AuditError

__all__ = ["AuditConfig", "ModuleUnit", "AuditEngine", "module_name_for_path"]

_WAIVER_RE = re.compile(r"#\s*audit-ok(?::\s*(?P<rules>[A-Z0-9,\s]+?))?\s*(?:—|--|$)")

#: Identifiers that (exactly) name secret material anywhere in the codebase.
DEFAULT_SECRET_NAMES = frozenset(
    {"sk", "lam", "mu", "blinding", "alpha", "beta", "epsilon", "eta"}
)


@dataclass(frozen=True)
class AuditConfig:
    """Tunable knobs shared by all rules.

    The defaults encode this repository's layout; tests construct
    narrower configs to exercise individual rules in isolation.
    """

    #: Exact identifiers treated as taint sources.
    secret_names: frozenset[str] = DEFAULT_SECRET_NAMES
    #: Modules allowed to import :mod:`random`/:mod:`secrets`/``os.urandom``.
    randomness_allowed: frozenset[str] = frozenset({"repro.crypto.rand"})
    #: Modules allowed to import :mod:`hashlib` directly.
    hashing_allowed: frozenset[str] = frozenset({"repro.crypto.hashing"})
    #: Package prefixes where the taint rules (CRY002) apply.
    taint_scope: tuple[str, ...] = (
        "repro.crypto",
        "repro.pisa",
        "repro.service",
        "repro.cluster",
    )
    #: Package prefixes where secret-logging (SEC001) applies.
    logging_scope: tuple[str, ...] = ("repro.pisa", "repro.service", "repro.cluster")
    #: Modules whose job *is* branching on decrypted signs (SEC002 exempt).
    sign_extraction_modules: frozenset[str] = frozenset(
        {"repro.pisa.stp_server", "repro.pisa.two_server", "repro.pisa.packed"}
    )
    #: Package prefixes where the transcript-order rule (ORD001) applies.
    ordering_scope: tuple[str, ...] = ("repro.pisa",)
    #: Modules subject to the shared-state race heuristic (SVC001).
    service_modules: frozenset[str] = frozenset(
        {
            "repro.service.broker",
            "repro.service.workers",
            "repro.cluster.compute",
            "repro.cluster.membership",
            "repro.cluster.replica",
            "repro.cluster.router",
            "repro.cluster.shard",
        }
    )
    #: Package prefixes where the ad-hoc-retry rule (RES001) applies.
    resilience_scope: tuple[str, ...] = (
        "repro.service",
        "repro.cluster",
        "repro.net",
        "repro.netd",
        "repro.resilience",
        "repro.pisa",
    )
    #: Modules exempt from RES001 (the policy engine is the one place a
    #: sleep-in-a-loop is intentional).
    resilience_exempt: frozenset[str] = frozenset({"repro.resilience.policy"})
    #: Package prefixes where the wire-primitive rule (NET001) applies.
    network_scope: tuple[str, ...] = ("repro",)
    #: Package prefixes that *own* wire formats and sockets (NET001 exempt).
    network_owned: tuple[str, ...] = ("repro.netd",)
    #: Single modules with a grandfathered byte-layout of their own.
    network_allowed: frozenset[str] = frozenset(
        {"repro.crypto.serialization", "repro.resilience.journal"}
    )
    #: Package prefixes where the telemetry-hygiene rule (TEL001) applies —
    #: everywhere spans/metrics are recorded, including the telemetry
    #: plane itself.
    telemetry_scope: tuple[str, ...] = ("repro",)
    #: Restrict the run to these rule ids (empty = all).
    select: frozenset[str] = frozenset()

    def in_scope(self, module: str, prefixes: tuple[str, ...]) -> bool:
        return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class ModuleUnit:
    """One parsed source file handed to the rules."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, *, path: str = "<memory>", module: str = "") -> "ModuleUnit":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AuditError(f"cannot parse {path}: {exc}") from exc
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str, *, context: str = "<module>"
    ) -> Finding:
        """Build a Finding anchored at ``node``."""
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            module=self.module,
            context=context,
            snippet=self.snippet(line),
        )

    def waived_rules(self, line: int) -> frozenset[str] | None:
        """Rules waived on ``line``; None = no waiver, empty set = waive all."""
        text = self.snippet(line)
        match = _WAIVER_RE.search(text)
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return frozenset()
        return frozenset(r.strip() for r in rules.split(",") if r.strip())


def module_name_for_path(path: Path) -> str:
    """Derive a dotted module name from a file path.

    The segment after a ``src`` directory anchors the package root
    (``src/repro/pisa/blinding.py`` → ``repro.pisa.blinding``); without a
    ``src`` anchor, the path parts are joined as-is.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in (".", ""))


class AuditEngine:
    """Runs every registered rule over a set of files or units."""

    def __init__(self, config: AuditConfig | None = None) -> None:
        self.config = config or AuditConfig()

    def _active_rules(self) -> tuple[Rule, ...]:
        rules = all_rules()
        if self.config.select:
            rules = tuple(r for r in rules if r.rule_id in self.config.select)
        return rules

    def collect_files(self, paths: Iterable[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.update(p for p in path.rglob("*.py"))
            elif path.suffix == ".py" and path.exists():
                files.add(path)
            elif not path.exists():
                raise AuditError(f"no such file or directory: {raw}")
        return sorted(files)

    def run_unit(self, unit: ModuleUnit) -> list[Finding]:
        """Run all active rules over one parsed module, applying waivers."""
        findings: list[Finding] = []
        for rule in self._active_rules():
            for finding in rule(unit, self.config):
                waived = unit.waived_rules(finding.line)
                if waived is not None and (not waived or finding.rule in waived):
                    continue
                findings.append(finding)
        findings.sort()
        return findings

    def run(self, paths: Iterable[str]) -> list[Finding]:
        """Analyze all python files reachable from ``paths``."""
        findings: list[Finding] = []
        for path in self.collect_files(paths):
            source = path.read_text(encoding="utf-8")
            unit = ModuleUnit.from_source(
                source, path=str(path), module=module_name_for_path(path)
            )
            findings.extend(self.run_unit(unit))
        findings.sort()
        return findings
