"""Analyzer engine: file collection, parsing, rule dispatch, waivers.

The engine turns each ``.py`` file into a :class:`ModuleUnit` (source +
AST + derived dotted module name), runs every registered rule over it,
and drops findings whose source line carries an inline waiver comment::

    if math.gcd(lam, n) != 1:  # audit-ok: SEC002 — keygen validity check

Waivers are per-line and per-rule; ``# audit-ok: SEC002,CRY002`` waives
both rules on that line.  A bare ``# audit-ok`` (no rule list) waives
every rule on the line — use sparingly.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from repro.audit.findings import Finding
from repro.audit.registry import Rule, all_rules
from repro.errors import AuditError

__all__ = ["AuditConfig", "ModuleUnit", "AuditEngine", "module_name_for_path"]

_WAIVER_RE = re.compile(r"#\s*audit-ok(?::\s*(?P<rules>[A-Z0-9,\s]+?))?\s*(?:—|--|$)")

#: Identifiers that (exactly) name secret material anywhere in the codebase.
DEFAULT_SECRET_NAMES = frozenset(
    {"sk", "lam", "mu", "blinding", "alpha", "beta", "epsilon", "eta"}
)


@dataclass(frozen=True)
class AuditConfig:
    """Tunable knobs shared by all rules.

    The defaults encode this repository's layout; tests construct
    narrower configs to exercise individual rules in isolation.
    """

    #: Exact identifiers treated as taint sources.
    secret_names: frozenset[str] = DEFAULT_SECRET_NAMES
    #: Modules allowed to import :mod:`random`/:mod:`secrets`/``os.urandom``.
    randomness_allowed: frozenset[str] = frozenset({"repro.crypto.rand"})
    #: Modules allowed to import :mod:`hashlib` directly.
    hashing_allowed: frozenset[str] = frozenset({"repro.crypto.hashing"})
    #: Package prefixes where the taint rules (CRY002) apply.
    taint_scope: tuple[str, ...] = (
        "repro.crypto",
        "repro.pisa",
        "repro.service",
        "repro.cluster",
    )
    #: Package prefixes where secret-logging (SEC001) applies.
    logging_scope: tuple[str, ...] = ("repro.pisa", "repro.service", "repro.cluster")
    #: Modules whose job *is* branching on decrypted signs (SEC002 exempt).
    sign_extraction_modules: frozenset[str] = frozenset(
        {"repro.pisa.stp_server", "repro.pisa.two_server", "repro.pisa.packed"}
    )
    #: Package prefixes where the transcript-order rule (ORD001) applies.
    ordering_scope: tuple[str, ...] = ("repro.pisa",)
    #: Modules subject to the shared-state race heuristic (SVC001).
    service_modules: frozenset[str] = frozenset(
        {
            "repro.service.broker",
            "repro.service.workers",
            "repro.cluster.compute",
            "repro.cluster.membership",
            "repro.cluster.replica",
            "repro.cluster.router",
            "repro.cluster.shard",
        }
    )
    #: Package prefixes where the ad-hoc-retry rule (RES001) applies.
    resilience_scope: tuple[str, ...] = (
        "repro.service",
        "repro.cluster",
        "repro.net",
        "repro.netd",
        "repro.resilience",
        "repro.pisa",
        "repro.store",
    )
    #: Modules exempt from RES001 (the policy engine is the one place a
    #: sleep-in-a-loop is intentional).
    resilience_exempt: frozenset[str] = frozenset({"repro.resilience.policy"})
    #: Package prefixes where the wire-primitive rule (NET001) applies.
    network_scope: tuple[str, ...] = ("repro",)
    #: Package prefixes that *own* wire formats and sockets (NET001 exempt).
    network_owned: tuple[str, ...] = ("repro.netd",)
    #: Single modules with a grandfathered byte-layout of their own.
    network_allowed: frozenset[str] = frozenset(
        {"repro.crypto.serialization", "repro.resilience.journal"}
    )
    #: Package prefixes where the telemetry-hygiene rule (TEL001) applies —
    #: everywhere spans/metrics are recorded, including the telemetry
    #: plane itself.
    telemetry_scope: tuple[str, ...] = ("repro",)
    #: Package prefixes covered by the determinism family (DET0xx): every
    #: module whose output can reach a protocol transcript.
    determinism_scope: tuple[str, ...] = (
        "repro.crypto",
        "repro.pisa",
        "repro.service",
        "repro.cluster",
        "repro.netd",
        "repro.resilience",
        "repro.store",
        "repro.sim",
    )
    #: Modules allowed to read civil time — the injected Clock seam
    #: implementations.  Everything else must take a ``clock=`` parameter.
    clock_seam_modules: frozenset[str] = frozenset()
    #: Package prefixes where float accumulation is a transcript hazard
    #: (DET005) — the protocol core, not analysis/reporting code.
    float_accum_scope: tuple[str, ...] = (
        "repro.pisa",
        "repro.crypto",
        "repro.cluster",
    )
    #: Package prefixes where the asyncio-hygiene family (ASY0xx) applies —
    #: the planes that run an event loop.
    asyncio_scope: tuple[str, ...] = (
        "repro.netd",
        "repro.service",
        "repro.store",
        "repro.sim",
    )
    #: Restrict the run to these rule ids (empty = all).
    select: frozenset[str] = frozenset()

    def in_scope(self, module: str, prefixes: tuple[str, ...]) -> bool:
        return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class ModuleUnit:
    """One parsed source file handed to the rules."""

    path: str
    module: str
    source: str
    tree: ast.Module
    lines: Sequence[str] = field(default_factory=tuple)

    @classmethod
    def from_source(cls, source: str, *, path: str = "<memory>", module: str = "") -> "ModuleUnit":
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AuditError(f"cannot parse {path}: {exc}") from exc
        return cls(
            path=path,
            module=module,
            source=source,
            tree=tree,
            lines=tuple(source.splitlines()),
        )

    def snippet(self, line: int) -> str:
        """Stripped source text of a 1-indexed line ('' when out of range)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, node: ast.AST, rule: str, message: str, *, context: str = "<module>"
    ) -> Finding:
        """Build a Finding anchored at ``node``."""
        line = getattr(node, "lineno", 0)
        col = getattr(node, "col_offset", 0)
        return Finding(
            path=self.path,
            line=line,
            col=col,
            rule=rule,
            message=message,
            module=self.module,
            context=context,
            snippet=self.snippet(line),
        )

    def waived_rules(self, line: int) -> frozenset[str] | None:
        """Rules waived on ``line``; None = no waiver, empty set = waive all."""
        text = self.snippet(line)
        match = _WAIVER_RE.search(text)
        if match is None:
            return None
        rules = match.group("rules")
        if rules is None:
            return frozenset()
        return frozenset(r.strip() for r in rules.split(",") if r.strip())


def module_name_for_path(path: Path) -> str:
    """Derive a dotted module name from a file path.

    The segment after a ``src`` directory anchors the package root
    (``src/repro/pisa/blinding.py`` → ``repro.pisa.blinding``); without a
    ``src`` anchor, the path parts are joined as-is.
    """
    parts = list(path.with_suffix("").parts)
    if "src" in parts:
        parts = parts[parts.index("src") + 1 :]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(p for p in parts if p not in (".", ""))


class AuditEngine:
    """Runs every registered rule over a set of files or units."""

    def __init__(self, config: AuditConfig | None = None) -> None:
        self.config = config or AuditConfig()

    def _active_rules(self) -> tuple[Rule, ...]:
        rules = all_rules()
        if self.config.select:
            rules = tuple(r for r in rules if r.rule_id in self.config.select)
        return rules

    def collect_files(self, paths: Iterable[str]) -> list[Path]:
        """Expand files/directories into a sorted list of ``.py`` files."""
        files: set[Path] = set()
        for raw in paths:
            path = Path(raw)
            if path.is_dir():
                files.update(p for p in path.rglob("*.py"))
            elif path.suffix == ".py" and path.exists():
                files.add(path)
            elif not path.exists():
                raise AuditError(f"no such file or directory: {raw}")
        return sorted(files)

    def run_unit(self, unit: ModuleUnit, project=None) -> list[Finding]:
        """Run unit-level rules over one parsed module, applying waivers.

        Without a ``project``, taint rules degrade to their
        intra-function analysis and summary rules are skipped — this is
        the engine-v1 behavior that single-module tests rely on.
        """
        findings: list[Finding] = []
        for rule in self._active_rules():
            if rule.kind == "summary":
                continue
            if rule.kind == "taint":
                produced = rule.check(unit, self.config, project)
            else:
                produced = rule.check(unit, self.config)
            for finding in produced:
                waived = unit.waived_rules(finding.line)
                if waived is not None and (not waived or finding.rule in waived):
                    continue
                findings.append(finding)
        findings.sort()
        return findings

    def run_summary_rules(self, project) -> list[Finding]:
        """Run the interprocedural rules over a populated project."""
        findings: list[Finding] = []
        for rule in self._active_rules():
            if rule.kind != "summary":
                continue
            for finding in rule.check(project, self.config):
                if project.waived(finding.module, finding.line, finding.rule):
                    continue
                findings.append(finding)
        findings.sort()
        return findings

    def build_project(self, units: Iterable[ModuleUnit]):
        """Assemble summaries + call graph + fact lattice for ``units``."""
        from repro.audit.callgraph import Project, build_module_summary
        from repro.audit.taint import propagate_facts

        summaries = {
            unit.module: build_module_summary(unit, self.config.secret_names)
            for unit in units
        }
        project = Project(summaries)
        propagate_facts(project, self.config)
        return project

    def run(self, paths: Iterable[str], cache=None) -> list[Finding]:
        """Analyze all python files reachable from ``paths``.

        With a :class:`repro.audit.cache.AuditCache`, unchanged files
        skip parsing entirely: their cached summaries feed the call
        graph and their cached unit-level findings are replayed, so a
        warm full-repo audit is dominated by hashing + the summary-rule
        fixpoint.
        """
        from repro.audit.callgraph import Project
        from repro.audit.taint import propagate_facts

        files = self.collect_files(paths)
        if cache is None:
            units = [
                ModuleUnit.from_source(
                    p.read_text(encoding="utf-8"),
                    path=str(p),
                    module=module_name_for_path(p),
                )
                for p in files
            ]
            project = self.build_project(units)
            findings: list[Finding] = []
            for unit in units:
                findings.extend(self.run_unit(unit, project))
            findings.extend(self.run_summary_rules(project))
            findings.sort()
            return findings
        return self._run_cached(files, cache)

    def _run_cached(self, files: list[Path], cache) -> list[Finding]:
        from repro.audit.callgraph import Project, build_module_summary
        from repro.audit.taint import propagate_facts

        sources: dict[str, str] = {}
        keys: dict[str, str] = {}
        units: dict[str, ModuleUnit] = {}
        summaries: dict[str, "object"] = {}
        config_digest = cache.config_digest(self.config)

        for path in files:
            source = path.read_text(encoding="utf-8")
            module = module_name_for_path(path)
            key = cache.content_key(source, config_digest)
            sources[module] = source
            keys[module] = key
            summary = cache.get_summary(str(path), key)
            if summary is None:
                unit = ModuleUnit.from_source(source, path=str(path), module=module)
                units[module] = unit
                summary = build_module_summary(unit, self.config.secret_names)
            summaries[module] = summary

        project = Project(summaries)
        propagate_facts(project, self.config)
        taint_digest = cache.taint_digest(project)

        findings: list[Finding] = []
        for path in files:
            module = module_name_for_path(path)
            key = keys[module]
            cached = cache.get_unit_findings(str(path), key, taint_digest)
            if cached is None:
                unit = units.get(module)
                if unit is None:
                    unit = ModuleUnit.from_source(
                        sources[module], path=str(path), module=module
                    )
                unit_findings = self.run_unit(unit, project)
                cache.put(
                    str(path),
                    key,
                    summary=summaries[module],
                    findings=unit_findings,
                    taint_digest=taint_digest,
                )
                findings.extend(unit_findings)
            else:
                findings.extend(cached)
        findings.extend(self.run_summary_rules(project))
        findings.sort()
        return findings
