"""Runtime protocol sanitizer — a transport wrapper that checks invariants
on every message in flight.

:class:`SanitizingTransport` wraps any transport exposing
``send(message, sender, receiver)`` (normally
:class:`repro.net.transport.InMemoryTransport`) and asserts, per message:

* every ciphertext is **well-formed**: ``0 < c < modulus`` and
  ``gcd(c, modulus) == 1`` (a ciphertext sharing a factor with ``n``
  leaks the factorization and can never decrypt correctly);
* **STP-bound envelopes carry only blinded values**: messages addressed
  to the STP must be one of the sanctioned sign-extraction envelope
  types, and their ciphertexts must live under the *group* key — never
  an SU's personal key (§IV-B: the STP sees only ``Ṽ = ε(αI − β)``);
* **re-randomization freshness**: within one epoch, no ciphertext
  integer in an SU-originated request may repeat — a repeat means a
  cached request was re-submitted without re-randomization, which lets
  the SDC link requests across rounds.

Violations raise :class:`repro.errors.SanitizerViolation` immediately at
the ``send`` call, so the failing protocol step is on the stack.

The test suite enables the wrapper through the ``sanitized_transport``
fixture (see ``tests/conftest.py``); setting ``PISA_SANITIZE=1`` in the
environment turns it on for every test that uses the fixture.
"""

from __future__ import annotations

import math
from dataclasses import fields, is_dataclass
from typing import Iterable, Iterator

from repro.errors import SanitizerViolation

__all__ = ["SanitizingTransport", "iter_ciphertexts"]

#: Message class names allowed to travel to the STP.  Anything else
#: addressed to an STP receiver is a protocol violation.
STP_ENVELOPE_KINDS = frozenset(
    {
        "SignExtractionRequest",
        "PackedSignExtractionRequest",
        "PartialSignExtractionRequest",
    }
)

#: Receiver names treated as the sign-extraction server.
_STP_RECEIVERS = ("stp", "backend")

#: Message class names whose ciphertexts must be fresh within an epoch.
_FRESHNESS_KINDS = frozenset({"SURequestMessage", "PackedRequestMessage"})


def _is_ciphertext(value: object) -> bool:
    """Duck-typed ciphertext test: key-bound integer ciphertext."""
    return (
        hasattr(value, "ciphertext")
        and hasattr(value, "public_key")
        and isinstance(getattr(value, "ciphertext"), int)
    )


def iter_ciphertexts(value: object, _depth: int = 0) -> Iterator:
    """Yield every ciphertext object reachable inside ``value``.

    Recurses through dataclasses, tuples, lists, dicts, and sets; depth
    is bounded defensively against cyclic structures.
    """
    if _depth > 16:
        return
    if _is_ciphertext(value):
        yield value
        return
    if is_dataclass(value) and not isinstance(value, type):
        for spec in fields(value):
            yield from iter_ciphertexts(getattr(value, spec.name), _depth + 1)
    elif isinstance(value, dict):
        for item in value.values():
            yield from iter_ciphertexts(item, _depth + 1)
    elif isinstance(value, (tuple, list, set, frozenset)):
        for item in value:
            yield from iter_ciphertexts(item, _depth + 1)


def _modulus_of(ct) -> int:
    """Ciphertext-space modulus: n² for Paillier, n^{s+1} for Damgård–Jurik."""
    pk = ct.public_key
    if hasattr(pk, "n_sq"):
        return pk.n_sq
    if hasattr(pk, "n_s1"):
        return pk.n_s1
    raise SanitizerViolation(
        f"ciphertext public key {type(pk).__name__} exposes no modulus"
    )


class SanitizingTransport:
    """Invariant-checking wrapper around a message transport."""

    def __init__(self, inner, group_key=None) -> None:
        self.inner = inner
        self._group_key = group_key
        self._seen: set[int] = set()
        self.messages_checked = 0
        self.ciphertexts_checked = 0

    # -- configuration -----------------------------------------------------

    def bind_group_key(self, public_key) -> None:
        """Late-bind the group key ``pk_G`` (generated after construction)."""
        self._group_key = public_key

    def new_epoch(self) -> None:
        """Reset freshness tracking at an epoch boundary."""
        self._seen.clear()

    # -- the check ---------------------------------------------------------

    def send(self, message, sender: str, receiver: str):
        kind = type(message).__name__
        cts = list(iter_ciphertexts(message))
        for ct in cts:
            self._check_well_formed(ct, kind, sender, receiver)
        if any(receiver.lower().startswith(tag) for tag in _STP_RECEIVERS):
            self._check_stp_envelope(message, kind, cts, sender, receiver)
        if kind in _FRESHNESS_KINDS:
            self._check_freshness(cts, kind, sender)
        self.messages_checked += 1
        self.ciphertexts_checked += len(cts)
        return self.inner.send(message, sender, receiver)

    def _check_well_formed(self, ct, kind: str, sender: str, receiver: str) -> None:
        modulus = _modulus_of(ct)
        value = ct.ciphertext
        if not 0 < value < modulus:
            raise SanitizerViolation(
                f"{kind} {sender}->{receiver}: ciphertext out of range "
                f"[1, modulus): got {value.bit_length()} bits vs modulus "
                f"{modulus.bit_length()} bits"
            )
        if math.gcd(value, modulus) != 1:
            raise SanitizerViolation(
                f"{kind} {sender}->{receiver}: ciphertext shares a factor "
                "with the modulus — invalid (and factor-leaking) ciphertext"
            )

    def _check_stp_envelope(
        self, message, kind: str, cts: Iterable, sender: str, receiver: str
    ) -> None:
        if kind not in STP_ENVELOPE_KINDS:
            raise SanitizerViolation(
                f"{kind} {sender}->{receiver}: only blinded sign-extraction "
                f"envelopes may reach the STP (allowed: "
                f"{', '.join(sorted(STP_ENVELOPE_KINDS))})"
            )
        if self._group_key is not None:
            for ct in cts:
                if ct.public_key != self._group_key:
                    raise SanitizerViolation(
                        f"{kind} {sender}->{receiver}: STP-bound ciphertext is "
                        "not under the group key — unblinded or personal-key "
                        "material would leak to the STP"
                    )

    def _check_freshness(self, cts: Iterable, kind: str, sender: str) -> None:
        for ct in cts:
            value = ct.ciphertext
            if value in self._seen:
                raise SanitizerViolation(
                    f"{kind} from {sender}: ciphertext repeats within the "
                    "epoch — request was re-sent without re-randomization"
                )
            self._seen.add(value)

    # -- delegation --------------------------------------------------------

    def channel(self, sender: str, receiver: str):
        """A per-link send handle that still routes through the sanitizer.

        Without this override, ``__getattr__`` would hand back the inner
        multiplexed transport's channel — bound to the *inner* transport,
        silently bypassing every check above.  The canonical stack is
        ``SanitizingTransport(MultiplexedTransport(...))``: sanitize at
        the outside (checks see exactly what the caller sent), inject
        faults at the inside (a dropped message was still a *sent*
        message and must still pass the protocol checks).  See
        ``docs/resilience.md``.
        """
        from repro.net.transport import BoundChannel

        return BoundChannel(transport=self, sender=sender, receiver=receiver)

    def __getattr__(self, name: str):
        return getattr(self.inner, name)
