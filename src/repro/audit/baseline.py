"""Baseline file handling — grandfathered findings.

The baseline is a checked-in JSON file mapping finding *fingerprints*
(see :class:`repro.audit.findings.Finding`) to a human-readable reason.
``repro audit`` exits non-zero only for findings whose fingerprint is
absent from the baseline, so existing accepted violations don't block CI
while every new one does.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.audit.findings import Finding
from repro.errors import AuditError

__all__ = ["Baseline", "diff_against_baseline"]

#: Current on-disk version.  Version 1 (engine v1) files load
#: transparently — fingerprints are unchanged across the engine-v2
#: migration, so prior waivers survive byte-for-byte — and are rewritten
#: as version 2 on the next ``--update-baseline``.
_VERSION = 2
_READABLE_VERSIONS = (1, 2)


@dataclass
class Baseline:
    """Set of grandfathered finding fingerprints with reasons."""

    entries: dict[str, dict] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError) as exc:
            raise AuditError(f"cannot read baseline {path}: {exc}") from exc
        if payload.get("version") not in _READABLE_VERSIONS:
            raise AuditError(
                f"unsupported baseline version in {path}: {payload.get('version')!r}"
            )
        entries = {}
        for item in payload.get("findings", []):
            fingerprint = item.get("fingerprint")
            if not fingerprint:
                raise AuditError(f"baseline entry missing fingerprint in {path}")
            entries[fingerprint] = item
        return cls(entries=entries)

    @classmethod
    def from_findings(
        cls, findings: list[Finding], reason: str = "grandfathered"
    ) -> "Baseline":
        entries = {}
        for finding in findings:
            entries[finding.fingerprint] = {
                "fingerprint": finding.fingerprint,
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "context": finding.context,
                "snippet": finding.snippet,
                "reason": reason,
            }
        return cls(entries=entries)

    def save(self, path: str | Path) -> None:
        payload = {
            "version": _VERSION,
            "findings": [self.entries[k] for k in sorted(self.entries)],
        }
        Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def __contains__(self, finding: Finding) -> bool:
        return finding.fingerprint in self.entries

    def __len__(self) -> int:
        return len(self.entries)


def diff_against_baseline(
    findings: list[Finding], baseline: Baseline
) -> tuple[list[Finding], list[Finding], list[dict]]:
    """Split ``findings`` into (new, grandfathered) plus stale entries.

    Stale entries are baseline records whose violation no longer exists —
    they should be pruned with ``--update-baseline``.
    """
    new = [f for f in findings if f not in baseline]
    grandfathered = [f for f in findings if f in baseline]
    seen = {f.fingerprint for f in findings}
    stale = [
        entry for key, entry in sorted(baseline.entries.items()) if key not in seen
    ]
    return new, grandfathered, stale
