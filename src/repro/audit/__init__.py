"""repro.audit — crypto-hygiene static analyzer + runtime protocol sanitizer.

Two halves, one purpose: keep the implementation honest about the
paper's security claims.

* The **static analyzer** (``repro audit`` on the CLI) parses the source
  tree and enforces crypto-hygiene rules — randomness funneled through
  :class:`repro.crypto.rand.RandomSource` (CRY001), no float arithmetic
  on secret-derived values (CRY002), no logging (SEC001) or branching
  (SEC002) on secrets, the transcript-order invariant (ORD001), and a
  shared-state race heuristic for the service layer (SVC001).  Accepted
  pre-existing findings live in a checked-in baseline
  (``audit-baseline.json``); only *new* findings fail the run.
* The **runtime sanitizer** (:class:`repro.audit.runtime.SanitizingTransport`)
  wraps the message transport during tests and asserts per-message
  invariants: ciphertext well-formedness, STP envelopes carrying only
  group-key blinded values, and re-randomization freshness per epoch.
"""

from __future__ import annotations

from repro.audit.baseline import Baseline, diff_against_baseline
from repro.audit.cli import DEFAULT_BASELINE, run_audit
from repro.audit.engine import AuditConfig, AuditEngine, ModuleUnit, module_name_for_path
from repro.audit.findings import Finding
from repro.audit.registry import Rule, all_rules, get_rule, register_rule, rule_ids
from repro.audit.runtime import SanitizingTransport, iter_ciphertexts

__all__ = [
    "AuditConfig",
    "AuditEngine",
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleUnit",
    "Rule",
    "SanitizingTransport",
    "all_rules",
    "diff_against_baseline",
    "get_rule",
    "iter_ciphertexts",
    "module_name_for_path",
    "register_rule",
    "rule_ids",
    "run_audit",
]
