"""repro.audit — crypto-hygiene static analyzer + runtime protocol sanitizer.

Two halves, one purpose: keep the implementation honest about the
paper's security claims.

* The **static analyzer** (``repro audit`` on the CLI) is a
  flow-sensitive *interprocedural* engine: it builds a project-wide
  symbol table and call graph (:mod:`repro.audit.callgraph`) and
  propagates secret/blocking/nondeterminism facts across function
  boundaries to a fixpoint, so a coroutine calling a helper that calls
  ``os.replace`` is flagged with its provenance chain.  Rule families:
  crypto hygiene (CRY0xx), secret confinement (SEC0xx, taint crosses
  call boundaries), transcript ordering (ORD001), service-state races
  (SVC001), resilience/telemetry/transport ownership (RES001, TEL001,
  NET001), determinism proving (DET0xx), and async-race detection for
  the socket plane (ASY0xx).  Per-file results are cached by content +
  config + taint digest (:mod:`repro.audit.cache`), findings export as
  SARIF 2.1.0, ``--explain RULEID`` prints any rule's card, and
  accepted pre-existing findings live in a checked-in baseline
  (``audit-baseline.json``); only *new* findings fail the run.
* The **runtime sanitizer** (:class:`repro.audit.runtime.SanitizingTransport`)
  wraps the message transport during tests and asserts per-message
  invariants: ciphertext well-formedness, STP envelopes carrying only
  group-key blinded values, and re-randomization freshness per epoch.
"""

from __future__ import annotations

from repro.audit.baseline import Baseline, diff_against_baseline
from repro.audit.cli import DEFAULT_BASELINE, run_audit
from repro.audit.engine import AuditConfig, AuditEngine, ModuleUnit, module_name_for_path
from repro.audit.findings import Finding
from repro.audit.registry import Rule, all_rules, get_rule, register_rule, rule_ids
from repro.audit.runtime import SanitizingTransport, iter_ciphertexts

__all__ = [
    "AuditConfig",
    "AuditEngine",
    "Baseline",
    "DEFAULT_BASELINE",
    "Finding",
    "ModuleUnit",
    "Rule",
    "SanitizingTransport",
    "all_rules",
    "diff_against_baseline",
    "get_rule",
    "iter_ciphertexts",
    "module_name_for_path",
    "register_rule",
    "rule_ids",
    "run_audit",
]
