"""Text, JSON, and SARIF reporters for analyzer runs."""

from __future__ import annotations

import json

from repro.audit.findings import Finding

__all__ = ["render_text", "render_json", "render_sarif"]


def render_text(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[dict],
    *,
    verbose: bool = False,
) -> str:
    """Human-readable report; new findings first, summary line last."""
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and grandfathered:
        lines.append("")
        lines.append("grandfathered (baseline):")
        for finding in grandfathered:
            lines.append(f"  {finding.render()}")
    if stale:
        lines.append("")
        lines.append(
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "(violation no longer present; run with --update-baseline to prune):"
        )
        for entry in stale:
            lines.append(
                f"  {entry.get('rule', '?')} {entry.get('path', '?')} "
                f"[{entry.get('fingerprint', '?')}]"
            )
    lines.append("")
    lines.append(
        f"audit: {len(new)} new, {len(grandfathered)} grandfathered, "
        f"{len(stale)} stale baseline"
    )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[dict],
) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""
    payload = {
        "summary": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline": len(stale),
        },
        "new": [f.to_json_dict() for f in new],
        "grandfathered": [f.to_json_dict() for f in grandfathered],
        "stale_baseline": stale,
    }
    return json.dumps(payload, indent=2) + "\n"


_SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def _sarif_result(finding: Finding, level: str, baseline_state: str) -> dict:
    uri = finding.path.replace("\\", "/").lstrip("./")
    return {
        "ruleId": finding.rule,
        "level": level,
        "message": {"text": f"{finding.message} [{finding.context}]"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": uri,
                        "uriBaseId": "%SRCROOT%",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproAudit/v1": finding.fingerprint},
        "baselineState": baseline_state,
    }


def render_sarif(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[dict],
) -> str:
    """SARIF 2.1.0 log for GitHub code scanning.

    New findings upload as errors; grandfathered ones ride along as
    notes marked ``unchanged`` so code scanning shows them without
    failing the check.  Every emitted ``ruleId`` gets a driver rule
    entry carrying the rule's summary and rationale.
    """
    from repro.audit.cache import ENGINE_VERSION
    from repro.audit.registry import all_rules

    emitted = {f.rule for f in new} | {f.rule for f in grandfathered}
    rules = [
        {
            "id": rule.rule_id,
            "name": rule.rule_id,
            "shortDescription": {"text": rule.summary},
            **(
                {"fullDescription": {"text": rule.rationale}}
                if rule.rationale
                else {}
            ),
            "defaultConfiguration": {"level": "error"},
        }
        for rule in all_rules()
        if rule.rule_id in emitted
    ]
    rule_index = {rule["id"]: i for i, rule in enumerate(rules)}
    results = [_sarif_result(f, "error", "new") for f in new] + [
        _sarif_result(f, "note", "unchanged") for f in grandfathered
    ]
    for result in results:
        result["ruleIndex"] = rule_index[result["ruleId"]]
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-audit",
                        "version": ENGINE_VERSION,
                        "rules": rules,
                    }
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }
    return json.dumps(payload, indent=2) + "\n"
