"""Text and JSON reporters for analyzer runs."""

from __future__ import annotations

import json

from repro.audit.findings import Finding

__all__ = ["render_text", "render_json"]


def render_text(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[dict],
    *,
    verbose: bool = False,
) -> str:
    """Human-readable report; new findings first, summary line last."""
    lines: list[str] = []
    for finding in new:
        lines.append(finding.render())
        if finding.snippet:
            lines.append(f"    {finding.snippet}")
    if verbose and grandfathered:
        lines.append("")
        lines.append("grandfathered (baseline):")
        for finding in grandfathered:
            lines.append(f"  {finding.render()}")
    if stale:
        lines.append("")
        lines.append(
            f"{len(stale)} stale baseline entr{'y' if len(stale) == 1 else 'ies'} "
            "(violation no longer present; run with --update-baseline to prune):"
        )
        for entry in stale:
            lines.append(
                f"  {entry.get('rule', '?')} {entry.get('path', '?')} "
                f"[{entry.get('fingerprint', '?')}]"
            )
    lines.append("")
    lines.append(
        f"audit: {len(new)} new, {len(grandfathered)} grandfathered, "
        f"{len(stale)} stale baseline"
    )
    return "\n".join(lines)


def render_json(
    new: list[Finding],
    grandfathered: list[Finding],
    stale: list[dict],
) -> str:
    """Machine-readable report (uploaded as a CI artifact)."""
    payload = {
        "summary": {
            "new": len(new),
            "grandfathered": len(grandfathered),
            "stale_baseline": len(stale),
        },
        "new": [f.to_json_dict() for f in new],
        "grandfathered": [f.to_json_dict() for f in grandfathered],
        "stale_baseline": stale,
    }
    return json.dumps(payload, indent=2) + "\n"
