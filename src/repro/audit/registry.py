"""Pluggable rule registry for the static analyzer.

Rules self-register at import time with the :func:`register_rule`
decorator.  Engine v2 distinguishes three rule *kinds* by the shape of
their check callable:

``syntactic``
    ``check(unit, config) -> Iterable[Finding]`` — purely local to one
    parsed module.  Findings are cacheable per content hash.

``taint``
    ``check(unit, config, project=None) -> Iterable[Finding]`` — runs
    over one module's AST but may consult the project call graph for
    cross-function taint seeds.  Called with ``project=None`` it must
    degrade to the intra-function analysis (unit tests rely on this).

``summary``
    ``check(project, config) -> Iterable[Finding]`` — interprocedural,
    operating on cached :class:`repro.audit.callgraph.ModuleSummary`
    data only, never ASTs.  These are cheap and always re-run, which is
    what keeps the warm-cache audit fast.

Every rule also carries explanation metadata (``rationale``, ``bad``,
``good``) surfaced by ``repro audit --explain RULEID``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import AuditError

__all__ = ["Rule", "register_rule", "all_rules", "get_rule", "rule_ids"]

_KINDS = ("syntactic", "taint", "summary")


@dataclass(frozen=True)
class Rule:
    """A registered analyzer rule."""

    rule_id: str
    summary: str
    check: Callable
    kind: str = "syntactic"
    rationale: str = ""
    bad: str = ""
    good: str = ""

    def __call__(self, unit, config) -> Iterable:
        # Back-compat entry point used by unit-level callers; taint rules
        # degrade to their intra-function analysis without a project.
        if self.kind == "taint":
            return self.check(unit, config, None)
        if self.kind == "summary":
            return ()
        return self.check(unit, config)

    def explain(self) -> str:
        """Human-readable rule card for ``repro audit --explain``."""
        lines = [f"{self.rule_id} — {self.summary}", ""]
        if self.rationale:
            lines += ["Why it matters:", f"  {self.rationale}", ""]
        if self.bad:
            lines += ["Flagged:"]
            lines += [f"    {ln}" for ln in self.bad.strip("\n").splitlines()]
            lines += [""]
        if self.good:
            lines += ["Preferred:"]
            lines += [f"    {ln}" for ln in self.good.strip("\n").splitlines()]
            lines += [""]
        lines += [
            "Waiving (only with a reviewed justification):",
            f"    suspect_line()  # audit-ok: {self.rule_id} — <reason>",
            "or grandfather it into the baseline:",
            "    repro audit src/repro --update-baseline",
        ]
        return "\n".join(lines)


_REGISTRY: dict[str, Rule] = {}


def register_rule(
    rule_id: str,
    summary: str,
    *,
    kind: str = "syntactic",
    rationale: str = "",
    bad: str = "",
    good: str = "",
):
    """Class/function decorator registering an analyzer rule.

    The decorated callable keeps working as-is; registration is a side
    effect.  Registering the same id twice is an error — it almost always
    means a copy/paste slip in a new rule module.
    """
    if kind not in _KINDS:
        raise AuditError(f"unknown rule kind {kind!r} for {rule_id}")

    def decorator(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise AuditError(f"duplicate audit rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(
            rule_id=rule_id,
            summary=summary,
            check=check,
            kind=kind,
            rationale=rationale,
            bad=bad,
            good=good,
        )
        return check

    return decorator


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id for deterministic output."""
    import repro.audit.rules  # noqa: F401  — triggers registration

    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    import repro.audit.rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AuditError(f"unknown audit rule: {rule_id}") from None


def rule_ids() -> tuple[str, ...]:
    import repro.audit.rules  # noqa: F401

    return tuple(sorted(_REGISTRY))
