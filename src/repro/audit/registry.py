"""Pluggable rule registry for the static analyzer.

Rules self-register at import time with the :func:`register_rule`
decorator.  A rule is a callable ``rule(unit, config) -> Iterable[Finding]``
where ``unit`` is a parsed :class:`repro.audit.engine.ModuleUnit` and
``config`` is the active :class:`repro.audit.engine.AuditConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable

from repro.errors import AuditError

__all__ = ["Rule", "register_rule", "all_rules", "get_rule", "rule_ids"]


@dataclass(frozen=True)
class Rule:
    """A registered analyzer rule."""

    rule_id: str
    summary: str
    check: Callable

    def __call__(self, unit, config) -> Iterable:
        return self.check(unit, config)


_REGISTRY: dict[str, Rule] = {}


def register_rule(rule_id: str, summary: str):
    """Class/function decorator registering an analyzer rule.

    The decorated callable keeps working as-is; registration is a side
    effect.  Registering the same id twice is an error — it almost always
    means a copy/paste slip in a new rule module.
    """

    def decorator(check: Callable) -> Callable:
        if rule_id in _REGISTRY:
            raise AuditError(f"duplicate audit rule id: {rule_id}")
        _REGISTRY[rule_id] = Rule(rule_id=rule_id, summary=summary, check=check)
        return check

    return decorator


def all_rules() -> tuple[Rule, ...]:
    """Every registered rule, sorted by id for deterministic output."""
    import repro.audit.rules  # noqa: F401  — triggers registration

    return tuple(_REGISTRY[k] for k in sorted(_REGISTRY))


def get_rule(rule_id: str) -> Rule:
    import repro.audit.rules  # noqa: F401

    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise AuditError(f"unknown audit rule: {rule_id}") from None


def rule_ids() -> tuple[str, ...]:
    import repro.audit.rules  # noqa: F401

    return tuple(sorted(_REGISTRY))
