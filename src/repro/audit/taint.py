"""Lightweight intra-function taint propagation.

The taint walk answers one question for the CRY002/SEC001/SEC002 rules:
*which local names (may) hold secret-derived values?*  It is deliberately
small — function-scoped, flow-insensitive, run to a fixpoint — because
the codebase keeps secret material behind a handful of well-known
identifiers (``sk``, ``lam``, ``mu``, the blinding factors) and we only
need to follow straight-line data flow from those seeds.

Seeding: a name is a taint *source* when it exactly matches an entry of
the secret-identifier registry, either as a bare name (``lam = ...``) or
as an attribute (``key.lam``, ``self._blinding``).  Matching is exact on
the identifier (after stripping leading underscores), never substring —
``alpha_bits`` is a public parameter, ``alpha`` is a blinding secret.

Propagation: assignments, augmented assignments, tuple unpacking, binary
and unary operations, calls whose arguments or receiver are tainted,
subscripts, comprehension iteration variables, and walrus targets all
carry taint from any tainted operand to the bound name(s).
"""

from __future__ import annotations

import ast

__all__ = [
    "is_secret_identifier",
    "tainted_names",
    "expr_is_tainted",
    "FACT_BLOCKING",
    "FACT_WALLCLOCK",
    "FACT_AMBIENT_RANDOM",
    "propagate_facts",
    "interprocedural_seeds",
]

#: Interprocedural facts propagated over the call graph (engine v2).
#: Each fact is monotone: once a function acquires it, callers may
#: inherit it, so the fixpoint terminates on a finite lattice.
FACT_BLOCKING = "blocking"  #: may block the calling thread
FACT_WALLCLOCK = "wallclock"  #: may read civil time outside the Clock seam
FACT_AMBIENT_RANDOM = "ambient-random"  #: may draw non-RandomSource entropy


def _canonical(identifier: str) -> str:
    return identifier.lstrip("_")


def is_secret_identifier(identifier: str, secret_names: frozenset[str]) -> bool:
    """Exact-match test against the secret registry (underscore-insensitive)."""
    return _canonical(identifier) in secret_names


def _seed_names(expr: ast.AST, secret_names: frozenset[str]) -> bool:
    """True when ``expr`` *mentions* a secret identifier anywhere inside."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and is_secret_identifier(node.id, secret_names):
            return True
        if isinstance(node, ast.Attribute) and is_secret_identifier(node.attr, secret_names):
            return True
    return False


def expr_is_tainted(
    expr: ast.AST, tainted: frozenset[str], secret_names: frozenset[str]
) -> bool:
    """True when ``expr`` reads a secret identifier or a tainted local."""
    if _seed_names(expr, secret_names):
        return True
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


def _target_names(target: ast.AST):
    """Yield plain names bound by an assignment target (tuples recursed)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def tainted_names(func: ast.AST, secret_names: frozenset[str]) -> frozenset[str]:
    """Fixpoint set of local names carrying secret-derived values.

    ``func`` is a FunctionDef/AsyncFunctionDef (or any node whose body we
    should scan; nested function bodies are analyzed by their own pass and
    skipped here).
    """
    # Collect assignment-like statements once; iterate to fixpoint.
    statements: list[tuple[tuple[str, ...], ast.AST]] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not func:
                return  # nested defs get their own walk
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Assign(self, node: ast.Assign) -> None:
            names = tuple(n for t in node.targets for n in _target_names(t))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.value is not None:
                names = tuple(_target_names(node.target))
                if names:
                    statements.append((names, node.value))
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_For(self, node: ast.For) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.iter))
            self.generic_visit(node)

        def visit_comprehension(self, node: ast.comprehension) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.iter))
            self.generic_visit(node)

        def visit_withitem(self, node: ast.withitem) -> None:
            if node.optional_vars is not None:
                names = tuple(_target_names(node.optional_vars))
                if names:
                    statements.append((names, node.context_expr))
            self.generic_visit(node)

    _Collector().visit(func)

    # Parameters named after secrets seed the set directly.
    tainted: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arg_nodes = list(func.args.posonlyargs) + list(func.args.args)
        arg_nodes += list(func.args.kwonlyargs)
        if func.args.vararg:
            arg_nodes.append(func.args.vararg)
        if func.args.kwarg:
            arg_nodes.append(func.args.kwarg)
        for arg in arg_nodes:
            if is_secret_identifier(arg.arg, secret_names):
                tainted.add(arg.arg)

    changed = True
    while changed:
        changed = False
        frozen = frozenset(tainted)
        for names, value in statements:
            if expr_is_tainted(value, frozen, secret_names):
                for name in names:
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return frozenset(tainted)


# --------------------------------------------------------------------------
# interprocedural fact lattice (engine v2)
# --------------------------------------------------------------------------


def _secret_returners(project, config) -> frozenset[str]:
    """Fixpoint set of function idents whose return value is secret-derived.

    Seeded by functions whose return expression locally mentions a
    secret identifier; closed under "returns the result of a secret
    returner" so ``def outer(k): return secret_part(k)`` taints too.
    """
    returners: set[str] = {
        ident
        for ident, info in project.functions.items()
        if info.returns_secret
    }
    changed = True
    while changed:
        changed = False
        for ident, info in project.functions.items():
            if ident in returners or not info.return_calls:
                continue
            for callee_text in info.return_calls:
                resolved = project.resolve(info.module, info.qualname, callee_text)
                if any(r in returners for r in resolved):
                    returners.add(ident)
                    changed = True
                    break
    return frozenset(returners)


def propagate_facts(project, config) -> None:
    """Populate ``project.facts`` and ``project.secret_returners``.

    ``project.facts`` maps function ident → {fact: provenance}, where
    provenance is a human-readable chain (``os.fsync at journal.py:84``
    or ``via _write_ready(): …``) used verbatim in rule messages.

    Masking encodes the sanctioned seams:

    * ``blocking`` does not cross a call site wrapped in
      ``asyncio.to_thread``/``run_in_executor`` — that is the approved
      way to do blocking work from a coroutine;
    * ``wallclock`` is never seeded inside ``config.clock_seam_modules``
      (the injected-Clock implementation has to read the clock);
    * ``ambient-random`` is never seeded inside
      ``config.randomness_allowed`` (the RandomSource funnel).
    """
    facts: dict[str, dict[str, str]] = {}
    for ident, info in project.functions.items():
        local: dict[str, str] = {}
        clock_sanctioned = info.module in config.clock_seam_modules
        random_sanctioned = info.module in config.randomness_allowed
        for op in info.ops:
            where = f"{op.detail} at {info.module}:{op.lineno}"
            if op.kind == "blocking" and not op.wrapped:
                local.setdefault(FACT_BLOCKING, where)
            elif op.kind == "wallclock" and not clock_sanctioned:
                local.setdefault(FACT_WALLCLOCK, where)
            elif op.kind == "ambient-random" and not random_sanctioned:
                local.setdefault(FACT_AMBIENT_RANDOM, where)
        facts[ident] = local

    changed = True
    while changed:
        changed = False
        for ident, info in project.functions.items():
            mine = facts[ident]
            for call in info.calls:
                for callee in project.resolve(
                    info.module, info.qualname, call.callee
                ):
                    for fact, provenance in facts.get(callee, {}).items():
                        if fact == FACT_BLOCKING and call.wrapped:
                            continue  # to_thread launders blocking, by design
                        if fact not in mine:
                            chain = f"via {call.callee}() → {provenance}"
                            # Cap provenance depth so messages stay readable.
                            if chain.count("→") > 4:
                                chain = f"via {call.callee}() → …"
                            mine[fact] = chain
                            changed = True
    project.facts = facts
    project.secret_returners = _secret_returners(project, config)


def interprocedural_seeds(
    func: ast.AST, project, module: str, context: str
) -> frozenset[str]:
    """Local names bound from calls that resolve to secret returners.

    This is the cross-function half of the taint analysis: feed the
    result into :func:`tainted_names`-style walks (the taint rules union
    it with the intra-function set) so ``material = secret_part(key)``
    taints ``material`` even though no secret identifier appears on the
    line.
    """
    if project is None or not project.secret_returners:
        return frozenset()
    seeds: set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) and node is not func:
            continue
        value = None
        targets: list[ast.AST] = []
        if isinstance(node, ast.Assign):
            value, targets = node.value, list(node.targets)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            value, targets = node.value, [node.target]
        elif isinstance(node, ast.NamedExpr):
            value, targets = node.value, [node.target]
        if value is None or not isinstance(value, ast.Call):
            continue
        callee_text = _call_text(value.func)
        if not callee_text:
            continue
        resolved = project.resolve(module, context, callee_text)
        if any(r in project.secret_returners for r in resolved):
            for target in targets:
                seeds.update(_target_names(target))
    return frozenset(seeds)


def _call_text(expr: ast.AST) -> str:
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return ""
