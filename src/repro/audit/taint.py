"""Lightweight intra-function taint propagation.

The taint walk answers one question for the CRY002/SEC001/SEC002 rules:
*which local names (may) hold secret-derived values?*  It is deliberately
small — function-scoped, flow-insensitive, run to a fixpoint — because
the codebase keeps secret material behind a handful of well-known
identifiers (``sk``, ``lam``, ``mu``, the blinding factors) and we only
need to follow straight-line data flow from those seeds.

Seeding: a name is a taint *source* when it exactly matches an entry of
the secret-identifier registry, either as a bare name (``lam = ...``) or
as an attribute (``key.lam``, ``self._blinding``).  Matching is exact on
the identifier (after stripping leading underscores), never substring —
``alpha_bits`` is a public parameter, ``alpha`` is a blinding secret.

Propagation: assignments, augmented assignments, tuple unpacking, binary
and unary operations, calls whose arguments or receiver are tainted,
subscripts, comprehension iteration variables, and walrus targets all
carry taint from any tainted operand to the bound name(s).
"""

from __future__ import annotations

import ast

__all__ = ["is_secret_identifier", "tainted_names", "expr_is_tainted"]


def _canonical(identifier: str) -> str:
    return identifier.lstrip("_")


def is_secret_identifier(identifier: str, secret_names: frozenset[str]) -> bool:
    """Exact-match test against the secret registry (underscore-insensitive)."""
    return _canonical(identifier) in secret_names


def _seed_names(expr: ast.AST, secret_names: frozenset[str]) -> bool:
    """True when ``expr`` *mentions* a secret identifier anywhere inside."""
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and is_secret_identifier(node.id, secret_names):
            return True
        if isinstance(node, ast.Attribute) and is_secret_identifier(node.attr, secret_names):
            return True
    return False


def expr_is_tainted(
    expr: ast.AST, tainted: frozenset[str], secret_names: frozenset[str]
) -> bool:
    """True when ``expr`` reads a secret identifier or a tainted local."""
    if _seed_names(expr, secret_names):
        return True
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in tainted:
            return True
    return False


def _target_names(target: ast.AST):
    """Yield plain names bound by an assignment target (tuples recursed)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def tainted_names(func: ast.AST, secret_names: frozenset[str]) -> frozenset[str]:
    """Fixpoint set of local names carrying secret-derived values.

    ``func`` is a FunctionDef/AsyncFunctionDef (or any node whose body we
    should scan; nested function bodies are analyzed by their own pass and
    skipped here).
    """
    # Collect assignment-like statements once; iterate to fixpoint.
    statements: list[tuple[tuple[str, ...], ast.AST]] = []

    class _Collector(ast.NodeVisitor):
        def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
            if node is not func:
                return  # nested defs get their own walk
            self.generic_visit(node)

        visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

        def visit_Assign(self, node: ast.Assign) -> None:
            names = tuple(n for t in node.targets for n in _target_names(t))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
            if node.value is not None:
                names = tuple(_target_names(node.target))
                if names:
                    statements.append((names, node.value))
            self.generic_visit(node)

        def visit_AugAssign(self, node: ast.AugAssign) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.value))
            self.generic_visit(node)

        def visit_For(self, node: ast.For) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.iter))
            self.generic_visit(node)

        def visit_comprehension(self, node: ast.comprehension) -> None:
            names = tuple(_target_names(node.target))
            if names:
                statements.append((names, node.iter))
            self.generic_visit(node)

        def visit_withitem(self, node: ast.withitem) -> None:
            if node.optional_vars is not None:
                names = tuple(_target_names(node.optional_vars))
                if names:
                    statements.append((names, node.context_expr))
            self.generic_visit(node)

    _Collector().visit(func)

    # Parameters named after secrets seed the set directly.
    tainted: set[str] = set()
    if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
        arg_nodes = list(func.args.posonlyargs) + list(func.args.args)
        arg_nodes += list(func.args.kwonlyargs)
        if func.args.vararg:
            arg_nodes.append(func.args.vararg)
        if func.args.kwarg:
            arg_nodes.append(func.args.kwarg)
        for arg in arg_nodes:
            if is_secret_identifier(arg.arg, secret_names):
                tainted.add(arg.arg)

    changed = True
    while changed:
        changed = False
        frozen = frozenset(tainted)
        for names, value in statements:
            if expr_is_tainted(value, frozen, secret_names):
                for name in names:
                    if name not in tainted:
                        tainted.add(name)
                        changed = True
    return frozenset(tainted)
