"""Incremental audit cache keyed by content hash.

A full-repo audit parses ~200 files; most audits touch a handful.  The
cache stores, per file, the JSON-serialized
:class:`~repro.audit.callgraph.ModuleSummary` plus the unit-level
findings, keyed by a content hash that also covers the active
configuration and an engine version stamp.  On a warm run an unchanged
file contributes its summary to the call graph and replays its findings
without being read into an AST at all.

Unit-level findings are additionally keyed by a *taint digest* — a hash
of the global call-graph surface (function idents + secret returners).
Cross-function taint seeds can change when *another* file changes, so a
file's cached taint findings are only valid while that global surface
is stable.  Summary-kind rules are never cached: they run over the
in-memory summaries each time and are cheap by construction.

The on-disk format is plain JSON (the analyzer forbids pickle outside
``repro.netd`` — rule NET001 — and the analyzer should pass its own
audit).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.audit.findings import Finding
from repro.crypto.hashing import sha256

__all__ = ["AuditCache", "ENGINE_VERSION"]

#: Bump whenever summary extraction or rule semantics change: it
#: invalidates every cache entry at once.
ENGINE_VERSION = "2.0"

_CACHE_FORMAT = 1


class AuditCache:
    """JSON-backed per-file cache of summaries and unit findings."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.hits = 0
        self.misses = 0
        self._entries: dict[str, dict] = {}
        if self.path.exists():
            try:
                data = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                data = {}
            if data.get("format") == _CACHE_FORMAT:
                self._entries = data.get("files", {})

    # -- keys --------------------------------------------------------------

    @staticmethod
    def config_digest(config) -> str:
        """Hash of everything that can change rule output for a file.

        Frozenset fields are sorted before hashing: their repr order is
        PYTHONHASHSEED-dependent, which would silently invalidate the
        cache on every new process (the exact bug class DET003 polices).
        """
        import dataclasses

        parts = [ENGINE_VERSION]
        for f in dataclasses.fields(config):
            value = getattr(config, f.name)
            if isinstance(value, (frozenset, set)):
                rendered = ",".join(sorted(value))
            elif isinstance(value, tuple):
                rendered = ",".join(value)
            else:
                rendered = repr(value)
            parts.append(f"{f.name}={rendered}")
        return sha256("|".join(parts).encode("utf-8")).hex()[:16]

    @staticmethod
    def content_key(source: str, config_digest: str) -> str:
        return sha256(
            f"{config_digest}|{source}".encode("utf-8")
        ).hex()[:24]

    @staticmethod
    def taint_digest(project) -> str:
        """Hash of the cross-file inputs to unit-level taint rules."""
        basis = "|".join(
            (
                ",".join(sorted(project.functions)),
                ",".join(sorted(project.secret_returners)),
            )
        )
        return sha256(basis.encode("utf-8")).hex()[:16]

    # -- lookups -----------------------------------------------------------

    def get_summary(self, path: str, key: str):
        from repro.audit.callgraph import ModuleSummary

        entry = self._entries.get(path)
        if entry is None or entry.get("key") != key:
            self.misses += 1
            return None
        self.hits += 1
        return ModuleSummary.from_json_dict(entry["summary"])

    def get_unit_findings(
        self, path: str, key: str, taint_digest: str
    ) -> list[Finding] | None:
        entry = self._entries.get(path)
        if (
            entry is None
            or entry.get("key") != key
            or entry.get("taint_digest") != taint_digest
        ):
            return None
        return [Finding(**f) for f in entry["findings"]]

    def put(
        self,
        path: str,
        key: str,
        *,
        summary,
        findings: list[Finding],
        taint_digest: str,
    ) -> None:
        self._entries[path] = {
            "key": key,
            "taint_digest": taint_digest,
            "summary": summary.to_json_dict(),
            "findings": [
                {
                    "path": f.path,
                    "line": f.line,
                    "col": f.col,
                    "rule": f.rule,
                    "message": f.message,
                    "module": f.module,
                    "context": f.context,
                    "snippet": f.snippet,
                }
                for f in findings
            ],
        }

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        payload = {"format": _CACHE_FORMAT, "files": self._entries}
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        tmp.write_text(json.dumps(payload), encoding="utf-8")
        tmp.replace(self.path)
