"""SQLite :class:`StateStore` engine.

One file per shard-or-deployment, WAL-journaled, with every value
CRC-framed *inside* its BLOB column: SQLite guards page integrity, the
frame guards row integrity end-to-end (a byte flipped between the
serializer and the disk — or by an operator poking the file — fails the
CRC, not the protocol).  Schema is one table per durable concern,
mirroring :data:`repro.store.base.STORE_TABLES`:

=============  =================================================
pu_updates     latest ``PUUpdateMessage`` bytes per (shard, PU)
snapshots      newest epoch snapshot per shard (latest only, so
               the file is bounded by shard count)
directory      the singleton key-directory snapshot
checkpoints    one meta row per journal checkpoint scope
=============  =================================================

Connections allow cross-thread use (the netd worker serves requests
from handler threads); a single mutex serialises statements, matching
the journal writer's locking discipline.
"""

from __future__ import annotations

import os
import sqlite3
import threading
from contextlib import contextmanager
from typing import Iterator

from repro.errors import StoreError
from repro.store.base import StateStore, seal_blob, unseal_blob

__all__ = ["SqliteStateStore"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS pu_updates (
    shard_id TEXT NOT NULL,
    pu_id    TEXT NOT NULL,
    frame    BLOB NOT NULL,
    PRIMARY KEY (shard_id, pu_id)
);
CREATE TABLE IF NOT EXISTS snapshots (
    shard_id TEXT PRIMARY KEY,
    epoch    INTEGER NOT NULL,
    frame    BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS directory (
    id    INTEGER PRIMARY KEY CHECK (id = 0),
    frame BLOB NOT NULL
);
CREATE TABLE IF NOT EXISTS checkpoints (
    scope TEXT PRIMARY KEY,
    frame BLOB NOT NULL
);
"""


class SqliteStateStore(StateStore):
    """File-backed engine over the Python stdlib ``sqlite3`` module."""

    engine = "sqlite"

    def __init__(self, path) -> None:
        self._path = os.fspath(path)
        self._mutex = threading.Lock()
        self._closed = False
        try:
            # Autocommit mode: every statement is its own transaction
            # unless grouped by :meth:`transaction`'s explicit BEGIN.
            self._conn = sqlite3.connect(
                self._path, isolation_level=None, check_same_thread=False
            )
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            raise StoreError(f"cannot open sqlite store {self._path!r}: {exc}") from exc

    @property
    def path(self) -> str:
        return self._path

    def _execute(self, sql: str, params: tuple = ()):
        self._require_open(self._closed)
        try:
            return self._conn.execute(sql, params)
        except sqlite3.Error as exc:
            raise StoreError(f"sqlite store statement failed: {exc}") from exc

    # -- per-PU latest ciphertexts ------------------------------------------------

    def put_pu_update(self, shard_id: str, pu_id: str, message_bytes: bytes) -> None:
        with self._mutex:
            self._execute(
                "INSERT INTO pu_updates (shard_id, pu_id, frame) VALUES (?, ?, ?) "
                "ON CONFLICT (shard_id, pu_id) DO UPDATE SET frame = excluded.frame",
                (shard_id, pu_id, seal_blob(message_bytes)),
            )

    def delete_pu_update(self, shard_id: str, pu_id: str) -> bool:
        with self._mutex:
            cursor = self._execute(
                "DELETE FROM pu_updates WHERE shard_id = ? AND pu_id = ?",
                (shard_id, pu_id),
            )
            return cursor.rowcount > 0

    def pu_updates(
        self, shard_id: str | None = None
    ) -> tuple[tuple[str, str, bytes], ...]:
        with self._mutex:
            if shard_id is None:
                cursor = self._execute(
                    "SELECT shard_id, pu_id, frame FROM pu_updates "
                    "ORDER BY shard_id, pu_id"
                )
            else:
                cursor = self._execute(
                    "SELECT shard_id, pu_id, frame FROM pu_updates "
                    "WHERE shard_id = ? ORDER BY pu_id",
                    (shard_id,),
                )
            return tuple(
                (row[0], row[1], unseal_blob(bytes(row[2]), f"pu_updates[{row[0]}/{row[1]}]"))
                for row in cursor.fetchall()
            )

    # -- per-shard epoch snapshots ------------------------------------------------

    def put_snapshot(self, shard_id: str, epoch: int, blob: bytes) -> bool:
        with self._mutex:
            row = self._execute(
                "SELECT epoch FROM snapshots WHERE shard_id = ?", (shard_id,)
            ).fetchone()
            if row is not None and row[0] > epoch:
                return False
            self._execute(
                "INSERT INTO snapshots (shard_id, epoch, frame) VALUES (?, ?, ?) "
                "ON CONFLICT (shard_id) DO UPDATE SET "
                "epoch = excluded.epoch, frame = excluded.frame",
                (shard_id, epoch, seal_blob(blob)),
            )
            return True

    def latest_snapshot(self, shard_id: str) -> tuple[int, bytes] | None:
        with self._mutex:
            row = self._execute(
                "SELECT epoch, frame FROM snapshots WHERE shard_id = ?", (shard_id,)
            ).fetchone()
            if row is None:
                return None
            return row[0], unseal_blob(bytes(row[1]), f"snapshots[{shard_id}]")

    def snapshot_shards(self) -> tuple[str, ...]:
        with self._mutex:
            cursor = self._execute(
                "SELECT shard_id FROM snapshots ORDER BY shard_id"
            )
            return tuple(row[0] for row in cursor.fetchall())

    # -- key directory ------------------------------------------------------------

    def put_directory(self, blob: bytes) -> None:
        with self._mutex:
            self._execute(
                "INSERT INTO directory (id, frame) VALUES (0, ?) "
                "ON CONFLICT (id) DO UPDATE SET frame = excluded.frame",
                (seal_blob(blob),),
            )

    def get_directory(self) -> bytes | None:
        with self._mutex:
            row = self._execute("SELECT frame FROM directory WHERE id = 0").fetchone()
            if row is None:
                return None
            return unseal_blob(bytes(row[0]), "directory")

    # -- checkpoint metadata ------------------------------------------------------

    def put_checkpoint(self, scope: str, blob: bytes) -> None:
        with self._mutex:
            self._execute(
                "INSERT INTO checkpoints (scope, frame) VALUES (?, ?) "
                "ON CONFLICT (scope) DO UPDATE SET frame = excluded.frame",
                (scope, seal_blob(blob)),
            )

    def get_checkpoint(self, scope: str) -> bytes | None:
        with self._mutex:
            row = self._execute(
                "SELECT frame FROM checkpoints WHERE scope = ?", (scope,)
            ).fetchone()
            if row is None:
                return None
            return unseal_blob(bytes(row[0]), f"checkpoints[{scope}]")

    # -- operational surface ------------------------------------------------------

    def row_counts(self) -> dict[str, int]:
        with self._mutex:
            counts = {}
            for table in ("pu_updates", "snapshots", "directory", "checkpoints"):
                row = self._execute(f"SELECT COUNT(*) FROM {table}").fetchone()
                counts[table] = row[0]
            return counts

    def flush(self) -> None:
        """Durability point: fsync the WAL and fold it into the main file."""
        with self._mutex:
            self._execute("PRAGMA wal_checkpoint(TRUNCATE)")

    def close(self) -> None:
        with self._mutex:
            if self._closed:
                return
            self._closed = True
            try:
                self._conn.execute("PRAGMA wal_checkpoint(TRUNCATE)")
            except sqlite3.Error:
                pass
            self._conn.close()

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """Group writes into one atomic SQLite transaction."""
        with self._mutex:
            self._execute("BEGIN IMMEDIATE")
        try:
            yield
        except BaseException:
            with self._mutex:
                try:
                    self._conn.execute("ROLLBACK")
                except sqlite3.Error:
                    pass
            raise
        with self._mutex:
            self._execute("COMMIT")
