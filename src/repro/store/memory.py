"""In-memory :class:`StateStore` engine.

The test/baseline engine: same sealing, same visibility rules, same
transaction semantics as SQLite, just dict-backed.  Values are still
CRC-framed on the way in and verified on the way out, so a test that
corrupts a stored frame exercises the identical failure path a damaged
SQLite file would.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Iterator

from repro.store.base import StateStore, seal_blob, unseal_blob

__all__ = ["MemoryStateStore"]


class MemoryStateStore(StateStore):
    """Dict-backed engine; ``transaction`` restores state on error."""

    engine = "memory"

    def __init__(self) -> None:
        self._pu: dict[tuple[str, str], bytes] = {}
        self._snapshots: dict[str, tuple[int, bytes]] = {}
        self._directory: bytes | None = None
        self._checkpoints: dict[str, bytes] = {}
        self._closed = False

    # -- per-PU latest ciphertexts ------------------------------------------------

    def put_pu_update(self, shard_id: str, pu_id: str, message_bytes: bytes) -> None:
        self._require_open(self._closed)
        self._pu[(shard_id, pu_id)] = seal_blob(message_bytes)

    def delete_pu_update(self, shard_id: str, pu_id: str) -> bool:
        self._require_open(self._closed)
        return self._pu.pop((shard_id, pu_id), None) is not None

    def pu_updates(
        self, shard_id: str | None = None
    ) -> tuple[tuple[str, str, bytes], ...]:
        self._require_open(self._closed)
        rows = []
        for (row_shard, pu_id), frame in sorted(self._pu.items()):
            if shard_id is not None and row_shard != shard_id:
                continue
            blob = unseal_blob(frame, f"pu_updates[{row_shard}/{pu_id}]")
            rows.append((row_shard, pu_id, blob))
        return tuple(rows)

    # -- per-shard epoch snapshots ------------------------------------------------

    def put_snapshot(self, shard_id: str, epoch: int, blob: bytes) -> bool:
        self._require_open(self._closed)
        current = self._snapshots.get(shard_id)
        if current is not None and current[0] > epoch:
            return False
        self._snapshots[shard_id] = (epoch, seal_blob(blob))
        return True

    def latest_snapshot(self, shard_id: str) -> tuple[int, bytes] | None:
        self._require_open(self._closed)
        entry = self._snapshots.get(shard_id)
        if entry is None:
            return None
        epoch, frame = entry
        return epoch, unseal_blob(frame, f"snapshots[{shard_id}]")

    def snapshot_shards(self) -> tuple[str, ...]:
        self._require_open(self._closed)
        return tuple(sorted(self._snapshots))

    # -- key directory ------------------------------------------------------------

    def put_directory(self, blob: bytes) -> None:
        self._require_open(self._closed)
        self._directory = seal_blob(blob)

    def get_directory(self) -> bytes | None:
        self._require_open(self._closed)
        if self._directory is None:
            return None
        return unseal_blob(self._directory, "directory")

    # -- checkpoint metadata ------------------------------------------------------

    def put_checkpoint(self, scope: str, blob: bytes) -> None:
        self._require_open(self._closed)
        self._checkpoints[scope] = seal_blob(blob)

    def get_checkpoint(self, scope: str) -> bytes | None:
        self._require_open(self._closed)
        frame = self._checkpoints.get(scope)
        if frame is None:
            return None
        return unseal_blob(frame, f"checkpoints[{scope}]")

    # -- operational surface ------------------------------------------------------

    def row_counts(self) -> dict[str, int]:
        self._require_open(self._closed)
        return {
            "pu_updates": len(self._pu),
            "snapshots": len(self._snapshots),
            "directory": 0 if self._directory is None else 1,
            "checkpoints": len(self._checkpoints),
        }

    def flush(self) -> None:
        self._require_open(self._closed)

    def close(self) -> None:
        self._closed = True

    @contextmanager
    def transaction(self) -> Iterator[None]:
        self._require_open(self._closed)
        backup = (
            dict(self._pu),
            dict(self._snapshots),
            self._directory,
            dict(self._checkpoints),
        )
        try:
            yield
        except BaseException:
            self._pu, self._snapshots, self._directory, self._checkpoints = (
                dict(backup[0]),
                dict(backup[1]),
                backup[2],
                dict(backup[3]),
            )
            raise
