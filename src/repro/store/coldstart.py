"""Cold-start: rebuild a shard from the store plus the journal tail.

The restart contract (``docs/storage.md``, recovery matrix): a shard's
durable state is its latest epoch snapshot (written at every epoch
commit) plus whatever PU updates the journal absorbed *after* that
snapshot's checkpoint.  Restoring replays both through the same audited
code paths a live shard uses — ``restore_shard_state`` feeds
``handle_pu_update``, and tail replay is idempotent because PU state is
latest-per-PU (re-applying an update the snapshot already folded in is
``⊖ old ⊕ new`` with ``old == new``).
"""

from __future__ import annotations

from repro.pisa.messages import PUUpdateMessage
from repro.pisa.storage import restore_shard_state
from repro.resilience.journal import JournalReadResult
from repro.store.base import StateStore

__all__ = ["restore_shard_from_store", "tail_epoch_commits"]


def tail_epoch_commits(tail: JournalReadResult, shard_id: str) -> tuple[int, ...]:
    """Epoch ids the journal tail committed for ``shard_id``, in order."""
    epochs = []
    for record in tail.of_kind("epoch-commit"):
        recorded_shard, _, epoch = record.body.decode("utf-8").rpartition(":")
        if recorded_shard == shard_id:
            epochs.append(int(epoch))
    return tuple(epochs)


def restore_shard_from_store(
    shard, store: StateStore, tail: JournalReadResult | None = None
) -> int:
    """Rebuild a freshly constructed, empty shard from durable state.

    Restores the latest snapshot when one exists (which also replaces
    the shard's block ownership with the snapshot's); otherwise replays
    the store's raw PU rows for this shard, in which case the caller
    must have assigned the shard's blocks already.  Then replays the
    journal tail: PU updates for owned blocks and any epoch commits the
    store had not absorbed.  Returns the number of tail records applied.
    """
    latest = store.latest_snapshot(shard.shard_id)
    group_key = shard.group_public_key
    if latest is not None:
        restore_shard_state(shard, latest[1])
    else:
        for _, _, raw in store.pu_updates(shard.shard_id):
            shard.handle_pu_update(PUUpdateMessage.from_bytes(raw, group_key))
    applied = 0
    if tail is not None:
        for record in tail.of_kind("pu-update"):
            message = PUUpdateMessage.from_bytes(record.body, group_key)
            if shard.owns(message.block_index):
                shard.handle_pu_update(message)
                applied += 1
        for epoch in tail_epoch_commits(tail, shard.shard_id):
            if epoch > shard.last_committed_epoch:
                shard.commit_epoch(epoch)
                applied += 1
    return applied
