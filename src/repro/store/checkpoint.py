"""Journal checkpointing: compact PISA-JOURNAL-v1 into the store.

Without compaction the write-ahead journal grows with every draw, clock
read, and PU update — a "millions of users" deployment would write an
unbounded file to replay a bounded state.  The
:class:`Checkpointer` folds everything the journal proved durable into
the :class:`~repro.store.base.StateStore` (which already holds the
snapshots and PU rows the runtime wrote along the way) and rewrites the
journal down to a single ``checkpoint`` marker record, so journal size
is bounded by the inter-checkpoint interval, not the run length.

Crash-safety is a fixed write order with one atomic pivot::

    barrier ─→ store commit (meta, transactional) ─→ write tail tmp
            ─→ fsync tmp ─→ os.replace(tmp, journal) ─→ swap writer

The store commit *precedes* the rename, so recovery
(:func:`recover`, via
:func:`repro.resilience.recovery.split_checkpoint_tail`) can classify
every crash point from the (meta, marker) pair alone; an impossible
pair is a torn checkpoint and raises the journal's own corruption
taxonomy (:class:`~repro.errors.TornCheckpointError`).  The
``failpoint`` hook exists solely so tests can crash the protocol at
each named step and prove that.

Checkpoints must run at a quiescent point (between epochs): the caller
guarantees no appends race the compaction, exactly as it already
guarantees for :meth:`JournalWriter.swap_device`.
"""

from __future__ import annotations

import os
from contextlib import nullcontext
from dataclasses import dataclass

from repro.crypto.serialization import decode_int, encode_bytes, encode_int
from repro.errors import CheckpointError, StoreCorruptError
from repro.pisa.storage import frame_payload
from repro.resilience.journal import (
    JOURNAL_HEADER,
    JournalReadResult,
    JournalWriter,
)
from repro.resilience.recovery import load_journal, split_checkpoint_tail
from repro.store.base import StateStore

__all__ = [
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCOPE",
    "CheckpointMeta",
    "CheckpointStats",
    "Checkpointer",
    "RecoveredState",
    "recover",
]

#: Journal record kind of the compaction marker.
CHECKPOINT_KIND = "checkpoint"
#: Default store scope for a deployment's single journal.
CHECKPOINT_SCOPE = "journal"

_META_MAGIC = b"PISA-CKPT-META-v1"


@dataclass(frozen=True)
class CheckpointMeta:
    """The store's durable record of the last committed checkpoint."""

    #: Monotonic checkpoint counter, starting at 1.
    checkpoint_id: int
    #: Journal records (of the file the checkpoint read) folded into the
    #: store — recovery skips this prefix when the rename never landed.
    records_consumed: int

    def to_bytes(self) -> bytes:
        return (
            _META_MAGIC
            + encode_int(self.checkpoint_id)
            + encode_int(self.records_consumed)
        )

    @classmethod
    def from_bytes(cls, blob: bytes) -> "CheckpointMeta":
        if not blob.startswith(_META_MAGIC):
            raise StoreCorruptError("not a v1 checkpoint meta blob")
        checkpoint_id, offset = decode_int(blob, len(_META_MAGIC))
        records_consumed, end = decode_int(blob, offset)
        if end != len(blob):
            raise StoreCorruptError("trailing bytes in checkpoint meta")
        return cls(checkpoint_id=checkpoint_id, records_consumed=records_consumed)

    def marker_body(self) -> bytes:
        """Journal-side encoding (no magic — the record kind names it)."""
        return encode_int(self.checkpoint_id) + encode_int(self.records_consumed)


@dataclass(frozen=True)
class CheckpointStats:
    """What one checkpoint accomplished, for logs and the bench."""

    checkpoint_id: int
    records_compacted: int
    journal_bytes_before: int
    journal_bytes_after: int


@dataclass(frozen=True)
class RecoveredState:
    """Everything a cold start learns from the store + journal pair."""

    meta: CheckpointMeta | None
    journal: JournalReadResult
    #: Records not yet folded into the store — replay starts here.
    tail: JournalReadResult


class Checkpointer:
    """Compacts a journal into a store; owns the checkpoint metrics.

    Telemetry (when a registry is attached) follows the broker
    convention — every family is materialised at zero up front:
    ``checkpoints_total``, ``journal_bytes_on_disk``,
    ``journal_records_since_checkpoint``, ``checkpoint_duration_s``,
    and the store's ``store_rows{table=...}`` gauges.
    """

    def __init__(
        self,
        store: StateStore,
        scope: str = CHECKPOINT_SCOPE,
        metrics=None,
        failpoint=None,
    ) -> None:
        self.store = store
        self.scope = scope
        self._metrics = metrics
        #: Test-only crash seam: called with the step name at the start
        #: of each protocol step; raising models a kill at that point.
        self._failpoint = failpoint if failpoint is not None else (lambda step: None)
        self.checkpoints_taken = 0
        self._records_at_checkpoint = 0
        if metrics is not None:
            metrics.counter("checkpoints_total")
            metrics.gauge("journal_bytes_on_disk")
            metrics.gauge("journal_records_since_checkpoint")
            metrics.histogram("checkpoint_duration_s")
            store.attach_metrics(metrics)

    def _load_meta(self) -> CheckpointMeta | None:
        blob = self.store.get_checkpoint(self.scope)
        if blob is None:
            return None
        return CheckpointMeta.from_bytes(blob)

    def checkpoint(self, writer: JournalWriter) -> CheckpointStats:
        """Compact ``writer``'s journal; the store must already hold the
        snapshots/PU rows the run wrote (the runtime persists them as it
        goes — the checkpoint only makes the *journal* forget them)."""
        path = writer.path
        if path is None:
            raise CheckpointError("checkpointing needs a path-backed journal")
        timer = (
            self._metrics.timer("checkpoint_duration_s")
            if self._metrics is not None
            else nullcontext()
        )
        with timer:
            self._failpoint("barrier")
            writer.barrier()
            bytes_before = os.path.getsize(path)
            result = load_journal(path)
            previous = self._load_meta()
            meta = CheckpointMeta(
                checkpoint_id=(previous.checkpoint_id + 1) if previous else 1,
                records_consumed=len(result.records),
            )
            # Step 1 — write-snapshot: commit the meta (the pivot the
            # recovery logic keys on) transactionally, then sync.
            self._failpoint("write")
            try:
                with self.store.transaction():
                    self.store.put_checkpoint(self.scope, meta.to_bytes())
                self.store.flush()
            except OSError as exc:
                raise CheckpointError(f"store commit failed: {exc}") from exc
            # Steps 2-3 — fsync + atomic-rename: materialise the
            # compacted journal beside the live one, then pivot.
            tmp = path + ".ckpt.tmp"
            marker_payload = encode_bytes(CHECKPOINT_KIND.encode("utf-8"))
            marker_payload += encode_bytes(meta.marker_body())
            try:
                with open(tmp, "wb") as fh:
                    fh.write(JOURNAL_HEADER + frame_payload(marker_payload))
                    self._failpoint("fsync")
                    fh.flush()
                    os.fsync(fh.fileno())
                self._failpoint("rename")
                os.replace(tmp, path)
            except OSError as exc:
                raise CheckpointError(f"journal compaction failed: {exc}") from exc
            # Step 4 — truncate: the rename already shrank the file;
            # point the writer's append handle at the new inode.
            self._failpoint("truncate")
            writer.swap_device(path)
            writer.barrier()
            bytes_after = os.path.getsize(path)
        self.checkpoints_taken += 1
        self._records_at_checkpoint = writer.records_written
        stats = CheckpointStats(
            checkpoint_id=meta.checkpoint_id,
            records_compacted=len(result.records),
            journal_bytes_before=bytes_before,
            journal_bytes_after=bytes_after,
        )
        if self._metrics is not None:
            self._metrics.counter("checkpoints_total").inc()
            self.observe(writer)
        return stats

    def observe(self, writer: JournalWriter) -> None:
        """Refresh the journal/store gauges from current on-disk state."""
        if self._metrics is None:
            return
        size = 0
        if writer.path is not None and os.path.exists(writer.path):
            size = os.path.getsize(writer.path)
        self._metrics.gauge("journal_bytes_on_disk").set(size)
        self._metrics.gauge("journal_records_since_checkpoint").set(
            writer.records_written - self._records_at_checkpoint
        )
        self.store.refresh_metrics()


def recover(
    store: StateStore, journal_path, scope: str = CHECKPOINT_SCOPE
) -> RecoveredState:
    """Read back a (store, journal) pair after a crash or restart.

    Removes any stale ``.ckpt.tmp`` (a compacted journal that never got
    renamed was never activated), loads the journal through
    :mod:`repro.resilience.recovery`, and splits off the tail the store
    has not absorbed.  Torn-checkpoint states raise
    :class:`~repro.errors.TornCheckpointError`.
    """
    journal_path = os.fspath(journal_path)
    stale_tmp = journal_path + ".ckpt.tmp"
    if os.path.exists(stale_tmp):
        os.remove(stale_tmp)
    if os.path.exists(journal_path):
        result = load_journal(journal_path)
    else:
        result = JournalReadResult(
            records=(), torn=False, valid_bytes=len(JOURNAL_HEADER)
        )
    blob = store.get_checkpoint(scope)
    meta = CheckpointMeta.from_bytes(blob) if blob is not None else None
    tail = split_checkpoint_tail(
        result,
        meta.checkpoint_id if meta is not None else None,
        meta.records_consumed if meta is not None else 0,
    )
    return RecoveredState(meta=meta, journal=result, tail=tail)
