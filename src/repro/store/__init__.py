"""repro.store — durable block/ciphertext state behind ``StateStore``.

The subsystem that makes the SDC restartable: SQLite-backed (pluggable;
in-memory for tests) tables for per-PU latest ciphertexts, per-shard
epoch snapshots, and the key directory, plus journal checkpointing that
bounds PISA-JOURNAL-v1 on disk.  See ``docs/storage.md``.
"""

from repro.store.base import STORE_TABLES, StateStore, seal_blob, unseal_blob
from repro.store.checkpoint import (
    CHECKPOINT_KIND,
    CHECKPOINT_SCOPE,
    Checkpointer,
    CheckpointMeta,
    CheckpointStats,
    RecoveredState,
    recover,
)
from repro.store.coldstart import restore_shard_from_store, tail_epoch_commits
from repro.store.memory import MemoryStateStore
from repro.store.sqlite import SqliteStateStore

__all__ = [
    "STORE_TABLES",
    "StateStore",
    "seal_blob",
    "unseal_blob",
    "MemoryStateStore",
    "SqliteStateStore",
    "CHECKPOINT_KIND",
    "CHECKPOINT_SCOPE",
    "CheckpointMeta",
    "CheckpointStats",
    "Checkpointer",
    "RecoveredState",
    "recover",
    "restore_shard_from_store",
    "tail_epoch_commits",
]
