"""`StateStore` — the interface every durable state engine implements.

The paper's SDC is restartable only if three things survive a crash:
the latest encrypted :class:`~repro.pisa.messages.PUUpdateMessage` per
PU (the budget matrix is derived from them), the per-shard epoch
snapshots (so a cold shard resumes from its last committed epoch), and
the public key directory.  A :class:`StateStore` holds exactly those
three tables plus one row of checkpoint metadata per journal scope —
nothing else, because everything else (pending rounds, blinding
factors) is deliberately *not* persisted (see ``repro.pisa.storage``).

Every value crosses the engine boundary **sealed**: wrapped in the same
CRC frame (:func:`repro.pisa.storage.frame_payload`) that protects the
journal and the wire, so one decoder audits disk rows, journal records,
and messages alike, and a bit-flipped row surfaces as a typed
:class:`~repro.errors.StoreCorruptError` instead of garbage ciphertext.

Engines are pluggable: :class:`~repro.store.memory.MemoryStateStore`
for tests and baselines, :class:`~repro.store.sqlite.SqliteStateStore`
for real deployments.  Both are ordinary context managers.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from contextlib import contextmanager
from typing import Iterator

from repro.errors import IntegrityError, StoreCorruptError, StoreError
from repro.pisa.storage import frame_payload, unframe_payload

__all__ = ["StateStore", "seal_blob", "unseal_blob", "STORE_TABLES"]

#: The fixed table set; ``row_counts`` and the ``store_rows`` gauge
#: family enumerate exactly these names, in this order.
STORE_TABLES = ("pu_updates", "snapshots", "directory", "checkpoints")


def seal_blob(blob: bytes) -> bytes:
    """CRC-frame a value for storage (shared by every engine)."""
    return frame_payload(blob)


def unseal_blob(frame: bytes, context: str) -> bytes:
    """Unframe a stored value; damage raises a typed store error."""
    try:
        blob, offset = unframe_payload(frame, 0)
    except IntegrityError as exc:
        raise StoreCorruptError(f"corrupt stored frame ({context}): {exc}") from exc
    if offset != len(frame):
        raise StoreCorruptError(f"trailing bytes after stored frame ({context})")
    return blob


class StateStore(ABC):
    """Durable (or durable-shaped) home for SDC restart state.

    Values are opaque ``bytes`` blobs produced by the ``pisa.storage``
    serializers; the store seals/unseals them but never interprets
    them.  Writes are visible to subsequent reads immediately;
    :meth:`flush` is the durability point (a no-op for the in-memory
    engine, a committed transaction + fsync for SQLite).
    """

    #: Short engine name for logs, metrics, and ``repro store`` output.
    engine = "abstract"

    # -- per-PU latest ciphertexts ------------------------------------------------

    @abstractmethod
    def put_pu_update(self, shard_id: str, pu_id: str, message_bytes: bytes) -> None:
        """Upsert the latest update message for ``(shard_id, pu_id)``."""

    @abstractmethod
    def delete_pu_update(self, shard_id: str, pu_id: str) -> bool:
        """Drop one PU row; returns ``True`` when a row existed."""

    @abstractmethod
    def pu_updates(
        self, shard_id: str | None = None
    ) -> tuple[tuple[str, str, bytes], ...]:
        """``(shard_id, pu_id, message_bytes)`` rows, sorted for determinism."""

    # -- per-shard epoch snapshots ------------------------------------------------

    @abstractmethod
    def put_snapshot(self, shard_id: str, epoch: int, blob: bytes) -> bool:
        """Store a shard snapshot; only the latest epoch per shard is
        kept (an older epoch is refused and returns ``False``), so disk
        stays bounded by shard count, not run length."""

    @abstractmethod
    def latest_snapshot(self, shard_id: str) -> tuple[int, bytes] | None:
        """``(epoch, blob)`` for the newest stored snapshot, if any."""

    @abstractmethod
    def snapshot_shards(self) -> tuple[str, ...]:
        """Shard ids with a stored snapshot, sorted."""

    # -- key directory ------------------------------------------------------------

    @abstractmethod
    def put_directory(self, blob: bytes) -> None:
        """Replace the (singleton) key-directory snapshot."""

    @abstractmethod
    def get_directory(self) -> bytes | None:
        """The stored key-directory snapshot, if any."""

    # -- checkpoint metadata ------------------------------------------------------

    @abstractmethod
    def put_checkpoint(self, scope: str, blob: bytes) -> None:
        """Upsert the checkpoint-meta blob for one journal scope."""

    @abstractmethod
    def get_checkpoint(self, scope: str) -> bytes | None:
        """The checkpoint-meta blob for ``scope``, if any."""

    # -- operational surface ------------------------------------------------------

    @abstractmethod
    def row_counts(self) -> dict[str, int]:
        """Row count per table in :data:`STORE_TABLES`."""

    @abstractmethod
    def flush(self) -> None:
        """Make everything written so far durable (commit + sync)."""

    @abstractmethod
    def close(self) -> None:
        """Release the engine; further use raises :class:`StoreError`."""

    @contextmanager
    def transaction(self) -> Iterator[None]:
        """All-or-nothing write group (the checkpoint commit uses one).

        The base implementation simply flushes on success; engines with
        real transactions (SQLite) override it with BEGIN/COMMIT and a
        ROLLBACK on error.
        """
        yield
        self.flush()

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- telemetry ----------------------------------------------------------------

    def attach_metrics(self, metrics) -> None:
        """Expose ``store_rows{table=...}`` gauges on ``metrics``.

        Pre-registers every table's gauge immediately (the broker
        convention: families exist at zero before anything happens) and
        refreshes them on every later :meth:`refresh_metrics` call.
        """
        self._metrics = metrics
        self.refresh_metrics()

    def refresh_metrics(self) -> None:
        """Re-publish current row counts to the attached registry."""
        metrics = getattr(self, "_metrics", None)
        if metrics is None:
            return
        counts = self.row_counts()
        for table in STORE_TABLES:
            metrics.gauge("store_rows", table=table).set(counts.get(table, 0))

    def _require_open(self, closed: bool) -> None:
        if closed:
            raise StoreError(f"{self.engine} state store is closed")
