"""SU location-privacy regions.

§VI-A ("SU's location privacy vs time trade-off"): an SU may allow the
SDC to know a coarse region containing it — e.g. "the north half of the
map" — and then only submit encrypted entries for blocks inside that
region.  Request preparation and processing cost scale linearly with the
number of disclosed blocks, reaching the maximum at full privacy (the
whole service area).

:class:`PrivacyRegion` is an immutable set of block indices with named
constructors for the disclosure policies used in the paper and benches.

.. warning::
   A partial region also shrinks what the SDC can *test*: F entries for
   blocks outside the region are never submitted, so a PU just beyond a
   tight region is silently under-protected — a consequence §VI-A does
   not spell out.  Quantify the gap with
   :mod:`repro.geo.region_safety` before deploying small regions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import GridError
from repro.geo.grid import BlockGrid

__all__ = ["PrivacyRegion"]


@dataclass(frozen=True)
class PrivacyRegion:
    """A disclosed region: the set of blocks the SDC may associate with an SU.

    ``block_indices`` must contain the SU's true block; at "full privacy"
    it is every block of the grid.
    """

    grid: BlockGrid
    block_indices: frozenset[int]
    label: str = "custom"

    def __post_init__(self) -> None:
        if not self.block_indices:
            raise GridError("a privacy region cannot be empty")
        for index in self.block_indices:
            if not 0 <= index < self.grid.num_blocks:
                raise GridError(f"block {index} outside the grid")

    # -- constructors --------------------------------------------------------

    @classmethod
    def full(cls, grid: BlockGrid) -> "PrivacyRegion":
        """Complete location privacy: every block is plausible."""
        return cls(grid, frozenset(range(grid.num_blocks)), label="full")

    @classmethod
    def rows_slice(cls, grid: BlockGrid, first_row: int, last_row: int) -> "PrivacyRegion":
        """Blocks in grid rows ``[first_row, last_row]`` inclusive.

        The paper's example — "the SDC is allowed to know that this SU is
        located somewhere in the north" (a 100×300 sub-matrix of the
        100×600 request) — is ``rows_slice`` over half the rows.
        """
        if not (0 <= first_row <= last_row < grid.rows):
            raise GridError("row slice outside the grid")
        indices = frozenset(
            row * grid.cols + col
            for row in range(first_row, last_row + 1)
            for col in range(grid.cols)
        )
        return cls(grid, indices, label=f"rows[{first_row}:{last_row}]")

    @classmethod
    def fraction(cls, grid: BlockGrid, fraction: float) -> "PrivacyRegion":
        """The first ``fraction`` of blocks (row-major).  ``fraction ∈ (0, 1]``."""
        if not 0.0 < fraction <= 1.0:
            raise GridError("fraction must be in (0, 1]")
        count = max(1, round(grid.num_blocks * fraction))
        return cls(grid, frozenset(range(count)), label=f"fraction={fraction:g}")

    @classmethod
    def around(cls, grid: BlockGrid, center_index: int, radius_m: float) -> "PrivacyRegion":
        """All blocks within ``radius_m`` of a centre block."""
        return cls(
            grid,
            frozenset(grid.blocks_within(center_index, radius_m)),
            label=f"around({center_index}, {radius_m:g}m)",
        )

    # -- queries --------------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Number of disclosed blocks — the request matrix's B dimension."""
        return len(self.block_indices)

    @property
    def privacy_level(self) -> float:
        """Fraction of the full grid that remains plausible (1.0 = full)."""
        return self.num_blocks / self.grid.num_blocks

    def contains(self, block_index: int) -> bool:
        return block_index in self.block_indices

    def sorted_indices(self) -> list[int]:
        """Deterministic (ascending) block ordering for matrix layout."""
        return sorted(self.block_indices)

    def __contains__(self, block_index: int) -> bool:
        return self.contains(block_index)

    def __len__(self) -> int:
        return self.num_blocks
