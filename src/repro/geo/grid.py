"""Block-grid quantisation of the service area.

The SDC's service area is a ``rows × cols`` grid of square blocks; the
paper's flat block index ``b ∈ [0, B)`` is row-major.  The default block
size is 10 m × 10 m, "as pointed out in [36]" (§IV-A2).

The grid also memoises pairwise block-centre distances, which the SU
request preparation (eq. (5)) evaluates for every (channel, block) pair.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from repro.errors import GridError

__all__ = ["Block", "BlockGrid"]


@dataclass(frozen=True)
class Block:
    """A single grid block."""

    index: int
    row: int
    col: int
    center_x_m: float
    center_y_m: float


class BlockGrid:
    """A row-major grid of square blocks covering the service area.

    Parameters
    ----------
    rows, cols:
        Grid dimensions; ``B = rows * cols``.
    block_size_m:
        Side of each square block (paper: 10 m).
    origin_x_m, origin_y_m:
        Metric coordinates of the grid's lower-left corner.
    """

    def __init__(
        self,
        rows: int,
        cols: int,
        block_size_m: float = 10.0,
        origin_x_m: float = 0.0,
        origin_y_m: float = 0.0,
    ) -> None:
        if rows < 1 or cols < 1:
            raise GridError("grid dimensions must be positive")
        if block_size_m <= 0:
            raise GridError("block size must be positive")
        self.rows = rows
        self.cols = cols
        self.block_size_m = float(block_size_m)
        self.origin_x_m = float(origin_x_m)
        self.origin_y_m = float(origin_y_m)

    # -- basic queries ------------------------------------------------------

    @property
    def num_blocks(self) -> int:
        """Total block count ``B``."""
        return self.rows * self.cols

    @property
    def width_m(self) -> float:
        return self.cols * self.block_size_m

    @property
    def height_m(self) -> float:
        return self.rows * self.block_size_m

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_blocks:
            raise GridError(f"block index {index} outside [0, {self.num_blocks})")

    def block(self, index: int) -> Block:
        """Return the :class:`Block` for a flat row-major index."""
        self._check_index(index)
        row, col = divmod(index, self.cols)
        return Block(
            index=index,
            row=row,
            col=col,
            center_x_m=self.origin_x_m + (col + 0.5) * self.block_size_m,
            center_y_m=self.origin_y_m + (row + 0.5) * self.block_size_m,
        )

    def index_of(self, row: int, col: int) -> int:
        """Flat index for ``(row, col)`` coordinates."""
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GridError(f"({row}, {col}) outside a {self.rows}x{self.cols} grid")
        return row * self.cols + col

    def block_at(self, x_m: float, y_m: float) -> Block:
        """The block containing metric point ``(x, y)``."""
        col = math.floor((x_m - self.origin_x_m) / self.block_size_m)
        row = math.floor((y_m - self.origin_y_m) / self.block_size_m)
        if not (0 <= row < self.rows and 0 <= col < self.cols):
            raise GridError(f"point ({x_m}, {y_m}) outside the service area")
        return self.block(self.index_of(row, col))

    def blocks(self):
        """Iterate over all blocks in flat-index order."""
        for index in range(self.num_blocks):
            yield self.block(index)

    # -- distances ------------------------------------------------------------

    def distance_m(self, index_a: int, index_b: int) -> float:
        """Centre-to-centre distance between two blocks, in metres."""
        self._check_index(index_a)
        self._check_index(index_b)
        return self._distance_by_offset(
            abs(index_a // self.cols - index_b // self.cols),
            abs(index_a % self.cols - index_b % self.cols),
        )

    @lru_cache(maxsize=65536)
    def _distance_by_offset(self, d_row: int, d_col: int) -> float:
        return math.hypot(d_row, d_col) * self.block_size_m

    def blocks_within(self, center_index: int, radius_m: float) -> list[int]:
        """Flat indices of all blocks whose centre is within ``radius_m``.

        Used to restrict eq. (5)/(6) to PU blocks within the exclusion
        distance ``d^c`` of the SU.
        """
        self._check_index(center_index)
        if radius_m < 0:
            raise GridError("radius must be non-negative")
        c_row, c_col = divmod(center_index, self.cols)
        reach = int(radius_m / self.block_size_m) + 1
        result = []
        for row in range(max(0, c_row - reach), min(self.rows, c_row + reach + 1)):
            for col in range(max(0, c_col - reach), min(self.cols, c_col + reach + 1)):
                if (
                    self._distance_by_offset(abs(row - c_row), abs(col - c_col))
                    <= radius_m
                ):
                    result.append(row * self.cols + col)
        return result

    def __repr__(self) -> str:
        return (
            f"BlockGrid(rows={self.rows}, cols={self.cols}, "
            f"block_size_m={self.block_size_m})"
        )
