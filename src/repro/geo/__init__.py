"""Geography of the SDC service area.

§III-D: "we quantize the service area of the SDC server into B small
blocks" (normally 10 m × 10 m per [36]).  :class:`~repro.geo.grid.BlockGrid`
provides block indexing, centres, and pairwise distances;
:class:`~repro.geo.region.PrivacyRegion` models the SU location-privacy
trade-off of §VI-A, where an SU may reveal a coarse region to shrink the
encrypted request matrix.
"""

from repro.geo.grid import Block, BlockGrid
from repro.geo.region import PrivacyRegion
from repro.geo.region_safety import (
    UndertestReport,
    region_undertest_report,
    undertested_cells,
)

__all__ = [
    "Block",
    "BlockGrid",
    "PrivacyRegion",
    "UndertestReport",
    "region_undertest_report",
    "undertested_cells",
]
