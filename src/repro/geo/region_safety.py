"""Safety analysis of partial privacy regions.

§VI-A's trade-off lets an SU submit a smaller matrix covering only a
disclosed region.  The paper presents this purely as a cost win, but it
has a *protection* consequence the text does not spell out: the SU's
interference footprint extends up to ``d^c`` beyond its own block, and
``F`` entries for blocks outside the disclosed region are simply never
submitted — the SDC cannot test budgets it never sees.  A PU sitting
just outside a tight region is silently under-protected.

This module quantifies that gap so deployments can size regions
responsibly:

* :func:`undertested_cells` — the (channel, block) cells with non-zero
  interference that a given region drops;
* :func:`region_undertest_report` — aggregate severity: how much of the
  SU's total interference mass the SDC never examined, and the worst
  single omitted cell relative to the budget there.

The safe configuration is a region that covers the SU's entire
footprint (trivially true at full privacy); the report's
``is_safe`` flag checks exactly that.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import TYPE_CHECKING

from repro.geo.region import PrivacyRegion

if TYPE_CHECKING:  # circular at runtime: watch builds on geo
    from repro.watch.entities import SUTransmitter
    from repro.watch.environment import SpectrumEnvironment

__all__ = ["UndertestReport", "undertested_cells", "region_undertest_report"]


@dataclass(frozen=True)
class UndertestReport:
    """How much interference a partial region hides from the SDC."""

    su_id: str
    region_blocks: int
    total_blocks: int
    #: Cells with non-zero F that the region drops.
    omitted_cells: tuple[tuple[int, int], ...]
    #: Σ of omitted F values over Σ of all F values (0.0 = fully tested).
    omitted_interference_fraction: float
    #: max over omitted cells of R(c,b) / N(c,b) — ≥ 1.0 means a real
    #: budget violation went untested.
    worst_omitted_budget_ratio: float

    @property
    def is_safe(self) -> bool:
        """True when the region hides no interference at all."""
        return not self.omitted_cells

    @property
    def hides_violation(self) -> bool:
        """True when an untested cell would actually have been denied."""
        return self.worst_omitted_budget_ratio >= 1.0


def _footprint(environment: "SpectrumEnvironment", su: "SUTransmitter"):
    """The SU's full (unregioned) interference matrix F."""
    from repro.watch.matrices import su_request_matrix

    env = environment
    return su_request_matrix(
        su,
        env.grid,
        env.params,
        pathloss_for_channel=lambda c: env.su_pathloss_for(su, c),
        exclusion_distance_for_channel=env.exclusion_distance,
        region=None,
    )


def undertested_cells(
    environment: "SpectrumEnvironment",
    su: "SUTransmitter",
    region: PrivacyRegion,
) -> list[tuple[int, int]]:
    """(channel, block) cells with non-zero F outside the region."""
    f_matrix = _footprint(environment, su)
    return [
        (c, b)
        for c in range(environment.num_channels)
        for b in range(environment.num_blocks)
        if b not in region and f_matrix[c, b] != 0
    ]


def region_undertest_report(
    environment: "SpectrumEnvironment",
    su: "SUTransmitter",
    region: PrivacyRegion,
    budget=None,
) -> UndertestReport:
    """Quantify the protection gap of ``region`` for ``su``.

    ``budget`` is the current N matrix (e.g. ``PlaintextSDC.budget``);
    when omitted, the public ``E`` matrix is used — a lower bound on the
    true severity, since PU cells carry smaller budgets than E.
    """
    env = environment
    f_matrix = _footprint(env, su)
    n_matrix = env.e_matrix if budget is None else budget
    x_int = env.params.sinr_plus_redn_int
    omitted = []
    omitted_mass = 0
    total_mass = 0
    worst_ratio = 0.0
    for c in range(env.num_channels):
        for b in range(env.num_blocks):
            value = int(f_matrix[c, b])
            if value == 0:
                continue
            total_mass += value
            if b not in region:
                omitted.append((c, b))
                omitted_mass += value
                budget_here = int(n_matrix[c, b])
                if budget_here > 0:
                    worst_ratio = max(worst_ratio, (value * x_int) / budget_here)
    return UndertestReport(
        su_id=su.su_id,
        region_blocks=region.num_blocks,
        total_blocks=env.num_blocks,
        omitted_cells=tuple(omitted),
        omitted_interference_fraction=(
            omitted_mass / total_mass if total_mass else 0.0
        ),
        worst_omitted_budget_ratio=worst_ratio,
    )
