"""Synthetic open-loop load generation against the service broker.

Drives a :class:`~repro.service.broker.SpectrumAccessBroker` with
Poisson SU request arrivals (via :class:`repro.sim.workload.PoissonArrivals`)
and interleaved PU channel switches, then reports throughput, latency
percentiles, and the batch-size distribution.  This is what
``repro serve-loadtest`` and ``benchmarks/bench_service_throughput.py``
run.

``LoadtestConfig.scenario`` names a deployment from the scenario
registry (:mod:`repro.sim.registry`) — ``cbrs-tiered`` attaches the
incumbent/PAL/GAA admission ledger to the broker — and
``LoadtestConfig.workload`` swaps the fixed-cadence driver for a
pre-materialised schedule from a named traffic model
(:mod:`repro.sim.traffic`: diurnal, flash-crowd, pu-churn-storm, …).
Both knobs drive the in-memory and socket planes identically.

The workload is *open-loop across SUs* — arrivals fire on the Poisson
clock whether or not earlier requests finished — but closed-loop per SU:
a secondary user never has two license requests in flight (its cached
request would otherwise be refreshed mid-round, breaking the license's
request-digest commitment, just as it would for a real device).

Requests use the §VI-A fast path: each SU prepares its encrypted matrix
once at setup and re-randomises it per arrival, so the load test
stresses the *service* (SDC/STP work, batching, queueing) rather than
client-side encryption.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field

from repro.crypto.parallel import Executor
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ConfigurationError
from repro.service.batching import BatchAllocator
from repro.service.broker import ServiceConfig, ServiceDecision, SpectrumAccessBroker
from repro.sim.workload import PoissonArrivals, PuSwitchProcess
from repro.telemetry import MetricsRegistry, Tracer

__all__ = [
    "LoadtestConfig",
    "LoadtestReport",
    "ServiceFixture",
    "build_cluster_service",
    "build_packed_service",
    "run_loadtest",
]


@dataclass(frozen=True)
class LoadtestConfig:
    """Shape of one synthetic service run."""

    seed: int = 7
    #: Total SU request arrivals to fire.
    num_requests: int = 12
    #: Mean arrival rate, requests per *real* second (open loop).
    arrivals_per_second: float = 50.0
    #: Distinct SUs cycling through the arrivals (round robin).
    num_sus: int = 3
    #: PU physical channel switches injected across the run.
    num_pu_switches: int = 2
    key_bits: int = 512
    service: ServiceConfig = field(default_factory=ServiceConfig)
    #: Number of SDC shards; 0 runs the single-SDC packed deployment.
    shards: int = 0
    #: When > 0 (and ``shards`` > 0), kill shard-0's primary after this
    #: many request submissions to exercise failover under load.
    kill_shard_after: int = 0
    #: When set (sharded runs only), the coordinator opens a SQLite
    #: :class:`~repro.store.SqliteStateStore` at this path and persists
    #: PU ciphertexts, epoch snapshots, and the key directory through it.
    store_path: str = ""
    #: Named deployment from :mod:`repro.sim.registry` ("uhf" or
    #: "cbrs-tiered"); tiered scenarios attach a broker-side
    #: :class:`~repro.sim.cbrs.TieredAdmission` ledger.
    scenario: str = "uhf"
    #: Named traffic shape from :mod:`repro.sim.traffic` ("" keeps the
    #: legacy fixed-cadence driver); when set, arrivals follow a
    #: pre-materialised open-loop schedule.
    workload: str = ""
    #: Concurrent-authorization budget for tiered scenarios; 0 derives
    #: it from the WATCH geometry (set 1 to force tier pressure).
    tier_capacity: int = 0

    def __post_init__(self) -> None:
        from repro.sim.registry import scenario_names
        from repro.sim.traffic import workload_names

        if self.scenario not in scenario_names():
            raise ConfigurationError(
                f"unknown scenario {self.scenario!r} "
                f"(known: {', '.join(scenario_names())})"
            )
        if self.workload and self.workload not in workload_names():
            raise ConfigurationError(
                f"unknown workload {self.workload!r} "
                f"(known: {', '.join(workload_names())})"
            )
        if self.tier_capacity < 0:
            raise ConfigurationError("tier_capacity must be non-negative")
        if self.num_requests < 1:
            raise ConfigurationError("need at least one request")
        if self.arrivals_per_second <= 0:
            raise ConfigurationError("arrival rate must be positive")
        if self.num_sus < 1:
            raise ConfigurationError("need at least one SU")
        if self.shards < 0:
            raise ConfigurationError("shards must be non-negative")
        if self.kill_shard_after < 0:
            raise ConfigurationError("kill_shard_after must be non-negative")
        if self.kill_shard_after and not self.shards:
            raise ConfigurationError("kill_shard_after requires a sharded run")
        if self.store_path and not self.shards:
            raise ConfigurationError("store_path requires a sharded run")


def _resolve_scenario(config: LoadtestConfig, scenario):
    """The deployment scenario for a run (registry build unless given)."""
    if scenario is not None:
        return scenario
    from repro.sim.registry import build_named_scenario

    return build_named_scenario(
        config.scenario, seed=config.seed, num_sus=config.num_sus
    ).scenario


def _admission_for(config: LoadtestConfig, scenario, metrics):
    """The broker-side tier ledger implied by ``config.scenario``.

    Derived from the *actual* scenario in use (callers may pass a
    prebuilt one), so the tier map always covers exactly the enrolled
    SU population.  None for untiered scenarios.
    """
    from repro.sim.registry import SCENARIO_CBRS_TIERED

    if config.scenario != SCENARIO_CBRS_TIERED:
        return None
    from repro.sim.cbrs import TieredAdmission, assign_tiers, derive_gaa_capacity

    capacity = config.tier_capacity or derive_gaa_capacity(scenario)
    return TieredAdmission(
        assign_tiers(len(scenario.sus)), capacity, metrics
    )


@dataclass(frozen=True)
class LoadtestReport:
    """Aggregate outcome of one load-test run."""

    decisions: tuple[ServiceDecision, ...]
    wall_seconds: float
    metrics: dict

    @property
    def completed(self) -> int:
        return sum(1 for d in self.decisions if d.ran)

    @property
    def granted(self) -> int:
        return sum(1 for d in self.decisions if d.status == "granted")

    @property
    def rejected(self) -> int:
        return sum(1 for d in self.decisions if d.status == "rejected")

    @property
    def throughput_rps(self) -> float:
        return self.completed / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def latency_stats(self) -> dict[str, float]:
        return self.metrics["histograms"].get(
            "request_latency_s",
            {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
             "p50": 0.0, "p95": 0.0, "p99": 0.0},
        )

    def batch_stats(self) -> dict[str, float]:
        return self.metrics["histograms"].get("batch_size", {"count": 0, "mean": 0.0})

    def as_table_rows(self) -> list[tuple[str, str]]:
        latency = self.latency_stats()
        batches = self.batch_stats()
        return [
            ("requests submitted", str(len(self.decisions))),
            ("completed (granted/denied)", f"{self.completed} ({self.granted} granted)"),
            ("rejected", str(self.rejected)),
            ("wall time", f"{self.wall_seconds:.2f} s"),
            ("throughput", f"{self.throughput_rps:.2f} req/s"),
            ("latency p50 / p95 / p99",
             f"{latency['p50']:.3f} / {latency['p95']:.3f} / {latency['p99']:.3f} s"),
            ("mean batch size", f"{batches.get('mean', 0.0):.2f}"),
        ]

    def to_json_dict(self) -> dict:
        return {
            "requests": len(self.decisions),
            "completed": self.completed,
            "granted": self.granted,
            "rejected": self.rejected,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput_rps,
            "latency_s": self.latency_stats(),
            "batch_size": self.batch_stats(),
            "metrics": self.metrics,
        }


@dataclass
class ServiceFixture:
    """A deployment stood up for service traffic (broker not yet started)."""

    broker: SpectrumAccessBroker
    coordinator: object
    scenario: object
    pu_clients: list
    su_ids: list
    #: Durable state store owned by this fixture (closed with it).
    store: object = None
    #: Tiered-admission ledger (tiered scenarios only; also reachable as
    #: ``broker.admission``).
    admission: object = None

    def close(self) -> None:
        """Tear down deployment-owned resources (scatter threads, workers)."""
        closer = getattr(self.coordinator, "close", None)
        if closer is not None:
            closer()
        if self.store is not None:
            self.store.close()


def build_packed_service(
    config: LoadtestConfig,
    executor: Executor | None = None,
    metrics: MetricsRegistry | None = None,
    scenario=None,
    tracer: Tracer | None = None,
    transport=None,
    clock=None,
) -> ServiceFixture:
    """Stand up a packed-mode deployment wrapped in a broker.

    Packed mode is the service-grade configuration (slot packing
    amortises the per-cell Paillier work); the broker itself is
    variant-agnostic via
    :meth:`~repro.service.batching.BatchAllocator.for_coordinator`.
    Pass ``scenario`` to reuse a prebuilt deployment scenario (benches
    compare against a baseline on the identical scenario).
    """
    from repro.pisa.packed import PackedCoordinator

    scenario = _resolve_scenario(config, scenario)
    rng = DeterministicRandomSource(config.seed)
    metrics = metrics if metrics is not None else MetricsRegistry()
    admission = _admission_for(config, scenario, metrics)
    coordinator = PackedCoordinator(
        scenario.environment,
        key_bits=max(config.key_bits, 512),
        rng=rng,
        executor=executor,
        transport=transport,
        clock=clock,
    )
    coordinator.transport.attach_metrics(metrics)
    pu_clients = [coordinator.enroll_pu(pu) for pu in scenario.pus]
    su_ids = []
    for su in scenario.sus[: config.num_sus]:
        coordinator.enroll_su(su)
        su_ids.append(su.su_id)
    broker = SpectrumAccessBroker(
        allocator=BatchAllocator.for_coordinator(coordinator),
        pu_update_handler=coordinator.sdc.handle_pu_update,
        config=config.service,
        metrics=metrics,
        tracer=tracer,
        admission=admission,
    )
    return ServiceFixture(
        broker=broker,
        coordinator=coordinator,
        scenario=scenario,
        pu_clients=pu_clients,
        su_ids=su_ids,
        admission=admission,
    )


def build_cluster_service(
    config: LoadtestConfig,
    executor: Executor | None = None,
    metrics: MetricsRegistry | None = None,
    scenario=None,
    shard_executor_factory=None,
    tracer: Tracer | None = None,
    transport=None,
    clock=None,
) -> ServiceFixture:
    """Stand up a sharded-SDC deployment wrapped in a broker.

    ``config.shards`` SDC shards sit behind the cluster facade; the
    broker and driver code are identical to the single-SDC path because
    :class:`~repro.cluster.ClusterCoordinator` presents the same
    coordinator surface.  ``executor`` feeds the STP's conversion leg
    (the serial section of every epoch); ``shard_executor_factory``
    gives each shard its own compute backend (pass one building
    :class:`~repro.cluster.DedicatedProcessExecutor` for real
    multi-process scaling).  Call ``fixture.close()`` after the run.
    """
    from repro.cluster import ClusterCoordinator

    if config.shards < 1:
        raise ConfigurationError("cluster service needs at least one shard")
    scenario = _resolve_scenario(config, scenario)
    rng = DeterministicRandomSource(config.seed)
    # One registry spans the whole deployment: the broker's service
    # counters, the router's cluster_* counters, the policy engine's
    # retry counters, and the transport's per-link transfer counters all
    # land in the same exposition.
    metrics = metrics if metrics is not None else MetricsRegistry()
    admission = _admission_for(config, scenario, metrics)
    store = None
    if config.store_path:
        from repro.store import SqliteStateStore

        store = SqliteStateStore(config.store_path)
        store.attach_metrics(metrics)
    coordinator = ClusterCoordinator(
        scenario.environment,
        num_shards=config.shards,
        key_bits=max(config.key_bits, 512),
        rng=rng,
        transport=transport,
        stp_executor=executor,
        shard_executor_factory=shard_executor_factory,
        metrics=metrics,
        clock=clock if clock is not None else time.time,
        store=store,
    )
    pu_clients = [coordinator.enroll_pu(pu) for pu in scenario.pus]
    su_ids = []
    for su in scenario.sus[: config.num_sus]:
        coordinator.enroll_su(su)
        su_ids.append(su.su_id)
    broker = SpectrumAccessBroker(
        allocator=BatchAllocator.for_coordinator(coordinator),
        pu_update_handler=coordinator.sdc.handle_pu_update,
        config=config.service,
        metrics=metrics,
        tracer=tracer,
        admission=admission,
    )
    return ServiceFixture(
        broker=broker,
        coordinator=coordinator,
        scenario=scenario,
        pu_clients=pu_clients,
        su_ids=su_ids,
        store=store,
        admission=admission,
    )


async def _drive_schedule(fixture: ServiceFixture, config: LoadtestConfig):
    """Drive a pre-materialised workload schedule (``config.workload``).

    The whole schedule — arrival instants, SU subjects, PU switch slots
    — is built up front from a forked deterministic source, so the same
    seed replays byte-identically on the in-memory and socket planes:
    submission *order* is the schedule's order no matter how wall time
    stretches under load.

    In the byte-identity configuration (``max_batch=1`` with a zero
    batching window — the equivalence-test shape) the driver runs the
    schedule *closed-loop*: each round is awaited before the next event
    fires.  Concurrent rounds draw from the one broker-side RNG stream,
    so letting them overlap would let wall-clock crypto timing reorder
    the draws and change ciphertext bytes between otherwise identical
    runs.  Open-loop pacing is preserved for every throughput-shaped
    configuration.
    """
    from repro.sim.traffic import KIND_PU_SWITCH, KIND_SU_REQUEST, build_schedule

    broker = fixture.broker
    clients = {
        su_id: fixture.coordinator.su_client(su_id) for su_id in fixture.su_ids
    }
    for client in clients.values():
        client.prepare_request()
    su_locks = {su_id: asyncio.Lock() for su_id in fixture.su_ids}
    num_channels = fixture.scenario.environment.num_channels
    horizon_hours = config.num_requests / config.arrivals_per_second / 3600.0
    num_pus = len(fixture.pu_clients)
    # PU churn sized so the physical-switch budget is likely met within
    # the run's horizon (1.5x overdraw; the schedule caps at the budget).
    churn_per_hour = (
        1.5 * config.num_pu_switches / (horizon_hours * num_pus)
        if config.num_pu_switches and num_pus
        else 1e-9
    )
    schedule = build_schedule(
        config.workload,
        rng=DeterministicRandomSource(config.seed).fork("workload"),
        rate_per_s=config.arrivals_per_second,
        num_requests=config.num_requests,
        num_sus=len(fixture.su_ids),
        num_pus=num_pus if config.num_pu_switches else 0,
        num_channels=num_channels,
        max_pu_switches=config.num_pu_switches,
        grid=fixture.scenario.grid,
        pu_churn_per_hour=churn_per_hour,
    )

    async def one_request(su_id: str) -> ServiceDecision:
        # Closed loop per SU: refresh only once the previous round is done.
        async with su_locks[su_id]:
            request = clients[su_id].refresh_request()
            return await broker.submit_request(su_id, request)

    closed_loop = (
        config.service.max_batch == 1 and config.service.batch_window_s == 0.0
    )
    tasks = []
    elapsed = 0.0
    for event in schedule.events:
        if event.time_s > elapsed:
            await asyncio.sleep(event.time_s - elapsed)  # audit-ok: RES001 — open-loop arrival pacing, not a retry
            elapsed = event.time_s
        if event.kind == KIND_SU_REQUEST:
            su_id = fixture.su_ids[event.index]
            outcome = one_request(su_id)
            if closed_loop:
                outcome = _completed(await outcome)
            tasks.append(asyncio.ensure_future(outcome))
        elif event.kind == KIND_PU_SWITCH and event.physical and num_pus:
            pu = fixture.pu_clients[event.index]
            update = pu.switch_channel(event.slot, signal_strength_mw=1.0)
            if update is not None:
                broker.submit_pu_update(update)
        # su-move events shape only the simulator; live SUs are enrolled
        # at fixed blocks, so the driver skips them.
    return await asyncio.gather(*tasks)


async def _completed(decision: ServiceDecision) -> ServiceDecision:
    """Wrap an already-resolved decision for a uniform gather."""
    return decision


async def _drive(fixture: ServiceFixture, config: LoadtestConfig):
    if config.workload:
        return await _drive_schedule(fixture, config)
    broker = fixture.broker
    clients = {
        su_id: fixture.coordinator.su_client(su_id) for su_id in fixture.su_ids
    }
    for client in clients.values():
        client.prepare_request()
    su_locks = {su_id: asyncio.Lock() for su_id in fixture.su_ids}
    drive_rng = DeterministicRandomSource(config.seed).fork("drive")
    arrivals = PoissonArrivals(
        rate_per_hour=config.arrivals_per_second * 3600.0, rng=drive_rng
    )
    switches = PuSwitchProcess(
        virtual_rate_per_hour=3600.0, physical_fraction=1.0, rng=drive_rng
    )
    switch_budget = config.num_pu_switches
    switch_every = max(1, config.num_requests // (config.num_pu_switches + 1))
    num_channels = fixture.scenario.environment.num_channels

    async def one_request(su_id: str) -> ServiceDecision:
        # Closed loop per SU: refresh only once the previous round is done.
        async with su_locks[su_id]:
            request = clients[su_id].refresh_request()
            return await broker.submit_request(su_id, request)

    tasks = []
    for i in range(config.num_requests):
        su_id = fixture.su_ids[i % len(fixture.su_ids)]
        tasks.append(asyncio.ensure_future(one_request(su_id)))
        if config.kill_shard_after and i + 1 == config.kill_shard_after:
            # Chaos probe: take down a shard's primary mid-run; the
            # router must promote its standby and later epochs complete.
            victim = fixture.coordinator.router.shard_ids[0]
            fixture.coordinator.kill_shard(victim)
        if switch_budget > 0 and fixture.pu_clients and (i + 1) % switch_every == 0:
            switches.next_switch()
            pu = fixture.pu_clients[switch_budget % len(fixture.pu_clients)]
            slot = drive_rng.randbelow(num_channels)
            update = pu.switch_channel(slot, signal_strength_mw=1.0)
            if update is not None:
                broker.submit_pu_update(update)
                switch_budget -= 1
        if i + 1 < config.num_requests:
            await asyncio.sleep(arrivals.next_gap_s())  # audit-ok: RES001 — open-loop arrival pacing, not a retry
    return await asyncio.gather(*tasks)


async def _run_async(
    config: LoadtestConfig, executor, metrics, scenario, tracer, transport, clock
) -> LoadtestReport:
    if config.shards:
        fixture = build_cluster_service(
            config, executor, metrics, scenario=scenario,
            tracer=tracer, transport=transport, clock=clock,
        )
    else:
        fixture = build_packed_service(
            config, executor, metrics, scenario=scenario,
            tracer=tracer, transport=transport, clock=clock,
        )
    try:
        start = time.perf_counter()
        async with fixture.broker:
            decisions = await _drive(fixture, config)
        wall = time.perf_counter() - start
        return LoadtestReport(
            decisions=tuple(decisions),
            wall_seconds=wall,
            metrics=fixture.broker.metrics.snapshot(),
        )
    finally:
        fixture.close()


def run_loadtest(
    config: LoadtestConfig,
    executor: Executor | None = None,
    metrics: MetricsRegistry | None = None,
    scenario=None,
    tracer: Tracer | None = None,
    transport=None,
    clock=None,
) -> LoadtestReport:
    """Synchronous entry point: build, drive, tear down, report.

    ``tracer`` threads a :class:`repro.telemetry.Tracer` through the
    broker (one root span per request); ``transport`` substitutes the
    deployment's transport and ``clock`` pins the license ``issued_at``
    source — together they let the byte-identity tests compare traced
    and untraced transcripts on a frozen clock.
    """
    return asyncio.run(
        _run_async(config, executor, metrics, scenario, tracer, transport, clock)
    )
