"""Service-runtime metrics: counters, gauges, latency histograms.

The broker, batcher, and worker pool all report through one
:class:`MetricsRegistry`.  The design goals are the usual ones for an
embedded metrics layer:

* **cheap on the hot path** — recording a sample is a few attribute
  writes, no locks (CPython's GIL suffices for our single-loop broker),
  no string formatting;
* **bounded memory** — histograms keep a fixed-size reservoir of recent
  samples for percentile estimation plus exact running count/sum/min/max,
  so a week-long soak test cannot grow the registry;
* **machine-readable** — :meth:`MetricsRegistry.snapshot` returns plain
  dicts ready for ``json.dumps``; the throughput benchmark and the
  ``repro serve-loadtest`` CLI both emit it verbatim.

Labels follow the Prometheus convention textually —
``requests_rejected{reason=queue_full}`` is simply a distinct metric
name — which keeps the registry a flat ``dict`` without a label-matching
engine.
"""

from __future__ import annotations

import json
import time
from collections import deque
from contextlib import contextmanager
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "labelled",
]


def labelled(name: str, **labels: str) -> str:
    """``labelled("rejected", reason="queue_full")`` → ``rejected{reason=queue_full}``."""
    if not labels:
        return name
    inner = ",".join(f"{k}={labels[k]}" for k in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """Monotonically increasing event count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A value that can go up and down (queue depth, pool size, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def snapshot(self) -> float:
        return self.value


class Histogram:
    """Sample distribution with exact totals and reservoir percentiles.

    ``count``/``sum``/``min``/``max`` are exact over every observation.
    Percentiles are computed over the most recent ``reservoir`` samples
    — a sliding window, which for a service runtime is usually *more*
    useful than all-time percentiles (it reflects current behaviour),
    and is what keeps memory bounded.
    """

    __slots__ = ("count", "total", "min", "max", "_samples")

    def __init__(self, reservoir: int = 4096) -> None:
        if reservoir < 1:
            raise ValueError("reservoir must be positive")
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: deque[float] = deque(maxlen=reservoir)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self._samples.append(value)

    def percentile(self, q: float) -> float:
        """Nearest-rank percentile (``q`` in [0, 100]) over the window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
        return ordered[rank]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict[str, float]:
        if not self.count:
            return {"count": 0, "sum": 0.0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p95": 0.0, "p99": 0.0}
        ordered = sorted(self._samples)

        def pct(q: float) -> float:
            rank = max(0, min(len(ordered) - 1, round(q / 100.0 * (len(ordered) - 1))))
            return ordered[rank]

        return {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": pct(50),
            "p95": pct(95),
            "p99": pct(99),
        }


class MetricsRegistry:
    """Named metrics, created on first use.

    ``registry.counter("x").inc()`` — the registry owns the instances,
    so every component holding the registry sees the same metric.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str, **labels: str) -> Counter:
        key = labelled(name, **labels)
        try:
            return self._counters[key]
        except KeyError:
            metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str, **labels: str) -> Gauge:
        key = labelled(name, **labels)
        try:
            return self._gauges[key]
        except KeyError:
            metric = self._gauges[key] = Gauge()
            return metric

    def histogram(self, name: str, reservoir: int = 4096, **labels: str) -> Histogram:
        key = labelled(name, **labels)
        try:
            return self._histograms[key]
        except KeyError:
            metric = self._histograms[key] = Histogram(reservoir)
            return metric

    @contextmanager
    def timer(self, name: str, **labels: str) -> Iterator[None]:
        """Time a block and record seconds into histogram ``name``."""
        histogram = self.histogram(name, **labels)
        start = self._clock()
        try:
            yield
        finally:
            histogram.observe(self._clock() - start)

    def snapshot(self) -> dict:
        """Plain-dict state of every metric, ready for ``json.dumps``."""
        return {
            "counters": {k: c.snapshot() for k, c in sorted(self._counters.items())},
            "gauges": {k: g.snapshot() for k, g in sorted(self._gauges.items())},
            "histograms": {
                k: h.snapshot() for k, h in sorted(self._histograms.items())
            },
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.snapshot(), indent=indent, sort_keys=True)
