"""Deprecated alias for :mod:`repro.telemetry.metrics`.

The service-local metrics module grew into the stack-wide telemetry
plane; the real implementation now lives in :mod:`repro.telemetry`.
This shim keeps old imports working (same classes, same behaviour —
they *are* the telemetry classes) while steering callers to the new
home.  It will be removed once nothing imports it.
"""

from __future__ import annotations

import warnings

from repro.telemetry.metrics import (  # noqa: F401  (re-exports)
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    labelled,
)

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "labelled"]

warnings.warn(
    "repro.service.metrics is deprecated; import from repro.telemetry instead",
    DeprecationWarning,
    stacklevel=2,
)
