"""Asyncio request broker for the PISA allocation service.

:class:`SpectrumAccessBroker` turns the synchronous protocol stack into
a long-running service: PU updates and SU license requests arrive
concurrently, admission control bounds memory, an
:class:`~repro.service.batching.EpochBatcher` coalesces concurrent SU
requests, and each closed epoch runs as one allocation pass on a worker
thread (``asyncio.to_thread``) so the event loop keeps accepting traffic
while big-int arithmetic grinds.

Every request resolves to a :class:`ServiceDecision`:

* ``granted`` / ``denied`` — the protocol ran and the license says yes/no;
* ``rejected`` — the service never ran the protocol, with a reason:
  ``queue_full`` (admission control), ``deadline_expired`` (the request
  sat past its per-request deadline before its epoch drained),
  ``tier_budget`` (a tiered scenario's authorization ledger refused the
  SU's tier — see :class:`repro.sim.cbrs.TieredAdmission`), or
  ``shutting_down``.

The broker adds scheduling around the protocol, never inside it: the
crypto transcript of an admitted request is byte-identical to the same
request run alone through its coordinator.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from dataclasses import dataclass

from repro.crypto.rand import DeterministicRandomSource
from repro.errors import ClusterError, ProtocolError
from repro.resilience.policy import (
    IdempotencyCache,
    RetryPolicy,
    run_with_policy,
)
from repro.service.batching import BatchAllocator, Epoch, EpochBatcher
from repro.telemetry import MetricsRegistry, Tracer, child

__all__ = [
    "ServiceConfig",
    "ServiceDecision",
    "SpectrumAccessBroker",
    "REASON_QUEUE_FULL",
    "REASON_DEADLINE_EXPIRED",
    "REASON_SHUTTING_DOWN",
    "REASON_INTERNAL_ERROR",
    "REASON_TIER_BUDGET",
]

REASON_QUEUE_FULL = "queue_full"
REASON_DEADLINE_EXPIRED = "deadline_expired"
REASON_SHUTTING_DOWN = "shutting_down"
REASON_INTERNAL_ERROR = "internal_error"
REASON_TIER_BUDGET = "tier_budget"


@dataclass(frozen=True)
class ServiceConfig:
    """Runtime knobs of the broker."""

    #: Admission-control bound on queued-but-unprocessed SU requests.
    max_pending: int = 64
    #: Epoch window: how long the first request of an epoch may wait for
    #: company before the batch dispatches anyway.
    batch_window_s: float = 0.05
    #: Hard cap on requests per epoch; a full epoch dispatches early.
    max_batch: int = 8
    #: Deadline applied when a request does not bring its own.
    default_deadline_s: float = 30.0

    def __post_init__(self) -> None:
        if self.max_pending < 1:
            raise ProtocolError("max_pending must be positive")
        if self.batch_window_s < 0:
            raise ProtocolError("batch_window_s must be non-negative")
        if self.max_batch < 1:
            raise ProtocolError("max_batch must be positive")
        if self.default_deadline_s <= 0:
            raise ProtocolError("default_deadline_s must be positive")


@dataclass(frozen=True)
class ServiceDecision:
    """What the service tells an SU about one submitted request."""

    su_id: str
    #: ``granted`` | ``denied`` | ``rejected``
    status: str
    #: Set only for ``rejected``.
    reason: str | None
    #: Submission-to-decision wall time.
    latency_s: float
    #: Size of the epoch this request ran in (0 when rejected).
    batch_size: int
    #: The protocol-level outcome (``RequestOutcome``) when it ran.
    outcome: object | None = None

    @property
    def ran(self) -> bool:
        return self.status in ("granted", "denied")


@dataclass
class _Ticket:
    #: Unique per submission — the idempotency key every resolution path
    #: dedupes on, so no ticket can be double-counted in the metrics.
    request_id: str
    su_id: str
    request: object
    submitted_at: float
    deadline_at: float
    future: asyncio.Future
    #: Per-request root span (``None`` when the broker is untraced).
    span: object | None = None
    #: Open ``batch`` child covering queue-to-dispatch residence.
    batch_span: object | None = None


class _PuUpdate:
    __slots__ = ("message",)

    def __init__(self, message) -> None:
        self.message = message


_SHUTDOWN = object()


class SpectrumAccessBroker:
    """The service front door.

    Parameters
    ----------
    allocator:
        A wired :class:`~repro.service.batching.BatchAllocator` (use
        ``BatchAllocator.for_coordinator``).
    pu_update_handler:
        Called with each PU update message (typically
        ``coordinator.sdc.handle_pu_update``); applied between epochs so
        updates and allocations never interleave mid-pass.
    config, metrics:
        Runtime knobs and the registry service counters land in.
    clock:
        Injectable time source for deadlines and latency accounting.
    admission:
        Optional tier-policy ledger (:class:`repro.sim.cbrs.TieredAdmission`
        or anything with its ``on_submit``/``on_granted`` surface).
        Consulted synchronously, in submission order, so its decisions
        are identical on every plane regardless of shard latency.
    """

    def __init__(
        self,
        allocator: BatchAllocator,
        pu_update_handler=None,
        config: ServiceConfig | None = None,
        metrics: MetricsRegistry | None = None,
        clock=time.monotonic,
        journal=None,
        tracer: Tracer | None = None,
        admission=None,
    ) -> None:
        self.config = config or ServiceConfig()
        self.metrics = metrics or MetricsRegistry()
        # Materialise the outcome families at zero so a run that grants
        # (or denies) nothing still exposes them — dashboards and the CI
        # exposition grep rely on presence, not just increments.
        self.metrics.counter("requests_submitted")
        self.metrics.counter("requests_granted")
        self.metrics.counter("requests_denied")
        #: Optional :class:`repro.telemetry.Tracer`.  When set, every
        #: submission opens a ``request`` root span with ``admission`` /
        #: ``batch`` children here and per-phase children in the
        #: allocator.  The tracer owns its own deterministic RNG, so
        #: tracing never touches the protocol draw stream.
        self.tracer = tracer
        self.admission = admission
        self._allocator = allocator
        self._pu_update_handler = pu_update_handler
        self._clock = clock
        #: Optional :class:`repro.resilience.journal.EpochJournal` — each
        #: dispatched epoch is logged with its request ids before the
        #: allocation pass runs.
        self.journal = journal
        self._batcher: EpochBatcher[_Ticket] = EpochBatcher(
            self.config.batch_window_s, self.config.max_batch
        )
        self._queue: asyncio.Queue = asyncio.Queue()
        self._pending = 0
        self._running = False
        self._shutting_down = False
        self._loop_task: asyncio.Task | None = None
        #: Serializes start/stop: without it, two concurrent stop()
        #: calls both pass the running check, and the second trips the
        #: loop-task assert after the first's await window (ASY004).
        self._lifecycle_lock = asyncio.Lock()
        self._request_ids = itertools.count()
        #: Request ids already resolved (granted/denied/rejected), as a
        #: bounded LRU so a long-running broker stays flat.  Every
        #: resolution path checks this first: a ticket that an expired
        #: deadline and a failed epoch retry both try to reject is
        #: counted exactly once in the metrics.
        self._resolved = IdempotencyCache(capacity=4096)
        # Epoch retries run through the unified policy engine: at most
        # one retry after a ClusterError (the router has already promoted
        # standbys on the failed links), no backoff — the recovered
        # plane is ready immediately in the modelled runtime.
        self._epoch_policy = RetryPolicy(
            max_attempts=2,
            base_backoff_s=0.0,
            backoff_cap_s=0.0,
            retryable=(ClusterError,),
        )
        self._retry_rng = DeterministicRandomSource(0)

    # -- lifecycle ---------------------------------------------------------------

    async def start(self) -> None:
        async with self._lifecycle_lock:
            if self._running:
                raise ProtocolError("broker already started")
            self._running = True
            self._shutting_down = False
            self._loop_task = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Graceful shutdown: drain the open epoch, reject the rest."""
        async with self._lifecycle_lock:
            if not self._running:
                return
            self._shutting_down = True
            self._queue.put_nowait(_SHUTDOWN)
            assert self._loop_task is not None
            await self._loop_task
            self._loop_task = None
            self._running = False

    async def __aenter__(self) -> "SpectrumAccessBroker":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # -- ingress -----------------------------------------------------------------

    def submit_pu_update(self, message) -> None:
        """Enqueue a PU channel update (never rejected; tiny and urgent)."""
        if self._pu_update_handler is None:
            raise ProtocolError("broker has no PU update handler")
        self.metrics.counter("pu_updates_submitted").inc()
        if self.admission is not None:
            self.admission.on_pu_update()
        self._queue.put_nowait(_PuUpdate(message))

    async def submit_request(
        self, su_id: str, request, deadline_s: float | None = None
    ) -> ServiceDecision:
        """Submit one SU request and await its decision.

        Applies admission control synchronously: a full queue or a
        shutting-down broker rejects immediately without queueing.
        """
        now = self._clock()
        self.metrics.counter("requests_submitted").inc()
        span = (
            self.tracer.start_span("request", su=su_id)
            if self.tracer is not None
            else None
        )
        admission = child(span, "admission")
        if self._shutting_down or not self._running:
            return self._reject(su_id, REASON_SHUTTING_DOWN, now, span, admission)
        if self._pending >= self.config.max_pending:
            return self._reject(su_id, REASON_QUEUE_FULL, now, span, admission)
        if self.admission is not None and not self.admission.on_submit(su_id):
            # Tier policy (e.g. GAA under an exhausted CBRS budget).
            # Synchronous and order-dependent only, never timing-dependent.
            return self._reject(su_id, REASON_TIER_BUDGET, now, span, admission)
        if deadline_s is None:
            deadline_s = self.config.default_deadline_s
        if deadline_s <= 0:
            # Admission-control boundary: a budget that is already spent
            # can never be met, so reject before queueing — the protocol
            # must not run for it even if the epoch would drain instantly.
            return self._reject(
                su_id, REASON_DEADLINE_EXPIRED, now, span, admission
            )
        ticket = _Ticket(
            request_id=f"req-{next(self._request_ids)}",
            su_id=su_id,
            request=request,
            submitted_at=now,
            deadline_at=now + deadline_s,
            future=asyncio.get_running_loop().create_future(),
            span=span,
        )
        if span is not None:
            span.set_attribute("request_id", ticket.request_id)
        if admission is not None:
            admission.end()
        ticket.batch_span = child(span, "batch")
        self._pending += 1
        self.metrics.gauge("queue_depth").set(self._pending)
        self._queue.put_nowait(ticket)
        return await ticket.future

    def _reject(
        self,
        su_id: str,
        reason: str,
        submitted_at: float,
        span=None,
        admission=None,
    ) -> ServiceDecision:
        self.metrics.counter("requests_rejected", reason=reason).inc()
        if admission is not None:
            admission.end()
        if span is not None:
            span.set_attribute("status", "rejected")
            span.set_attribute("reason", reason)
            span.end()
        return ServiceDecision(
            su_id=su_id,
            status="rejected",
            reason=reason,
            latency_s=self._clock() - submitted_at,
            batch_size=0,
        )

    # -- the service loop --------------------------------------------------------

    async def _run(self) -> None:
        while True:
            due_at = self._batcher.next_due_at()
            try:
                if due_at is None:
                    item = await self._queue.get()
                else:
                    timeout = max(0.0, due_at - self._clock())
                    item = await asyncio.wait_for(self._queue.get(), timeout)
            except asyncio.TimeoutError:
                epoch = self._batcher.pop_ready(self._clock())
                if epoch is not None:
                    await self._dispatch(epoch)
                continue

            if item is _SHUTDOWN:
                epoch = self._batcher.flush()
                if epoch is not None:
                    await self._dispatch(epoch)
                self._drain_rejecting()
                return
            if isinstance(item, _PuUpdate):
                await asyncio.to_thread(self._pu_update_handler, item.message)
                self.metrics.counter("pu_updates_applied").inc()
                continue
            now = self._clock()
            if now >= item.deadline_at:
                # The deadline expired while the ticket sat in the queue;
                # it must not be dispatched into an epoch.
                self._resolve_rejection(item, REASON_DEADLINE_EXPIRED)
                continue
            epoch = self._batcher.add(item, now)
            if epoch is not None:
                await self._dispatch(epoch)

    def _drain_rejecting(self) -> None:
        now = self._clock()
        while not self._queue.empty():
            item = self._queue.get_nowait()
            if isinstance(item, _Ticket):
                # An already-expired ticket reports its own failure mode,
                # not the shutdown that happened to reveal it.
                if now >= item.deadline_at:
                    self._resolve_rejection(item, REASON_DEADLINE_EXPIRED)
                else:
                    self._resolve_rejection(item, REASON_SHUTTING_DOWN)

    def _mark_resolved(self, ticket: _Ticket) -> bool:
        """First resolution of this ticket?  Dedupe by request id.

        Before this guard, a ticket could be rejected twice — once by a
        deadline check and again when a failed (retried) epoch pass
        rejected everything it carried — decrementing ``_pending`` and
        bumping ``requests_rejected`` both times.
        """
        if ticket.request_id in self._resolved:
            self.metrics.counter("requests_deduped").inc()
            return False
        self._resolved.put(ticket.request_id, True)
        self._pending -= 1
        self.metrics.gauge("queue_depth").set(self._pending)
        return True

    def _close_ticket_span(self, ticket: _Ticket, status: str, reason=None) -> None:
        if ticket.batch_span is not None:
            ticket.batch_span.end()
            ticket.batch_span = None
        if ticket.span is not None:
            ticket.span.set_attribute("status", status)
            if reason is not None:
                ticket.span.set_attribute("reason", reason)
            ticket.span.end()

    def _resolve_rejection(self, ticket: _Ticket, reason: str) -> None:
        if not self._mark_resolved(ticket):
            return
        self.metrics.counter("requests_rejected", reason=reason).inc()
        self._close_ticket_span(ticket, "rejected", reason)
        if not ticket.future.done():
            ticket.future.set_result(
                ServiceDecision(
                    su_id=ticket.su_id,
                    status="rejected",
                    reason=reason,
                    latency_s=self._clock() - ticket.submitted_at,
                    batch_size=0,
                )
            )

    async def _dispatch(self, epoch: Epoch) -> None:
        """Run one closed epoch: expire stale tickets, allocate the rest."""
        now = self._clock()
        live: list[_Ticket] = []
        for ticket in epoch.items:
            if now > ticket.deadline_at:
                self._resolve_rejection(ticket, REASON_DEADLINE_EXPIRED)
            else:
                live.append(ticket)
        if not live:
            return
        work = Epoch(
            epoch_id=epoch.epoch_id,
            opened_at=epoch.opened_at,
            due_at=epoch.due_at,
            items=[(t.su_id, t.request) for t in live],
        )
        spans = []
        for ticket in live:
            # Batch formation ends here; the phase spans hang directly
            # off the request root, alongside admission and batch.
            if ticket.batch_span is not None:
                ticket.batch_span.set_attribute("epoch", epoch.epoch_id)
                ticket.batch_span.set_attribute("batch_size", len(live))
                ticket.batch_span.end()
                ticket.batch_span = None
            spans.append(ticket.span)
        self.metrics.histogram("batch_size").observe(len(live))
        if self.journal is not None:
            self.journal.epoch_dispatch(
                epoch.epoch_id, tuple(t.request_id for t in live)
            )

        def on_retry(_attempt, _exc, _sleep_s):
            # A shard died mid-pass.  The router has already promoted
            # standbys on the failed links; one retry of the whole epoch
            # against the recovered plane is cheap and usually succeeds.
            self.metrics.counter("epoch_cluster_retries").inc()

        try:
            with self.metrics.timer("epoch_allocation_s"):
                results = await asyncio.to_thread(
                    run_with_policy,
                    lambda: self._allocator.allocate(work, spans=spans),
                    self._epoch_policy,
                    rng=self._retry_rng,
                    on_retry=on_retry,
                    metrics=self.metrics,
                    op="epoch",
                )
        except Exception:
            # A failed pass must not strand its callers or kill the loop.
            self.metrics.counter("epoch_failures").inc()
            for ticket in live:
                self._resolve_rejection(ticket, REASON_INTERNAL_ERROR)
            return
        done_at = self._clock()
        for ticket, result in zip(live, results):
            if not self._mark_resolved(ticket):
                continue
            status = "granted" if result.granted else "denied"
            self.metrics.counter(f"requests_{status}").inc()
            if self.admission is not None and result.granted:
                self.admission.on_granted(ticket.su_id)
            self._close_ticket_span(ticket, status)
            latency = done_at - ticket.submitted_at
            self.metrics.histogram("request_latency_s").observe(latency)
            if not ticket.future.done():
                ticket.future.set_result(
                    ServiceDecision(
                        su_id=ticket.su_id,
                        status=status,
                        reason=None,
                        latency_s=latency,
                        batch_size=result.batch_size,
                        outcome=result.outcome,
                    )
                )
        self.metrics.gauge("queue_depth").set(self._pending)
