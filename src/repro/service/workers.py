"""Process-pool executor for Paillier modular exponentiations.

Every expensive step of a PISA round reduces to batches of independent
``pow(base, exponent, modulus)`` jobs (see
:mod:`repro.crypto.parallel`): the SDC's per-cell α blinding of
eq. (14), the STP's CRT decryption halves, the two-server threshold
partials, and ``r**n`` obfuscator precomputation.  Pure-Python big-int
``pow`` releases no meaningful concurrency under threads, so the service
runtime ships job batches to worker *processes*.

:class:`ProcessWorkerPool` implements the same
:class:`~repro.crypto.parallel.Executor` protocol as
:class:`~repro.crypto.parallel.SerialExecutor`; the two are drop-in
interchangeable and — because all randomness is drawn in the parent
before dispatch — produce byte-identical protocol transcripts.  The
serial executor remains the library default; the pool is opt-in for
service deployments.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ProcessPoolExecutor
from typing import Sequence

from repro.crypto.parallel import Executor, PowJob, SerialExecutor

__all__ = ["ProcessWorkerPool", "Executor", "SerialExecutor", "default_worker_count"]


def default_worker_count() -> int:
    """Leave one core for the asyncio loop; always at least two workers."""
    return max(2, (os.cpu_count() or 2) - 1)


def _pow_chunk(chunk: Sequence[PowJob]) -> list[int]:
    """Worker-side kernel; module-level so it pickles."""
    return [pow(base, exponent, modulus) for base, exponent, modulus in chunk]


class ProcessWorkerPool:
    """``pow_many`` fan-out over a :class:`~concurrent.futures.ProcessPoolExecutor`.

    Jobs are split into at most ``2 * max_workers`` contiguous chunks
    (contiguity preserves result order trivially) and gathered in order.
    Small batches below ``min_parallel_jobs`` run inline — for a handful
    of exponentiations the pickling round-trip costs more than it saves.

    The pool starts lazily on first use, so constructing one in library
    code that never exercises it costs nothing.  Use as a context
    manager, or call :meth:`close`, to release the worker processes.
    """

    def __init__(
        self,
        max_workers: int | None = None,
        min_parallel_jobs: int = 8,
    ) -> None:
        self.max_workers = default_worker_count() if max_workers is None else max_workers
        if self.max_workers < 1:
            raise ValueError("max_workers must be positive")
        self.min_parallel_jobs = min_parallel_jobs
        self.jobs_executed = 0
        self.batches_executed = 0
        # pow_many runs from asyncio.to_thread contexts; the counters are
        # read-modify-write shared state and need the lock.
        self._stats_lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.max_workers)
        return self._pool

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        jobs = list(jobs)
        with self._stats_lock:
            self.jobs_executed += len(jobs)
            self.batches_executed += 1
        if len(jobs) < self.min_parallel_jobs or self.max_workers == 1:
            return _pow_chunk(jobs)
        pool = self._ensure_pool()
        num_chunks = min(len(jobs), 2 * self.max_workers)
        size, extra = divmod(len(jobs), num_chunks)
        chunks = []
        start = 0
        for i in range(num_chunks):
            end = start + size + (1 if i < extra else 0)
            chunks.append(jobs[start:end])
            start = end
        results: list[int] = []
        for chunk_result in pool.map(_pow_chunk, chunks):
            results.extend(chunk_result)
        return results

    def warm_up(self) -> None:
        """Fork the workers now and push one trivial batch through.

        Call before starting an event loop or spawning threads: forking
        a process that is already multi-threaded is unreliable, and the
        pool otherwise starts lazily at the first real batch.
        """
        floor = max(self.min_parallel_jobs, self.max_workers)
        self.pow_many([(2, 3, 5)] * floor)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ProcessWorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
