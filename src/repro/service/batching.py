"""Epoch batching: coalesce concurrent SU requests into one pass.

A fine-grained spectrum service sees bursts of SU requests.  Handling
each one as its own Figure 5 round pays the full SDC↔STP message
round-trip and a separate homomorphic dispatch per request.  The epoch
batcher instead collects requests for a short window (or until a size
cap) and runs the whole *epoch* as one allocation pass:

1. **phase 1** — the SDC blinds every request's indicator matrix
   (eq. (14)); each per-request cell batch already ships to the
   executor as one ``pow_many`` call;
2. **one conversion leg** — the per-request sign-extraction messages
   travel to the STP inside a single :class:`BatchSignExtractionRequest`
   envelope (one message each way per epoch instead of one per request);
3. **phase 2** — the SDC unblinds, perturbs, signs, and returns each
   license (eqs. (16)/(17)).

:class:`EpochBatcher` is *pure* window/size bookkeeping — time is a
parameter, nothing sleeps — so its semantics (empty epochs, max-batch
overflow, flush) are directly unit-testable.  The asyncio broker owns
the actual clock and drives it.

The per-request crypto transcript is byte-identical to the unbatched
protocol: batching changes message framing and scheduling, never
ciphertexts, so a license issued inside an epoch equals the license the
same request would get alone (fixed RNG seed).
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass, field
from typing import Callable, Generic, Sequence, TypeVar

from repro.crypto.serialization import encode_bytes
from repro.errors import ProtocolError
from repro.telemetry import child

__all__ = [
    "Epoch",
    "EpochBatcher",
    "BatchSignExtractionRequest",
    "BatchSignExtractionResponse",
    "BatchAllocator",
]

T = TypeVar("T")


@dataclass
class Epoch(Generic[T]):
    """One batching window's worth of admitted items."""

    epoch_id: int
    opened_at: float
    due_at: float
    items: list[T] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.items)


class EpochBatcher(Generic[T]):
    """Pure coalescing logic: windows of at most ``max_batch`` items.

    The first ``add`` after an epoch closes opens the next epoch, due
    ``window_s`` later.  An epoch closes either when :meth:`pop_ready`
    observes ``now >= due_at`` or immediately when it fills to
    ``max_batch`` (``add`` then returns it).  Time never advances
    implicitly — callers pass ``now`` — so the batcher is deterministic
    under test clocks.
    """

    def __init__(self, window_s: float, max_batch: int) -> None:
        if window_s < 0:
            raise ProtocolError("window_s must be non-negative")
        if max_batch < 1:
            raise ProtocolError("max_batch must be positive")
        self.window_s = window_s
        self.max_batch = max_batch
        self._open: Epoch[T] | None = None
        self._next_id = 0

    @property
    def pending(self) -> int:
        """Items waiting in the currently open epoch (0 when none open)."""
        return len(self._open) if self._open is not None else 0

    def next_due_at(self) -> float | None:
        """Deadline of the open epoch, or ``None`` when idle."""
        return self._open.due_at if self._open is not None else None

    def add(self, item: T, now: float) -> Epoch[T] | None:
        """Admit one item; returns the epoch if this filled it to the cap."""
        if self._open is None:
            self._open = Epoch(
                epoch_id=self._next_id, opened_at=now, due_at=now + self.window_s
            )
            self._next_id += 1
        self._open.items.append(item)
        if len(self._open) >= self.max_batch:
            return self._close()
        return None

    def pop_ready(self, now: float) -> Epoch[T] | None:
        """Close and return the open epoch if its window has elapsed."""
        if self._open is not None and now >= self._open.due_at:
            return self._close()
        return None

    def flush(self) -> Epoch[T] | None:
        """Close and return the open epoch regardless of its deadline."""
        return self._close() if self._open is not None else None

    def _close(self) -> Epoch[T]:
        epoch, self._open = self._open, None
        assert epoch is not None
        return epoch


# -- epoch wire envelopes -----------------------------------------------------------


def _encode_envelope(round_id: str, items: Sequence) -> bytes:
    parts = [encode_bytes(round_id.encode("utf-8"))]
    parts.extend(encode_bytes(item.to_bytes()) for item in items)
    return b"".join(parts)


@dataclass(frozen=True)
class BatchSignExtractionRequest:
    """SDC → STP: every epoch member's sign-extraction request, framed once.

    Works for both the baseline and packed per-request messages — the
    envelope only requires ``to_bytes()`` of its members.
    """

    epoch_id: int
    requests: tuple

    def to_bytes(self) -> bytes:
        return _encode_envelope(f"epoch-{self.epoch_id}", self.requests)

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class BatchSignExtractionResponse:
    """STP → SDC: the matching per-request conversions, framed once."""

    epoch_id: int
    responses: tuple

    def to_bytes(self) -> bytes:
        return _encode_envelope(f"epoch-{self.epoch_id}", self.responses)

    def wire_size(self) -> int:
        return len(self.to_bytes())


# -- running an epoch through a coordinator -----------------------------------------


def _accepts_span(fn: Callable) -> bool:
    """Whether ``fn`` can be called with a ``span=`` keyword."""
    try:
        signature = inspect.signature(fn)
    except (TypeError, ValueError):  # builtins / C callables
        return False
    for parameter in signature.parameters.values():
        if parameter.kind is inspect.Parameter.VAR_KEYWORD:
            return True
        if (
            parameter.name == "span"
            and parameter.kind
            in (
                inspect.Parameter.POSITIONAL_OR_KEYWORD,
                inspect.Parameter.KEYWORD_ONLY,
            )
        ):
            return True
    return False


@dataclass(frozen=True)
class AllocationResult:
    """One request's outcome from a batched allocation pass."""

    su_id: str
    granted: bool
    outcome: object
    #: The license response message (byte-exact; lets callers verify
    #: transcript equality across executors).
    response: object
    request_bytes: int
    response_bytes: int
    batch_size: int


class BatchAllocator:
    """Runs a closed epoch through the three protocol phases.

    Variant-agnostic: the three phases are injected as callables, so the
    same allocator drives baseline PISA, the packed extension, and the
    two-server split.  Use :meth:`for_coordinator` to wire one from any
    coordinator (duck-typed on the shared ``sdc``/``stp`` /
    ``front``/``backend`` layout).
    """

    def __init__(
        self,
        phase1: Callable,
        convert: Callable,
        phase2: Callable,
        process_response: Callable,
        transport=None,
        conversion_peer: str = "stp",
        commit_epoch: Callable | None = None,
    ) -> None:
        self._phase1 = phase1
        self._convert = convert
        self._phase2 = phase2
        self._process_response = process_response
        self._transport = transport
        self._conversion_peer = conversion_peer
        self._commit_epoch = commit_epoch
        # Span support is detected once, here, rather than try/except per
        # call: phase callables may be plain lambdas (tests) that don't
        # take a ``span`` kwarg, and a per-call TypeError probe could
        # mask a genuine TypeError from inside the phase.
        self._phase1_span = _accepts_span(phase1)
        self._convert_span = _accepts_span(convert)
        self._phase2_span = _accepts_span(phase2)

    @classmethod
    def for_coordinator(cls, coordinator) -> "BatchAllocator":
        """Build the phase wiring from any of the four coordinators.

        A cluster coordinator's SDC facade exposes ``commit_epoch``; when
        present it is wired as the end-of-epoch hook, so each completed
        epoch advances every shard's committed-epoch watermark and writes
        its per-shard snapshot — the recovery point a promoted replica
        resumes from.  The cluster facade also splits each request's
        homomorphic work per shard internally, so one allocation pass is
        automatically batched shard-by-shard.
        """
        if hasattr(coordinator, "front"):  # two-server split
            return cls(
                phase1=coordinator.front.start_request_with_partials,
                convert=coordinator.backend.handle_partial_extraction,
                phase2=coordinator.front.finish_request,
                process_response=lambda su_id, response: coordinator.su_client(
                    su_id
                ).process_response(response, coordinator.directory),
                transport=coordinator.transport,
                conversion_peer="sdc-back",
            )
        return cls(
            phase1=coordinator.sdc.start_request,
            convert=coordinator.stp.handle_sign_extraction,
            phase2=coordinator.sdc.finish_request,
            process_response=lambda su_id, response: coordinator.su_client(
                su_id
            ).process_response(response, coordinator.stp.directory),
            transport=coordinator.transport,
            commit_epoch=getattr(coordinator.sdc, "commit_epoch", None),
        )

    def _run_phase(self, fn, supports_span, message, parent, name):
        """One phase call under a child span (threaded in when supported)."""
        phase_span = child(parent, name)
        try:
            if supports_span and phase_span is not None:
                return fn(message, span=phase_span)
            return fn(message)
        except BaseException as exc:
            if phase_span is not None:
                phase_span.record_error(exc)
            raise
        finally:
            if phase_span is not None:
                phase_span.end()

    def allocate(self, epoch: Epoch, spans: Sequence | None = None) -> list[AllocationResult]:
        """One allocation pass over ``(su_id, request_message)`` items.

        Phase 1 runs per request (each already a single executor batch),
        the conversion leg crosses the wire once as a batch envelope, and
        phase 2 issues every license.  Order of results matches order of
        admission.

        ``spans`` is an optional per-item parallel sequence of
        :class:`repro.telemetry.Span` parents (the broker's per-request
        root spans); each item's ``phase1`` / ``stp`` / ``phase2`` /
        ``license`` children hang off its own parent.  Phase callables
        that accept a ``span`` kwarg (the real coordinators) receive the
        phase child, so per-shard scatter spans nest beneath it.
        """
        if not epoch.items:
            return []
        if spans is None or len(spans) != len(epoch.items):
            spans = [None] * len(epoch.items)
        extractions = []
        for (su_id, request), span in zip(epoch.items, spans):
            if self._transport is not None:
                self._transport.send(request, sender=su_id, receiver="sdc")
            extractions.append(
                self._run_phase(
                    self._phase1, self._phase1_span, request, span, "phase1"
                )
            )
        batch_request = BatchSignExtractionRequest(
            epoch_id=epoch.epoch_id, requests=tuple(extractions)
        )
        if self._transport is not None:
            self._transport.send(
                batch_request, sender="sdc", receiver=self._conversion_peer
            )
        conversions = tuple(
            self._run_phase(self._convert, self._convert_span, ext, span, "stp")
            for ext, span in zip(extractions, spans)
        )
        batch_response = BatchSignExtractionResponse(
            epoch_id=epoch.epoch_id, responses=conversions
        )
        if self._transport is not None:
            self._transport.send(
                batch_response, sender=self._conversion_peer, receiver="sdc"
            )
        results = []
        for (su_id, request), conversion, span in zip(
            epoch.items, conversions, spans
        ):
            response = self._run_phase(
                self._phase2, self._phase2_span, conversion, span, "phase2"
            )
            if self._transport is not None:
                self._transport.send(response, sender="sdc", receiver=su_id)
            with_license = child(span, "license")
            try:
                outcome = self._process_response(su_id, response)
            finally:
                if with_license is not None:
                    with_license.end()
            results.append(
                AllocationResult(
                    su_id=su_id,
                    granted=outcome.granted,
                    outcome=outcome,
                    response=response,
                    request_bytes=request.wire_size(),
                    response_bytes=response.wire_size(),
                    batch_size=len(epoch.items),
                )
            )
        if self._commit_epoch is not None:
            self._commit_epoch(epoch.epoch_id)
        return results
