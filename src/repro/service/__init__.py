"""The PISA service runtime.

Everything below :mod:`repro.pisa` is a synchronous protocol library;
this package turns it into a long-running *service*:

* :mod:`repro.service.broker` — asyncio request broker with admission
  control and per-request deadlines;
* :mod:`repro.service.batching` — epoch batching of concurrent SU
  requests into single allocation passes;
* :mod:`repro.service.workers` — a process pool for the Paillier
  modular-exponentiation batches (the
  :class:`~repro.crypto.parallel.Executor` seam);
* :mod:`repro.service.loadtest` — synthetic open-loop workload driver
  (``repro serve-loadtest``).

Metrics moved to :mod:`repro.telemetry` (the ``Counter`` / ``Gauge`` /
``Histogram`` / ``MetricsRegistry`` names re-exported here are the
telemetry classes; ``repro.service.metrics`` remains as a deprecated
shim).
"""

from repro.service.batching import BatchAllocator, Epoch, EpochBatcher
from repro.service.broker import (
    REASON_DEADLINE_EXPIRED,
    REASON_INTERNAL_ERROR,
    REASON_QUEUE_FULL,
    REASON_SHUTTING_DOWN,
    ServiceConfig,
    ServiceDecision,
    SpectrumAccessBroker,
)
from repro.service.loadtest import (
    LoadtestConfig,
    LoadtestReport,
    build_cluster_service,
    build_packed_service,
    run_loadtest,
)
from repro.service.workers import ProcessWorkerPool, SerialExecutor
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "BatchAllocator",
    "Epoch",
    "EpochBatcher",
    "REASON_DEADLINE_EXPIRED",
    "REASON_INTERNAL_ERROR",
    "REASON_QUEUE_FULL",
    "REASON_SHUTTING_DOWN",
    "ServiceConfig",
    "ServiceDecision",
    "SpectrumAccessBroker",
    "LoadtestConfig",
    "LoadtestReport",
    "build_cluster_service",
    "build_packed_service",
    "run_loadtest",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ProcessWorkerPool",
    "SerialExecutor",
]
