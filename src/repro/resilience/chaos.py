"""Deterministic chaos harness for the sharded PISA deployment.

The harness runs the *same seeded deployment twice* — once clean
(control), once with a composed schedule of injected faults — and
asserts the property the paper's protocol depends on:

    **the protocol transcript is byte-identical and every issued
    license verifies**, no matter which components were killed,
    which wires dropped/delayed/duplicated/reordered messages, or
    where the journal device failed.

Faults are *fault plans*: named, seeded, composable units
(``kill-shard``, ``drop-links``, ``coordinator-crash``, ...) that arm
transport faults (:meth:`repro.net.transport.MultiplexedTransport.inject_faults`),
kill processes, cut the SDC↔STP wire, or fill the journal device at a
deterministic point.  ``repro chaos --seed 7 --plan kill-shard,drop-links``
runs one composed schedule from the command line.

Transcript capture happens in :class:`ChaosTransport`, which fingerprints
every *protocol-level* message (SU/PU ↔ SDC ↔ STP) after a successful
send.  Router↔shard sub-queries are excluded on purpose: failover
legitimately re-sends them, and the protocol's externally visible bytes
are exactly the non-shard links.  Recording *post-send* makes transient
faults transparent: a dropped message was never delivered (not
recorded), a retried one is recorded once — the logical
delivered-exactly-once transcript.

Two plans exercise the write-ahead journal end to end:

* ``coordinator-crash`` — SIGKILL-equivalent mid-phase-2 (after the
  phase-2 randomness barrier, during the scatter).  The journal's
  unfsynced tail is discarded, then the deployment is **rebuilt and
  replayed** from the journal with a *differently seeded* fallback RNG;
  the replay must match the control transcript byte for byte with zero
  fallback draws.
* ``journal-disk-full`` — the journal device fills mid-round.  The
  typed :class:`~repro.errors.JournalDiskFullError` must surface, the
  written prefix must stay readable, and replaying that prefix must
  reproduce every *completed* round byte-identically (the interrupted
  round re-runs on fresh randomness — its draws never left the process,
  so no external bytes constrain it — and must still yield a verifying
  license).
"""

from __future__ import annotations

import errno
import io
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field

from repro.cluster.coordinator import ClusterCoordinator
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    ChaosPlanError,
    FencedError,
    JournalDiskFullError,
    LinkDownError,
    MessageDroppedError,
)
from repro.net.recording import TranscriptTransport, fingerprint_message
from repro.resilience.journal import EpochJournal, JournalWriter, read_journal
from repro.resilience.policy import RetryPolicy, run_with_policy
from repro.resilience.recovery import (
    check_exactly_one_writer,
    replay_sources,
    summarize,
)
from repro.sim.traffic import (
    KIND_PU_SWITCH,
    KIND_SU_REQUEST,
    build_schedule,
    resolve_workload,
)
from repro.store import Checkpointer, SqliteStateStore, recover
from repro.telemetry import child
from repro.watch.scenario import ScenarioConfig, build_scenario

__all__ = [
    "ChaosTransport",
    "ChaosResult",
    "ChaosHarness",
    "PLAN_NAMES",
    "fingerprint_message",
]

#: License clock both runs freeze to, so ``issued_at`` is deterministic.
FROZEN_CLOCK = 1_700_000_000.0

#: Sends the harness performs are retried under this policy — drops are
#: transient, and a cut SDC↔STP wire queues the message until the plan
#: drains the outage.
SEND_POLICY = RetryPolicy(
    max_attempts=8,
    base_backoff_s=0.0,
    backoff_cap_s=0.0,
    retryable=(LinkDownError, MessageDroppedError),
)


#: Transcript capture now lives in :mod:`repro.net.recording` so the
#: socket plane's equivalence tests and the process chaos plan share
#: the exact fingerprint/link-predicate definitions; the chaos name is
#: kept for the harness's public surface and existing callers.
ChaosTransport = TranscriptTransport


class _InjectedCrash(Exception):
    """Stand-in for SIGKILL: unwinds the harness, never handled below it."""


class _DiskFullFile(io.BytesIO):
    """A BytesIO that models a filling disk.

    Once ``limit`` is set, a write that would exceed it lands *partially*
    (like a real short write at the end of a device) and raises
    ``ENOSPC`` — exercising both the typed error path and the
    torn-record tolerance of the journal reader.
    """

    def __init__(self) -> None:
        super().__init__()
        self.limit: int | None = None

    def write(self, data):
        if self.limit is not None and self.tell() + len(data) > self.limit:
            room = max(0, self.limit - self.tell())
            if room:
                super().write(data[:room])
            raise OSError(errno.ENOSPC, "chaos: journal device full")
        return super().write(data)

    def close(self) -> None:  # keep the buffer readable post-"crash"
        pass


# --------------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------------- #


class FaultPlan:
    """One named, composable fault. Subclasses override the hooks."""

    name = "noop"
    #: Plans that need the write-ahead journal active in the faulted run.
    wants_journal = False
    #: Plans that need real disk: a path-backed journal plus a SQLite
    #: :class:`~repro.store.sqlite.SqliteStateStore` in a temp dir.
    wants_store = False
    #: Plans whose faulted run ends in a crash + journal replay.
    crashes = False

    def arm(self, ctx: "_RunContext") -> None:
        """Called once, after the deployment is built, before round 0."""

    def before_round(self, ctx: "_RunContext", round_index: int) -> None:
        """Called before each round of the faulted run."""

    def on_send_retry(self, ctx: "_RunContext", exc, link) -> None:
        """Called when a harness-level send is about to be retried."""


class _KillShard(FaultPlan):
    """Crash one shard's primary (and cut its wire) before round 1."""

    name = "kill-shard"

    def before_round(self, ctx, round_index):
        if round_index == min(1, ctx.rounds - 1):
            victim = ctx.coordinator.router.shard_ids[0]
            ctx.coordinator.kill_shard(victim)
            ctx.note(f"killed {victim} before round {round_index}")


class _DropLinks(FaultPlan):
    """Drop the first send on every router↔shard link, every round."""

    name = "drop-links"

    def before_round(self, ctx, round_index):
        for shard_id in ctx.coordinator.router.shard_ids:
            ctx.mux.inject_faults("router", shard_id, drop=1)


class _DelayLinks(FaultPlan):
    """Stretch the modelled delay of two sends per shard link per round."""

    name = "delay-links"

    def before_round(self, ctx, round_index):
        for shard_id in ctx.coordinator.router.shard_ids:
            ctx.mux.inject_faults(
                "router", shard_id, delay_s=0.005, delay_count=2
            )


class _DuplicateLinks(FaultPlan):
    """Duplicate one send per shard link per round (wire-level)."""

    name = "duplicate-links"

    def before_round(self, ctx, round_index):
        for shard_id in ctx.coordinator.router.shard_ids:
            ctx.mux.inject_faults("router", shard_id, duplicate=1)


class _ReorderLinks(FaultPlan):
    """Reorder the wire log of the first shard link in windows of two."""

    name = "reorder-links"

    def before_round(self, ctx, round_index):
        shard_id = ctx.coordinator.router.shard_ids[0]
        ctx.mux.inject_faults("router", shard_id, reorder_window=2)


class _StpOutage(FaultPlan):
    """Cut the SDC→STP wire before round 1; drain after two retries.

    Models an STP outage with queue-and-drain degradation: the blinded
    sign-extraction request is *held* (the harness retries the exact
    same bytes) rather than rebuilt, so the transcript is unchanged.
    """

    name = "stp-outage"
    OUTAGE_RETRIES = 2

    def before_round(self, ctx, round_index):
        if round_index == min(1, ctx.rounds - 1):
            ctx.mux.fail_link("sdc", "stp")
            ctx.stp_outage_remaining = self.OUTAGE_RETRIES
            ctx.note(f"cut sdc->stp before round {round_index}")

    def on_send_retry(self, ctx, exc, link):
        if link != ("sdc", "stp") or not isinstance(exc, LinkDownError):
            return
        ctx.stp_outage_remaining -= 1
        ctx.stp_drained_sends += 1
        if ctx.stp_outage_remaining <= 0:
            ctx.mux.restore_link("sdc", "stp")
            ctx.note("stp outage drained; link restored")


class _CoordinatorCrash(FaultPlan):
    """SIGKILL the coordinator mid-phase-2 of the last round.

    The crash fires *inside* the phase-2 scatter — after the phase-2
    randomness barrier, before any partial product returns — exactly the
    window the write-ahead discipline exists for.
    """

    name = "coordinator-crash"
    wants_journal = True
    crashes = True

    def before_round(self, ctx, round_index):
        if round_index != ctx.rounds - 1:
            return
        router = ctx.coordinator.router
        real_scatter = router.scatter_phase2

        def scatter_then_die(requests, parent=None):
            # partials computed, then the kill lands
            real_scatter(requests, parent=parent)
            raise _InjectedCrash(
                f"coordinator killed mid-phase-2 of round {round_index}"
            )

        router.scatter_phase2 = scatter_then_die
        ctx.note(f"armed coordinator kill in round {round_index} phase 2")


class _JournalDiskFull(FaultPlan):
    """Fill the journal device 2 kB into the last round's draws."""

    name = "journal-disk-full"
    wants_journal = True
    crashes = True
    HEADROOM_BYTES = 2048

    def before_round(self, ctx, round_index):
        if round_index == ctx.rounds - 1 and ctx.journal_device is not None:
            ctx.journal_device.limit = (
                ctx.journal_device.tell() + self.HEADROOM_BYTES
            )
            ctx.note(f"journal device limited before round {round_index}")


class _Kill9ColdStart(FaultPlan):
    """SIGKILL both replicas of a shard mid-epoch; cold-start from disk.

    The disaster drill for the durable store: before the last round the
    epoch is committed (snapshots land in SQLite) and the journal is
    checkpointed (compacted to a marker).  Then, *inside* the last
    round's phase-1 scatter — after the phase-1 randomness barrier, with
    the round's draws sitting only in the journal tail — both replicas
    of one shard are killed, a fresh replica set is rebuilt purely from
    the SQLite store plus the journal tail
    (:func:`repro.store.checkpoint.recover` →
    :meth:`ClusterCoordinator.cold_start_shard`), and the scatter
    proceeds against it.  Because the restored state must be
    byte-identical for the round to produce the control run's exact
    ``Ṽ`` matrix, transcript equality over *every* segment is the
    proof that disk state is byte-exact.
    """

    name = "kill9-then-coldstart"
    wants_journal = True
    wants_store = True

    def before_round(self, ctx, round_index):
        if round_index != ctx.rounds - 1:
            return
        coordinator = ctx.coordinator
        # Epoch commit → per-shard snapshots land in the durable store;
        # checkpoint → the journal forgets everything the store holds.
        coordinator.sdc.commit_epoch(round_index)
        stats = ctx.checkpointer.checkpoint(ctx.journal_writer)
        ctx.note(
            f"checkpoint {stats.checkpoint_id}: "
            f"{stats.records_compacted} records compacted, journal "
            f"{stats.journal_bytes_before}→{stats.journal_bytes_after} B"
        )
        router = coordinator.router
        real_scatter = router.scatter_phase1

        def coldstart_then_scatter(requests, parent=None):
            router.scatter_phase1 = real_scatter
            victim = router.shard_ids[0]
            replica_set = coordinator.replica_sets[victim]
            # SIGKILL semantics: nothing in memory survives — no flush,
            # no goodbye snapshot.  Recovery sees only the disk.
            replica_set.primary.kill()
            replica_set.standby.kill()
            recovered = recover(ctx.store, ctx.journal_path)
            applied = coordinator.cold_start_shard(victim, recovered.tail)
            ctx.note(
                f"killed both replicas of {victim}; cold-started from "
                f"store + {len(recovered.tail.records)}-record tail "
                f"({applied} applied)"
            )
            return real_scatter(requests, parent=parent)

        router.scatter_phase1 = coldstart_then_scatter
        ctx.note(f"armed kill9+coldstart in round {round_index} phase 1")


class _AsymmetricPartition(FaultPlan):
    """Cut only the router→shard direction; the shard itself stays alive.

    The nasty half of a partition: the router cannot reach the primary,
    but the primary is healthy and would happily keep writing.  The
    router's failover path must fence *before* promoting, so when the
    partition heals (modelled as healing once the failover completes —
    the classic transient switch brown-out), the isolated old primary's
    write attempt dies with :class:`~repro.errors.FencedError` instead
    of forking history.
    """

    name = "asymmetric-partition"
    # Journal + store so the exactly-one-writer audit runs over the
    # fence/writer provenance this drill produces.
    wants_journal = True
    wants_store = True

    def before_round(self, ctx, round_index):
        if round_index != min(1, ctx.rounds - 1):
            return
        router = ctx.coordinator.router
        victim = router.shard_ids[0]
        replica_set = router.replica_set(victim)
        zombie = replica_set.primary
        # The incumbent holds a real lease before the cut; an unfenced
        # (token-0) writer is exempt from fencing by design, which would
        # let the zombie's later attempt slip through unjudged.
        incumbent = ctx.coordinator.fencing.bump(victim, "manual")
        replica_set.install_fence(incumbent.token)
        stale = incumbent.token
        ctx.mux.fail_link("router", victim)
        ctx.note(f"cut router->{victim} (shard alive) before round {round_index}")
        real_recover = router._recover

        def recover_then_heal(shard_id, reason="failover"):
            real_recover(shard_id, reason=reason)
            if shard_id != victim:
                return
            router._recover = real_recover
            ctx.mux.restore_link("router", victim)
            ctx.note(f"partition healed after fence+promote of {victim}")
            # The old primary comes back from the partition and tries to
            # finish the write it was holding — with its dead lease.
            try:
                zombie.commit_epoch(round_index, fence_token=stale)
            except FencedError as exc:
                ctx.fenced_rejections += 1
                ctx.coordinator.fencing.note_rejection(victim)
                ctx.note(f"zombie write rejected: {exc}")
            else:
                ctx.note(f"SPLIT BRAIN: zombie write on {victim} was accepted")

        router._recover = recover_then_heal


class _SplitBrainPromote(FaultPlan):
    """Fence-then-promote while the old primary is still serving.

    The direct split-brain drill: the authority deposes a perfectly
    healthy primary (operator-driven promotion), and the deposed
    incarnation — never crashed, never partitioned — immediately tries
    to commit with the lease it still holds.  Exactly one writer per
    shard must survive the journal/store audit, and the transcript must
    not move a byte.
    """

    name = "split-brain-promote"
    wants_journal = True
    wants_store = True

    def before_round(self, ctx, round_index):
        if round_index != ctx.rounds - 1:
            return
        coordinator = ctx.coordinator
        router = coordinator.router
        victim = router.shard_ids[0]
        replica_set = router.replica_set(victim)
        # Give the incumbent a real lease and let it commit under it —
        # the journal now has a writer record to audit against.
        incumbent = coordinator.fencing.bump(victim, "manual")
        replica_set.install_fence(incumbent.token)
        coordinator.sdc.commit_epoch(round_index)
        zombie = replica_set.primary
        # Depose it while it is alive and serving: bump, persist, install
        # on every replica (the zombie included), only then promote.
        successor = coordinator.fencing.bump(victim, "failover")
        replica_set.install_fence(successor.token)
        replica_set.promote()
        coordinator.membership.record_lease(victim, successor.token)
        ctx.note(
            f"promoted {victim} while old primary alive "
            f"(lease {incumbent.token}->{successor.token})"
        )
        try:
            zombie.commit_epoch(round_index + 1, fence_token=incumbent.token)
        except FencedError as exc:
            ctx.fenced_rejections += 1
            coordinator.fencing.note_rejection(victim)
            ctx.note(f"old primary's post-fence write rejected: {exc}")
        else:
            ctx.note(f"SPLIT BRAIN: old primary of {victim} committed")
        # The successor commits under its own lease; the audit must see
        # writer tokens that never regress behind the fence.
        coordinator.sdc.commit_epoch(round_index)


class _ClockSkew(FaultPlan):
    """Skew one shard's heartbeat clock a minute into the past.

    A skewed clock makes a healthy shard's heartbeat *look* ancient.
    Liveness checking must classify alive-primary-with-stale-heartbeat
    as *suspect* (route around it) rather than promote — promoting on
    staleness alone is the spurious failover gray-failure folklore warns
    about.
    """

    name = "clock-skew"
    wants_journal = True
    wants_store = True
    SKEW_S = 60.0

    def before_round(self, ctx, round_index):
        if round_index != min(1, ctx.rounds - 1):
            return
        router = ctx.coordinator.router
        victim = router.shard_ids[-1]
        replica_set = router.replica_set(victim)
        replica_set.record_heartbeat(now=time.monotonic() - self.SKEW_S)
        promoted = router.check_liveness()
        ctx.note(
            f"skewed {victim} heartbeat {self.SKEW_S:.0f}s into the past; "
            f"liveness promoted {list(promoted) or 'nothing'}, "
            f"suspect={replica_set.suspect}"
        )


class _GraySlowShard(FaultPlan):
    """Latency injection below the heartbeat-death threshold.

    The shard answers everything — slowly.  Heartbeats never expire, so
    naive liveness sees a healthy fleet; the RTT quantile must flag the
    outlier as suspect and serve it from the standby, with zero
    promotions burned.
    """

    name = "gray-slow-shard"
    wants_journal = True
    wants_store = True
    DELAY_S = 0.4

    def arm(self, ctx):
        victim = ctx.coordinator.router.shard_ids[0]
        ctx.mux.inject_faults(
            "router", victim, delay_s=self.DELAY_S, delay_count=-1
        )
        ctx.note(
            f"armed {self.DELAY_S * 1000:.0f} ms gray slowdown on {victim}"
        )


_PLAN_TYPES = (
    _KillShard,
    _DropLinks,
    _DelayLinks,
    _DuplicateLinks,
    _ReorderLinks,
    _StpOutage,
    _CoordinatorCrash,
    _JournalDiskFull,
    _Kill9ColdStart,
    _AsymmetricPartition,
    _SplitBrainPromote,
    _ClockSkew,
    _GraySlowShard,
)

PLAN_NAMES: tuple[str, ...] = tuple(plan.name for plan in _PLAN_TYPES)
_PLANS = {plan.name: plan for plan in _PLAN_TYPES}


def _resolve_plans(names) -> list[FaultPlan]:
    plans = []
    for name in names:
        plan_type = _PLANS.get(name)
        if plan_type is None:
            raise ChaosPlanError(
                f"unknown fault plan {name!r} (known: {', '.join(PLAN_NAMES)})"
            )
        plans.append(plan_type())
    if not plans:
        raise ChaosPlanError("a chaos schedule needs at least one fault plan")
    if sum(1 for p in plans if p.crashes) > 1:
        raise ChaosPlanError(
            "at most one crashing plan (coordinator-crash / journal-disk-full) "
            "per schedule"
        )
    return plans


# --------------------------------------------------------------------------- #
# The harness
# --------------------------------------------------------------------------- #


@dataclass
class _RunContext:
    coordinator: ClusterCoordinator
    mux: ChaosTransport
    rounds: int
    journal_device: _DiskFullFile | None = None
    #: Disk-backed plumbing (``wants_store`` plans only).
    journal_path: str | None = None
    journal_writer: JournalWriter | None = None
    store: SqliteStateStore | None = None
    checkpointer: Checkpointer | None = None
    stp_outage_remaining: int = 0
    stp_drained_sends: int = 0
    #: Stale-token writes rejected with :class:`FencedError` (counted by
    #: the partition plans when their zombie write attempt dies).
    fenced_rejections: int = 0
    #: Optional :class:`repro.telemetry.Tracer`; one root span per
    #: round.  The tracer draws ids from its own RNG, so traced and
    #: untraced runs keep byte-identical transcripts.
    tracer: object | None = None
    notes: list = field(default_factory=list)

    def note(self, text: str) -> None:
        self.notes.append(text)


@dataclass
class _RunRecord:
    """One full run's observable outcome."""

    segments: tuple[tuple[str, ...], ...]
    granted: tuple[bool, ...]
    licenses: tuple


@dataclass(frozen=True)
class ChaosResult:
    """The verdict of one composed chaos schedule."""

    plans: tuple[str, ...]
    seed: int
    shards: int
    rounds: int
    #: Property 1: transcript byte-equality over the required segments.
    transcript_equal: bool
    #: How many segments (enrolment + rounds) had to match exactly.
    exact_segments: int
    #: Property 2: every completed round's license verified, and its
    #: grant/deny outcome matches the control run.
    licenses_valid: bool
    #: Draws the replay served from the journal / from the fallback RNG
    #: (crash plans only; -1 when no replay happened).
    replayed_draws: int
    fallback_draws: int
    fault_stats: dict
    failovers: int
    drops_retried: int
    notes: tuple[str, ...]
    #: Stale-token writes rejected with ``FencedError`` during the run.
    fenced_rejections: int = 0
    #: Shards flagged suspect (gray failure) instead of promoted.
    suspects: int = 0
    #: Exactly-one-writer audit over the journal (+ store when present):
    #: commits whose fencing token regressed behind the shard's fence.
    #: ``-1`` means no journal was active, so there was nothing to audit.
    writer_violations: int = -1
    #: Named workload the fault schedule was composed with ("" = the
    #: legacy round-robin driver).
    workload: str = ""

    @property
    def ok(self) -> bool:
        return (
            self.transcript_equal
            and self.licenses_valid
            and self.writer_violations <= 0
        )

    def to_dict(self) -> dict:
        return {
            "plans": list(self.plans),
            "seed": self.seed,
            "shards": self.shards,
            "rounds": self.rounds,
            "ok": self.ok,
            "transcript_equal": self.transcript_equal,
            "exact_segments": self.exact_segments,
            "licenses_valid": self.licenses_valid,
            "replayed_draws": self.replayed_draws,
            "fallback_draws": self.fallback_draws,
            "fault_stats": dict(self.fault_stats),
            "failovers": self.failovers,
            "drops_retried": self.drops_retried,
            "fenced_rejections": self.fenced_rejections,
            "suspects": self.suspects,
            "writer_violations": self.writer_violations,
            "workload": self.workload,
            "notes": list(self.notes),
        }


class ChaosHarness:
    """Builds seed-paired deployments and judges fault schedules.

    The control run is built once per harness and reused across
    schedules — every faulted run is compared against the same clean
    transcript.
    """

    def __init__(
        self,
        seed: int = 7,
        shards: int = 2,
        rounds: int = 2,
        key_bits: int = 256,
        scenario_seed: int = 5,
        metrics=None,
        workload: str = "",
    ) -> None:
        if rounds < 1:
            raise ChaosPlanError("rounds must be positive")
        self.seed = seed
        self.shards = shards
        self.rounds = rounds
        self.key_bits = key_bits
        self.scenario_seed = scenario_seed
        #: Optional named traffic shape (``repro.sim.traffic``).  When
        #: set, round subjects and inter-round PU churn come from one
        #: compiled workload script applied identically to the control,
        #: every faulted run, and any crash replay — composing a
        #: workload must not disturb the byte-equality judgement.
        self.workload = workload
        if workload:
            resolve_workload(workload)
        self._script: tuple | None = None
        #: Optional :class:`repro.telemetry.MetricsRegistry` threaded
        #: through every deployment the harness builds (router, policy
        #: engine, transport counters) plus the harness's own
        #: ``chaos_runs_total`` / ``chaos_crashes_total``.
        self.metrics = metrics
        self._control: _RunRecord | None = None

    # -- deployment plumbing ----------------------------------------------------

    def _build(self, rng, transport, journal=None, clock=None, store=None):
        scenario = build_scenario(ScenarioConfig(seed=self.scenario_seed))
        coordinator = ClusterCoordinator(
            scenario.environment,
            num_shards=self.shards,
            key_bits=self.key_bits,
            rng=rng,
            transport=transport,
            scatter_threads=1,
            # Composed schedules can burn several attempts on one
            # sub-query (a failover *and* an injected drop); give the
            # router a chaos-sized budget.  Attempts don't affect the
            # transcript, so control and faulted runs stay paired.
            max_attempts=4,
            journal=journal,
            clock=clock if clock is not None else (lambda: FROZEN_CLOCK),
            metrics=self.metrics,
            store=store,
        )
        for pu in scenario.pus:
            coordinator.enroll_pu(pu)
        for su in scenario.sus:
            coordinator.enroll_su(su)
        su_ids = tuple(su.su_id for su in scenario.sus)
        if self.workload and self._script is None:
            self._script = self._compile_workload(scenario)
        return coordinator, su_ids

    def _compile_workload(self, scenario) -> tuple:
        """Per-round ``(su_id, churn)`` script from the named workload.

        The traffic model's continuous schedule is quantised onto the
        harness's round structure: each ``su-request`` event names the
        round's subject, and every *physical* ``pu-switch`` since the
        previous request is applied (through the faulted mux) just
        before that round.  Compiled once per harness from a dedicated
        seed fork, so all runs see the same script; ``su-move`` events
        are ignored — chaos rounds have no spatial dimension.
        """
        su_ids = tuple(su.su_id for su in scenario.sus)
        pu_ids = tuple(pu.receiver_id for pu in scenario.pus)
        schedule = build_schedule(
            self.workload,
            rng=DeterministicRandomSource(self.seed).fork("chaos-workload"),
            rate_per_s=1.0,
            num_requests=self.rounds,
            num_sus=len(su_ids),
            num_pus=len(pu_ids),
            num_channels=scenario.environment.num_channels,
            # One update per round keeps composed schedules bounded; a
            # churn-storm workload saturates this cap, steady mostly
            # leaves it unused.
            max_pu_switches=self.rounds,
            pu_churn_per_hour=900.0,
            grid=scenario.grid,
        )
        script: list[tuple[str, tuple]] = []
        churn: list[tuple[str, int]] = []
        for event in schedule.events:
            if event.kind == KIND_SU_REQUEST:
                script.append((su_ids[event.index], tuple(churn)))
                churn = []
            elif event.kind == KIND_PU_SWITCH and event.physical:
                churn.append((pu_ids[event.index], event.slot))
        # Churn after the final request never precedes a round: dropped.
        return tuple(script)

    def _apply_churn(self, ctx: _RunContext, plans, churn) -> None:
        """Scripted PU switches, sent through the (possibly faulted) mux.

        Updates ride the same retry policy as protocol sends, so a
        churn storm composed with a partition exercises the failover
        path; §VI-A virtual switches (same physical channel) produce no
        update, identically in every run.
        """
        coordinator = ctx.coordinator
        for pu_id, slot in churn:
            update = coordinator.pu_client(pu_id).switch_channel(
                slot, signal_strength_mw=1.0
            )
            if update is None:
                continue

            def on_retry(_attempt, exc, _sleep_s, pu_id=pu_id):
                for plan in plans:
                    plan.on_send_retry(ctx, exc, (pu_id, "sdc"))

            run_with_policy(
                lambda u=update, p=pu_id: ctx.mux.send(u, p, "sdc"),
                SEND_POLICY,
                rng=DeterministicRandomSource(0),
                on_retry=on_retry,
            )
            coordinator.sdc.handle_pu_update(update)

    def _run_round(self, ctx: _RunContext, plans, su_id: str):
        """One Figure 5 round with retried (queue-and-drain) sends."""
        coordinator = ctx.coordinator

        def send(message, sender, receiver):
            def on_retry(_attempt, exc, _sleep_s):
                for plan in plans:
                    plan.on_send_retry(ctx, exc, (sender, receiver))

            run_with_policy(
                lambda: ctx.mux.send(message, sender, receiver),
                SEND_POLICY,
                rng=DeterministicRandomSource(0),
                on_retry=on_retry,
            )

        root = (
            ctx.tracer.start_span("round", su=su_id)
            if ctx.tracer is not None
            else None
        )
        try:
            client = coordinator.su_client(su_id)
            request = client.prepare_request()
            send(request, su_id, "sdc")
            sign_request = self._phase(
                root, "phase1", coordinator.sdc.start_request, request
            )
            send(sign_request, "sdc", "stp")
            sign_response = self._phase(
                root, "stp", coordinator.stp.handle_sign_extraction, sign_request
            )
            send(sign_response, "stp", "sdc")
            response = self._phase(
                root, "phase2", coordinator.sdc.finish_request, sign_response
            )
            send(response, "sdc", su_id)
            outcome = self._phase(
                root,
                "license",
                lambda message, span=None: client.process_response(
                    message, coordinator.stp.directory
                ),
                response,
            )
            return outcome
        except BaseException as exc:
            if root is not None:
                root.record_error(exc)
            raise
        finally:
            if root is not None:
                root.end()

    @staticmethod
    def _phase(root, name, fn, message):
        """Run one protocol phase under a child span of ``root``."""
        span = child(root, name)
        try:
            return fn(message, span=span)
        except BaseException as exc:
            if span is not None:
                span.record_error(exc)
            raise
        finally:
            if span is not None:
                span.end()

    def _execute(self, ctx: _RunContext, plans, su_ids) -> _RunRecord:
        """Enrolment already ran in ``_build``; mark it and run rounds."""
        for plan in plans:
            plan.arm(ctx)
        ctx.mux.mark()
        outcomes = []
        for round_index in range(ctx.rounds):
            for plan in plans:
                plan.before_round(ctx, round_index)
            if self._script:
                su_id, churn = self._script[round_index % len(self._script)]
                self._apply_churn(ctx, plans, churn)
            else:
                su_id = su_ids[round_index % len(su_ids)]
            outcomes.append(self._run_round(ctx, plans, su_id))
            ctx.mux.mark()
        ctx.mux.clear_faults()
        return _RunRecord(
            segments=ctx.mux.segments(),
            granted=tuple(o.granted for o in outcomes),
            licenses=tuple(o.license for o in outcomes),
        )

    def control(self, tracer=None) -> _RunRecord:
        """The clean run.  Untraced controls are built once and cached;
        a traced control always runs fresh (it must populate *this*
        tracer's span tree) and seeds the cache, which is sound because
        tracing never touches the protocol RNG."""
        if self._control is not None and tracer is None:
            return self._control
        transport = ChaosTransport()
        coordinator, su_ids = self._build(
            DeterministicRandomSource(self.seed), transport
        )
        ctx = _RunContext(
            coordinator=coordinator,
            mux=transport,
            rounds=self.rounds,
            tracer=tracer,
        )
        try:
            record = self._execute(ctx, [], su_ids)
        finally:
            coordinator.close()
        if self._control is None:
            self._control = record
        return record

    # -- the verdict ------------------------------------------------------------

    def run(self, plan_names, tracer=None) -> ChaosResult:
        """Run one composed fault schedule and judge it against control."""
        plans = _resolve_plans(plan_names)
        control = self.control()
        if self.metrics is not None:
            self.metrics.counter(
                "chaos_runs_total", plan="+".join(sorted(plan_names))
            ).inc()
        wants_journal = any(p.wants_journal for p in plans)
        wants_store = any(p.wants_store for p in plans)

        device: _DiskFullFile | None = None
        writer: JournalWriter | None = None
        journal: EpochJournal | None = None
        store: SqliteStateStore | None = None
        checkpointer: Checkpointer | None = None
        journal_path: str | None = None
        store_dir: str | None = None
        if wants_store:
            # Real disk: a path-backed journal (checkpoint compaction
            # renames files) and a SQLite store in a throwaway dir.
            store_dir = tempfile.mkdtemp(prefix="repro-chaos-store-")
            journal_path = os.path.join(store_dir, "journal.wal")
            writer = JournalWriter(journal_path, fsync_every=8)
            journal = EpochJournal(writer)
            store = SqliteStateStore(os.path.join(store_dir, "store.sqlite"))
            checkpointer = Checkpointer(store, metrics=self.metrics)
        elif wants_journal:
            device = _DiskFullFile()
            writer = JournalWriter(fileobj=device, fsync_every=8)
            journal = EpochJournal(writer)

        try:
            transport = ChaosTransport()
            coordinator, su_ids = self._build(
                DeterministicRandomSource(self.seed),
                transport,
                journal=journal,
                store=store,
            )
            ctx = _RunContext(
                coordinator=coordinator,
                mux=transport,
                rounds=self.rounds,
                journal_device=device,
                journal_path=journal_path,
                journal_writer=writer,
                store=store,
                checkpointer=checkpointer,
                tracer=tracer,
            )
            crashed: Exception | None = None
            record: _RunRecord | None = None
            try:
                record = self._execute(ctx, plans, su_ids)
            except (_InjectedCrash, JournalDiskFullError) as exc:
                crashed = exc
                ctx.note(f"crash: {type(exc).__name__}: {exc}")
                if self.metrics is not None:
                    self.metrics.counter(
                        "chaos_crashes_total", kind=type(exc).__name__
                    ).inc()
            finally:
                failovers = ctx.coordinator.router.stats.failovers
                drops_retried = ctx.coordinator.router.stats.drops_retried
                suspects = ctx.coordinator.router.stats.suspects
                fault_stats = dict(transport.fault_stats)
                coordinator.close()

            writer_violations = -1
            if writer is not None:
                # Exactly-one-writer audit: every journaled commit must
                # carry a token no older than its shard's fence, and the
                # store's persisted lease must not lag the journal's.
                try:
                    writer.barrier()
                except JournalDiskFullError:
                    pass  # the full-device plan: audit the written prefix
                journal_result = read_journal(
                    journal_path if journal_path is not None else device.getvalue()
                )
                violations = check_exactly_one_writer(journal_result, store=store)
                writer_violations = len(violations)
                for violation in violations:
                    ctx.note(f"writer violation: {violation}")

            replayed_draws = -1
            fallback_draws = -1
            if crashed is not None:
                # Recovery: replay the journal prefix through a fresh
                # deployment.  The fallback RNG is seeded differently, so
                # a byte-equal transcript proves the bytes came from disk.
                record, replayed_draws, fallback_draws = self._replay(
                    device, ctx, su_ids
                )
                exact_segments = (
                    len(control.segments)
                    if isinstance(crashed, _InjectedCrash)
                    # Disk-full loses the interrupted round's draws (they
                    # never crossed a barrier): every *completed* segment
                    # must match, the final round re-runs on fresh entropy.
                    else len(control.segments) - 1
                )
            else:
                exact_segments = len(control.segments)

            assert record is not None
            transcript_equal = (
                record.segments[:exact_segments]
                == control.segments[:exact_segments]
            )
            licenses_valid = record.granted == control.granted and all(
                lic is not None for lic in record.licenses
            )
            return ChaosResult(
                plans=tuple(p.name for p in plans),
                seed=self.seed,
                shards=self.shards,
                rounds=self.rounds,
                transcript_equal=transcript_equal,
                exact_segments=exact_segments,
                licenses_valid=licenses_valid,
                replayed_draws=replayed_draws,
                fallback_draws=fallback_draws,
                fault_stats=fault_stats,
                failovers=failovers,
                drops_retried=drops_retried,
                notes=tuple(ctx.notes),
                fenced_rejections=ctx.fenced_rejections,
                suspects=suspects,
                writer_violations=writer_violations,
                workload=self.workload,
            )
        finally:
            # Flush-on-exit, crash or not: an abandoned JournalWriter
            # strands up to fsync_every-1 buffered records.
            if writer is not None:
                writer.close()
            if store is not None:
                store.close()
            if store_dir is not None:
                shutil.rmtree(store_dir, ignore_errors=True)

    def _replay(self, device: _DiskFullFile | None, ctx: _RunContext, su_ids):
        """Rebuild from the journal and re-run the whole script, clean."""
        journal_source = (
            device.getvalue() if device is not None else ctx.journal_path
        )
        result = read_journal(journal_source)
        summary = summarize(result)
        ctx.note(
            f"journal: {summary.draws} draws, "
            f"{len(summary.phase2_rounds)} phase-2 barriers, "
            f"torn_tail={summary.torn_tail}"
        )
        rng, clock = replay_sources(
            result, self.seed, fallback_clock=lambda: FROZEN_CLOCK
        )
        transport = ChaosTransport()
        coordinator, _ = self._build(rng, transport, clock=clock)
        replay_ctx = _RunContext(
            coordinator=coordinator,
            mux=transport,
            rounds=self.rounds,
            notes=ctx.notes,
        )
        try:
            record = self._execute(replay_ctx, [], su_ids)
        finally:
            coordinator.close()
        ctx.note(
            f"replay: {rng.replayed_draws} draws from journal, "
            f"{rng.fallback_draws} from fallback"
        )
        return record, rng.replayed_draws, rng.fallback_draws
