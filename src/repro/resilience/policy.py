"""Unified retry / timeout / backoff policy engine.

Before this module, every layer hand-rolled its own failure handling:
the service broker retried a rejected cluster epoch once, the cluster
router looped ``max_attempts`` times around a shard call, the replica
set promoted on the first transport error.  Each loop had its own
(sometimes missing) backoff, no wall-clock budget, and no memory of a
link that had been failing for the last hundred calls.

This module centralises those decisions:

* :class:`RetryPolicy` — how many attempts, how much wall-clock budget,
  and which exception types are retryable, with **decorrelated-jitter**
  backoff (``sleep = min(cap, uniform(base, prev * 3))``) so a thundering
  herd of retries de-synchronises itself.
* :class:`CircuitBreaker` — per shard / per STP link.  After
  ``failure_threshold`` consecutive failures the circuit *opens* and
  calls fail fast with :class:`~repro.errors.CircuitOpenError` until
  ``reset_timeout_s`` passes; the first probe in *half-open* state
  decides whether it closes again.
* :class:`IdempotencyCache` — a bounded LRU keyed by caller-chosen
  idempotency keys, so a retried operation that actually succeeded the
  first time is served its original result instead of re-executing.
* :func:`run_with_policy` — the one retry loop.  Everything else in the
  tree should call this (the ``RES001`` audit rule flags hand-rolled
  sleep-loop retries outside this module).

Determinism: backoff jitter is drawn from a caller-supplied
:class:`~repro.crypto.rand.RandomSource`, and time/sleep are injectable,
so tests and the chaos harness run the full policy machinery with zero
real waiting and reproducible schedules.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from dataclasses import dataclass, replace

from repro.crypto.rand import DeterministicRandomSource, RandomSource
from repro.errors import CircuitOpenError, FencedError, RetryExhaustedError

__all__ = [
    "RetryPolicy",
    "NEVER_RETRYABLE",
    "decorrelated_jitter",
    "CircuitBreaker",
    "IdempotencyCache",
    "run_with_policy",
]

#: Exception types no policy may retry, regardless of its ``retryable``
#: tuple.  A :class:`~repro.errors.FencedError` means the caller's lease
#: is dead — retrying cannot resurrect it, and a policy sloppily
#: configured with ``retryable=(Exception,)`` must not hammer a shard
#: with a deposed writer's requests.
NEVER_RETRYABLE: tuple[type[BaseException], ...] = (FencedError,)


def _uniform(rng: RandomSource, low: float, high: float) -> float:
    """Uniform float in ``[low, high)`` from a bit-level RandomSource."""
    if high <= low:
        return low
    return low + (high - low) * (rng.randbits(53) / float(1 << 53))


def decorrelated_jitter(
    previous_s: float, base_s: float, cap_s: float, rng: RandomSource
) -> float:
    """Next backoff sleep: ``min(cap, uniform(base, previous * 3))``.

    The decorrelated-jitter scheme grows roughly exponentially but every
    step is randomised across the full band, so concurrent clients that
    failed together do not retry together.
    """
    if previous_s <= 0:
        previous_s = base_s
    return min(cap_s, _uniform(rng, base_s, previous_s * 3))


@dataclass(frozen=True)
class RetryPolicy:
    """Declarative description of one operation's failure handling.

    ``retryable`` is the tuple of exception types worth retrying;
    anything else propagates immediately (a malformed request does not
    get better with backoff).
    """

    max_attempts: int = 3
    base_backoff_s: float = 0.02
    backoff_cap_s: float = 1.0
    #: Total wall-clock budget across all attempts and sleeps; ``None``
    #: means attempts are the only limit.
    budget_s: float | None = None
    retryable: tuple[type[BaseException], ...] = (Exception,)

    def with_attempts(self, max_attempts: int) -> "RetryPolicy":
        return replace(self, max_attempts=max_attempts)

    def retries(self, exc: BaseException) -> bool:
        if isinstance(exc, NEVER_RETRYABLE):
            return False
        return isinstance(exc, self.retryable)


class CircuitBreaker:
    """Per-link failure accountant: closed → open → half-open → closed.

    *Closed* (healthy): calls pass through; consecutive failures are
    counted.  At ``failure_threshold`` the circuit *opens*: calls are
    refused with :class:`~repro.errors.CircuitOpenError` without touching
    the link, shedding load from a peer that is already down.  After
    ``reset_timeout_s`` one probe call is let through (*half-open*); its
    outcome closes or re-opens the circuit.

    The default threshold is deliberately lenient (a replica failover in
    ``cluster.router`` legitimately burns a few consecutive failures)
    — the breaker exists to stop *hundred*-call failure storms, not to
    second-guess the retry policy.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"

    def __init__(
        self,
        name: str = "",
        *,
        failure_threshold: int = 8,
        reset_timeout_s: float = 5.0,
        clock=time.monotonic,
        metrics=None,
    ) -> None:
        self.name = name
        self.failure_threshold = failure_threshold
        self.reset_timeout_s = reset_timeout_s
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self.trips = 0
        #: Optional :class:`repro.telemetry.MetricsRegistry`; when set,
        #: trips count into ``circuit_trips_total{circuit=name}`` and the
        #: current state is mirrored in ``circuit_open{circuit=name}``
        #: (1 = open, 0 = closed/half-open).
        self.metrics = metrics

    @property
    def state(self) -> str:
        if (
            self._state == self.OPEN
            and self._clock() - self._opened_at >= self.reset_timeout_s
        ):
            self._state = self.HALF_OPEN
        return self._state

    def before_call(self) -> None:
        """Gate a call; raises :class:`CircuitOpenError` when open."""
        if self.state == self.OPEN:
            raise CircuitOpenError(
                f"circuit {self.name or '<anonymous>'} is open "
                f"({self._consecutive_failures} consecutive failures)"
            )

    def _publish_state(self) -> None:
        if self.metrics is not None:
            self.metrics.gauge(
                "circuit_open", circuit=self.name or "anonymous"
            ).set(1.0 if self._state == self.OPEN else 0.0)

    def record_success(self) -> None:
        self._consecutive_failures = 0
        self._state = self.CLOSED
        self._publish_state()

    def record_failure(self) -> None:
        self._consecutive_failures += 1
        if self._state == self.HALF_OPEN:
            # The probe failed: straight back to open, fresh timeout.
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._trip()
        elif (
            self._state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._state = self.OPEN
            self._opened_at = self._clock()
            self._trip()

    def _trip(self) -> None:
        self.trips += 1
        if self.metrics is not None:
            self.metrics.counter(
                "circuit_trips_total", circuit=self.name or "anonymous"
            ).inc()
        self._publish_state()

    def reset(self) -> None:
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._publish_state()


class IdempotencyCache:
    """Bounded LRU of completed results keyed by idempotency key.

    ``get``/``put`` only — the *caller* decides what a key means (the
    broker uses request ids, so a request resolved once is never
    double-counted by a retried resolution).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def get(self, key: str, default=None):
        try:
            value = self._entries[key]
        except KeyError:
            self.misses += 1
            return default
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: str, value=None) -> None:
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


def run_with_policy(
    operation,
    policy: RetryPolicy,
    *,
    breaker: CircuitBreaker | None = None,
    rng=None,
    clock=time.monotonic,
    sleep=time.sleep,
    on_retry=None,
    idempotency_key: str | None = None,
    cache: IdempotencyCache | None = None,
    metrics=None,
    op: str = "operation",
):
    """Run ``operation()`` under ``policy`` — the canonical retry loop.

    * Checks the idempotency ``cache`` first (if given a key): a cached
      result short-circuits the call entirely.
    * Gates every attempt through ``breaker`` (if given); breaker trips
      raise :class:`~repro.errors.CircuitOpenError` immediately — an
      open circuit is not a retryable condition.
    * On a retryable failure sleeps a decorrelated-jitter backoff, then
      tries again, until attempts or the wall budget run out, then
      raises :class:`~repro.errors.RetryExhaustedError` chained to the
      last failure.
    * ``on_retry(attempt, exc, sleep_s)`` is called before each backoff
      — the chaos harness uses it to drive fault-plan countdowns.
    * ``metrics`` (a :class:`repro.telemetry.MetricsRegistry`) records
      ``retry_attempts_total{op=...}`` per retry and
      ``retry_exhausted_total{op=...}`` when the budget runs out.
    """
    if cache is not None and idempotency_key is not None:
        sentinel = object()
        cached = cache.get(idempotency_key, sentinel)
        if cached is not sentinel:
            return cached
    if rng is None:
        rng = DeterministicRandomSource(0)
    if metrics is not None:
        # Materialise the family at zero so a clean run still exposes
        # it — dashboards and the CI exposition grep rely on presence.
        metrics.counter("retry_attempts_total", op=op)
    started = clock()
    previous_sleep = 0.0
    last_exc: BaseException | None = None
    for attempt in range(1, policy.max_attempts + 1):
        if breaker is not None:
            breaker.before_call()
        try:
            result = operation()
        except BaseException as exc:
            if breaker is not None:
                breaker.record_failure()
            if not policy.retries(exc):
                raise
            last_exc = exc
            if attempt >= policy.max_attempts:
                break
            sleep_s = decorrelated_jitter(
                previous_sleep, policy.base_backoff_s, policy.backoff_cap_s, rng
            )
            if policy.budget_s is not None:
                remaining = policy.budget_s - (clock() - started)
                if remaining <= 0:
                    break
                sleep_s = min(sleep_s, remaining)
            previous_sleep = sleep_s
            if metrics is not None:
                metrics.counter("retry_attempts_total", op=op).inc()
            if on_retry is not None:
                on_retry(attempt, exc, sleep_s)
            if sleep_s > 0:
                sleep(sleep_s)
            continue
        if breaker is not None:
            breaker.record_success()
        if cache is not None and idempotency_key is not None:
            cache.put(idempotency_key, result)
        return result
    if metrics is not None:
        metrics.counter("retry_exhausted_total", op=op).inc()
    raise RetryExhaustedError(
        f"operation failed after {policy.max_attempts} attempts: {last_exc}"
    ) from last_exc
