"""Crash-recovery helpers: from a journal file back to a live deployment.

The recovery state machine (documented in ``docs/resilience.md``) is
deliberately simple because the journal makes it so:

1. **Read** the journal (:func:`load_journal`) — torn final record
   tolerated, anything worse is a typed
   :class:`~repro.errors.JournalCorruptError`.
2. **Summarise** what the crashed process had committed
   (:func:`summarize`) — completed phase-1/phase-2 barriers, epoch
   commits, promotions.
3. **Rebuild** the deployment from the same construction script, feeding
   it :func:`replay_sources` — a checked
   :class:`~repro.resilience.journal.ReplayRandomSource` over the
   journaled draw stream and a
   :class:`~repro.resilience.journal.ReplayClock` over the journaled
   clock stream.  Re-running the same code then reproduces the exact
   bytes of the crashed run up to its last durability barrier; the
   fallback RNG (seeded *differently* on purpose) only engages past the
   journal's end, so ``fallback_draws == 0`` is the proof that every
   replayed byte came from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rand import DeterministicRandomSource
from repro.resilience.journal import (
    JournalReadResult,
    ReplayClock,
    ReplayRandomSource,
    read_journal,
)

__all__ = ["RecoverySummary", "load_journal", "summarize", "replay_sources"]

#: Offset added to the original seed for the replay fallback RNG.  Any
#: value works; it must simply differ from the original seed so that a
#: replay silently leaking past the journal produces *visibly* different
#: bytes instead of accidentally matching.
FALLBACK_SEED_OFFSET = 7919


@dataclass(frozen=True)
class RecoverySummary:
    """What the journal says the crashed process had made durable."""

    draws: int
    clock_reads: int
    phase1_rounds: tuple[str, ...]
    phase2_rounds: tuple[str, ...]
    epoch_commits: tuple[str, ...]
    promotions: tuple[str, ...]
    pu_updates: int
    torn_tail: bool


def load_journal(source) -> JournalReadResult:
    """Read a journal from a path or bytes; torn tails are tolerated."""
    return read_journal(source)


def summarize(result: JournalReadResult) -> RecoverySummary:
    """Condense a journal into the recovery-relevant facts."""
    return RecoverySummary(
        draws=len(result.of_kind("draw")),
        clock_reads=len(result.of_kind("clock")),
        phase1_rounds=tuple(
            r.body.decode("utf-8") for r in result.of_kind("phase1")
        ),
        phase2_rounds=tuple(
            r.body.decode("utf-8") for r in result.of_kind("phase2")
        ),
        epoch_commits=tuple(
            r.body.decode("utf-8") for r in result.of_kind("epoch-commit")
        ),
        promotions=tuple(
            r.body.decode("utf-8") for r in result.of_kind("promote")
        ),
        pu_updates=len(result.of_kind("pu-update")),
        torn_tail=result.torn,
    )


def replay_sources(
    result: JournalReadResult,
    seed: int,
    fallback_clock=None,
) -> tuple[ReplayRandomSource, ReplayClock]:
    """The RNG and clock a recovering deployment should be rebuilt with.

    ``seed`` is the *original* deployment seed; the fallback RNG is
    seeded at ``seed + FALLBACK_SEED_OFFSET`` so journal bytes and
    fallback bytes can never coincide by construction.
    """
    rng = ReplayRandomSource(
        result.draws(),
        fallback=DeterministicRandomSource(seed + FALLBACK_SEED_OFFSET),
    )
    clock = ReplayClock(
        result.clocks(),
        fallback=fallback_clock if fallback_clock is not None else (lambda: 0.0),
    )
    return rng, clock
