"""Crash-recovery helpers: from a journal file back to a live deployment.

The recovery state machine (documented in ``docs/resilience.md``) is
deliberately simple because the journal makes it so:

1. **Read** the journal (:func:`load_journal`) — torn final record
   tolerated, anything worse is a typed
   :class:`~repro.errors.JournalCorruptError`.
2. **Summarise** what the crashed process had committed
   (:func:`summarize`) — completed phase-1/phase-2 barriers, epoch
   commits, promotions.
3. **Rebuild** the deployment from the same construction script, feeding
   it :func:`replay_sources` — a checked
   :class:`~repro.resilience.journal.ReplayRandomSource` over the
   journaled draw stream and a
   :class:`~repro.resilience.journal.ReplayClock` over the journaled
   clock stream.  Re-running the same code then reproduces the exact
   bytes of the crashed run up to its last durability barrier; the
   fallback RNG (seeded *differently* on purpose) only engages past the
   journal's end, so ``fallback_draws == 0`` is the proof that every
   replayed byte came from the journal.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rand import DeterministicRandomSource
from repro.crypto.serialization import decode_int
from repro.errors import TornCheckpointError
from repro.resilience.journal import (
    JournalReadResult,
    ReplayClock,
    ReplayRandomSource,
    read_journal,
)

__all__ = [
    "RecoverySummary",
    "WriterViolation",
    "check_exactly_one_writer",
    "load_journal",
    "summarize",
    "replay_sources",
    "checkpoint_marker",
    "split_checkpoint_tail",
]

#: Offset added to the original seed for the replay fallback RNG.  Any
#: value works; it must simply differ from the original seed so that a
#: replay silently leaking past the journal produces *visibly* different
#: bytes instead of accidentally matching.
FALLBACK_SEED_OFFSET = 7919


@dataclass(frozen=True)
class RecoverySummary:
    """What the journal says the crashed process had made durable."""

    draws: int
    clock_reads: int
    phase1_rounds: tuple[str, ...]
    phase2_rounds: tuple[str, ...]
    epoch_commits: tuple[str, ...]
    promotions: tuple[str, ...]
    fences: tuple[str, ...]
    pu_updates: int
    torn_tail: bool


def load_journal(source) -> JournalReadResult:
    """Read a journal from a path or bytes; torn tails are tolerated."""
    return read_journal(source)


def summarize(result: JournalReadResult) -> RecoverySummary:
    """Condense a journal into the recovery-relevant facts."""
    return RecoverySummary(
        draws=len(result.of_kind("draw")),
        clock_reads=len(result.of_kind("clock")),
        phase1_rounds=tuple(
            r.body.decode("utf-8") for r in result.of_kind("phase1")
        ),
        phase2_rounds=tuple(
            r.body.decode("utf-8") for r in result.of_kind("phase2")
        ),
        epoch_commits=tuple(
            r.body.decode("utf-8") for r in result.of_kind("epoch-commit")
        ),
        promotions=tuple(
            r.body.decode("utf-8") for r in result.of_kind("promote")
        ),
        fences=tuple(
            r.body.decode("utf-8") for r in result.of_kind("fence")
        ),
        pu_updates=len(result.of_kind("pu-update")),
        torn_tail=result.torn,
    )


@dataclass(frozen=True)
class WriterViolation:
    """One journaled epoch commit performed under a superseded lease."""

    shard_id: str
    epoch_id: int
    commit_token: int
    fence_token: int

    def __str__(self) -> str:
        return (
            f"shard {self.shard_id}: epoch {self.epoch_id} committed under "
            f"token {self.commit_token} after fence {self.fence_token}"
        )


def check_exactly_one_writer(
    result: JournalReadResult,
    store=None,
) -> tuple[WriterViolation, ...]:
    """Audit the journal for commits performed by a deposed primary.

    Walks the record stream in append order, tracking the current fence
    token per shard (``fence`` records, body ``shard:token:reason``).
    Every ``writer`` provenance record (body ``shard:epoch:token``) must
    carry a token **at least** the shard's current fence — a lower token
    means a zombie primary committed an epoch after its successor was
    fenced in, which is exactly the split-brain write the protocol
    exists to make impossible.

    When ``store`` is given, the durably persisted lease
    (``fence/<shard>`` checkpoint scope, big-endian token) must also be
    no older than the journal's final fence — a store that lags the
    journal would re-issue a dead token on cold start.
    """
    current: dict[str, int] = {}
    violations: list[WriterViolation] = []
    for record in result.records:
        if record.kind == "fence":
            shard_id, token, _reason = record.body.decode("utf-8").split(":", 2)
            current[shard_id] = max(current.get(shard_id, 0), int(token))
        elif record.kind == "writer":
            shard_id, epoch_id, token = record.body.decode("utf-8").split(":", 2)
            fence = current.get(shard_id, 0)
            if int(token) < fence:
                violations.append(
                    WriterViolation(
                        shard_id=shard_id,
                        epoch_id=int(epoch_id),
                        commit_token=int(token),
                        fence_token=fence,
                    )
                )
    if store is not None:
        for shard_id, fence in current.items():
            blob = store.get_checkpoint(f"fence/{shard_id}")
            stored = int.from_bytes(blob, "big") if blob else 0
            if stored < fence:
                violations.append(
                    WriterViolation(
                        shard_id=shard_id,
                        epoch_id=-1,
                        commit_token=stored,
                        fence_token=fence,
                    )
                )
    return tuple(violations)


def replay_sources(
    result: JournalReadResult,
    seed: int,
    fallback_clock=None,
) -> tuple[ReplayRandomSource, ReplayClock]:
    """The RNG and clock a recovering deployment should be rebuilt with.

    ``seed`` is the *original* deployment seed; the fallback RNG is
    seeded at ``seed + FALLBACK_SEED_OFFSET`` so journal bytes and
    fallback bytes can never coincide by construction.
    """
    rng = ReplayRandomSource(
        result.draws(),
        fallback=DeterministicRandomSource(seed + FALLBACK_SEED_OFFSET),
    )
    clock = ReplayClock(
        result.clocks(),
        fallback=fallback_clock if fallback_clock is not None else (lambda: 0.0),
    )
    return rng, clock


def checkpoint_marker(result: JournalReadResult) -> tuple[int, int] | None:
    """Decode a leading ``checkpoint`` marker record, if the file has one.

    A checkpoint rewrites the journal to ``header + marker``, so a
    marker can only ever sit at record 0; its body is
    ``encode_int(checkpoint_id) + encode_int(records_consumed)``.
    """
    if not result.records or result.records[0].kind != "checkpoint":
        return None
    body = result.records[0].body
    checkpoint_id, offset = decode_int(body, 0)
    records_consumed, _ = decode_int(body, offset)
    return checkpoint_id, records_consumed


def split_checkpoint_tail(
    result: JournalReadResult,
    checkpoint_id: int | None,
    records_consumed: int = 0,
) -> JournalReadResult:
    """The journal records *not* folded into the last committed checkpoint.

    ``checkpoint_id`` / ``records_consumed`` come from the store's
    durable checkpoint meta (``None`` when the store has never
    checkpointed).  The checkpoint protocol commits its meta to the
    store *before* renaming the compacted journal into place, so every
    crash point lands in exactly one of three recoverable states:

    ==========================  =======================================
    journal state               tail
    ==========================  =======================================
    no marker, meta ``None``    every record (store predates checkpoints)
    marker id == meta id        records after the marker (normal case)
    marker absent / older       ``records[records_consumed:]`` — the
                                meta committed but the rename did not
                                land; the consumed prefix is already in
                                the store
    ==========================  =======================================

    Any other combination (a marker the store never committed, or a
    journal shorter than the consumed count) is impossible under the
    protocol and raises :class:`~repro.errors.TornCheckpointError`.
    """
    marker = checkpoint_marker(result)
    if checkpoint_id is None:
        if marker is not None:
            raise TornCheckpointError(
                f"journal carries checkpoint {marker[0]} but the store has "
                "no checkpoint meta — cross-wired store and journal files?"
            )
        return result
    if marker is not None:
        marker_id, _ = marker
        if marker_id > checkpoint_id:
            raise TornCheckpointError(
                f"journal marker {marker_id} is newer than the store's "
                f"checkpoint {checkpoint_id} — the store commit never "
                "precedes the rename, so this journal is not this store's"
            )
        if marker_id == checkpoint_id:
            return JournalReadResult(
                records=result.records[1:],
                torn=result.torn,
                valid_bytes=result.valid_bytes,
            )
        # marker_id < checkpoint_id: the meta committed against this
        # (older) file but the compacted file never landed; fall through
        # to skipping the consumed prefix, which includes this marker.
    if len(result.records) < records_consumed:
        raise TornCheckpointError(
            f"journal holds {len(result.records)} records but checkpoint "
            f"{checkpoint_id} consumed {records_consumed} — the journal "
            "shrank without a matching marker"
        )
    return JournalReadResult(
        records=result.records[records_consumed:],
        torn=result.torn,
        valid_bytes=result.valid_bytes,
    )
