"""repro.resilience — crash-safe journaling, retry policies, chaos testing.

Three sub-systems, each usable alone:

* :mod:`repro.resilience.journal` — a write-ahead **epoch journal**:
  append-only, CRC-framed, fsync-batched records (framed with the
  :mod:`repro.pisa.storage` helpers) capturing every randomness draw,
  clock read, and protocol-step marker.  A crashed SDC/shard/broker
  process recovers by *replay*: re-running the same code with the
  journaled draw/clock streams reproduces the exact bytes the
  uninterrupted run would have produced.
* :mod:`repro.resilience.policy` — the **unified retry/timeout/backoff
  engine**: decorrelated-jitter backoff, per-operation wall budgets,
  idempotency keys, and a per-link circuit breaker.  The service broker
  and the cluster router both route their retries through it; the
  ``RES001`` audit rule flags hand-rolled retry loops elsewhere.
* :mod:`repro.resilience.chaos` — a **deterministic chaos harness**:
  seeded fault plans (process kill, transport drop/delay/duplicate/
  reorder, journal disk-full, STP outage with queue-and-drain) that
  assert transcript equality and license validity after every injected
  schedule.  ``repro chaos`` runs it from the command line.

See ``docs/resilience.md`` for the journal format, the recovery state
machine, the retry policy matrix, and the chaos plan schema.
"""

from __future__ import annotations

from repro.resilience.journal import (
    EpochJournal,
    JournaledClock,
    JournalingRandomSource,
    JournalReadResult,
    JournalRecord,
    JournalWriter,
    ReplayClock,
    ReplayRandomSource,
    read_journal,
)
from repro.resilience.policy import (
    CircuitBreaker,
    IdempotencyCache,
    RetryPolicy,
    decorrelated_jitter,
    run_with_policy,
)

__all__ = [
    "EpochJournal",
    "JournalWriter",
    "JournalRecord",
    "JournalReadResult",
    "read_journal",
    "JournalingRandomSource",
    "ReplayRandomSource",
    "JournaledClock",
    "ReplayClock",
    "RetryPolicy",
    "CircuitBreaker",
    "IdempotencyCache",
    "decorrelated_jitter",
    "run_with_policy",
]
