"""Crash-safe write-ahead epoch journal.

PISA's two-server protocol only yields a valid license when every
SDC↔STP round completes with its transcript intact, and the transcript
is a deterministic function of three streams: the inbound messages, the
randomness draws, and the clock reads.  Inbound messages are replayable
by construction (clients re-send); this module makes the other two
streams durable, so a crashed process *replays to the exact bytes* the
uninterrupted run would have produced.

Format
------
A journal file is::

    b"PISA-JOURNAL-v1\\n"  header
    frame*                 CRC frames (see repro.pisa.storage.frame_payload)

Each frame's payload is one record::

    encode_bytes(kind utf-8) + encode_bytes(body)

Record kinds written by the integrated runtime:

=============  ==========================================================
``draw``       one RNG draw: ``encode_int(bits) + encode_int(value)``
``clock``      one clock read: 8-byte IEEE-754 big-endian float
``pu-update``  inbound PU update message bytes
``phase1``     phase-1 randomness committed for a round (durability
               barrier follows — the draws are on disk before the
               scatter begins)
``phase2``     phase-2 randomness (signature obfuscator, η, the license
               clock) committed for a round, again behind a barrier
``epoch-commit``  a shard committed an epoch
``promote``    a replica-set failover promoted the standby
``epoch-dispatch``  the broker dispatched one batched epoch
``checkpoint`` compaction marker opening a checkpointed journal:
               ``encode_int(checkpoint_id) + encode_int(consumed)``
               (written by :class:`repro.store.checkpoint.Checkpointer`,
               always record 0 of the compacted file)
``note``       free-form harness/operator annotation
=============  ==========================================================

Durability model
----------------
Appends are buffered and fsynced every ``fsync_every`` records (default
256) — the paper-scale hot path must not pay a disk flush per
ciphertext — but the
protocol integration calls :meth:`JournalWriter.barrier` at the two
points that matter (after each phase's randomness is drawn, before the
first message derived from it can leave the process).  A crash between
barriers loses only records the outside world has seen no consequence
of.  :meth:`JournalWriter.simulate_crash` models exactly that: it
discards the unfsynced tail, like a kernel losing its page cache.

Reading tolerates a torn final record (the normal signature of a crash
mid-append) and reports it via :attr:`JournalReadResult.torn`;
corruption *before* the tail, or any corruption under ``strict=True``,
raises :class:`~repro.errors.JournalCorruptError`.
"""

from __future__ import annotations

import errno
import io
import os
import struct
import threading
import time
from dataclasses import dataclass

from repro.crypto.rand import RandomSource
from repro.crypto.serialization import (
    decode_bytes,
    decode_int,
    encode_bytes,
    encode_int,
)
from repro.errors import (
    IntegrityError,
    JournalCorruptError,
    JournalDiskFullError,
    JournalError,
    JournalReplayError,
)
from repro.pisa.storage import frame_payload, unframe_payload

__all__ = [
    "JOURNAL_HEADER",
    "JournalRecord",
    "JournalReadResult",
    "JournalWriter",
    "read_journal",
    "EpochJournal",
    "JournalingRandomSource",
    "ReplayRandomSource",
    "JournaledClock",
    "ReplayClock",
]

JOURNAL_HEADER = b"PISA-JOURNAL-v1\n"

_CLOCK = struct.Struct(">d")


@dataclass(frozen=True)
class JournalRecord:
    """One decoded journal record."""

    seq: int
    kind: str
    body: bytes


@dataclass(frozen=True)
class JournalReadResult:
    """Everything a recovery pass learns from one journal file."""

    records: tuple[JournalRecord, ...]
    #: True when the file ends in a torn (partially written) record —
    #: the normal signature of a crash mid-append.
    torn: bool
    #: Offset of the first byte past the last intact record.
    valid_bytes: int

    def of_kind(self, kind: str) -> tuple[JournalRecord, ...]:
        return tuple(r for r in self.records if r.kind == kind)

    def draws(self) -> tuple[tuple[int, int], ...]:
        """The journaled RNG stream as ``(bits, value)`` pairs."""
        out = []
        for record in self.of_kind("draw"):
            bits, offset = decode_int(record.body, 0)
            value, _ = decode_int(record.body, offset)
            out.append((bits, value))
        return tuple(out)

    def clocks(self) -> tuple[float, ...]:
        """The journaled clock stream, in read order."""
        return tuple(
            _CLOCK.unpack(record.body)[0] for record in self.of_kind("clock")
        )


class JournalWriter:
    """Append-only, CRC-framed, fsync-batched journal file.

    Parameters
    ----------
    path:
        Journal file path; created (with header) if absent, appended to
        if present.  Pass ``fileobj`` instead to write to an arbitrary
        binary file object (the chaos harness uses this to model a
        filling disk).
    fsync_every:
        Flush-and-fsync after this many appended records.  ``barrier()``
        forces one regardless, so this only bounds how much un-barriered
        tail a crash can lose — correctness never depends on it.  The
        default of 256 keeps the paper-scale journal overhead under the
        15 % budget measured by ``bench_resilience_overhead`` (per-draw
        fsyncs cost ~40 % round latency; see ``BENCH_resilience.json``).
    """

    def __init__(self, path=None, *, fileobj=None, fsync_every: int = 256) -> None:
        if (path is None) == (fileobj is None):
            raise JournalError("pass exactly one of path / fileobj")
        if fsync_every < 1:
            raise JournalError("fsync_every must be positive")
        self.fsync_every = fsync_every
        self._path = os.fspath(path) if path is not None else None
        if fileobj is not None:
            self._fh = fileobj
            fresh = True
        else:
            fresh = not (
                os.path.exists(self._path) and os.path.getsize(self._path) > 0
            )
            self._fh = open(self._path, "ab")
        self._closed = False
        # Appends can race between the protocol thread and the service
        # broker's epoch loop; one lock serialises the record stream.
        self._mutex = threading.Lock()
        self._seq = 0
        self._since_sync = 0
        #: Bytes known durable (fsynced); everything past this offset is
        #: lost by :meth:`simulate_crash`.
        self._synced_offset = 0
        if fresh:
            self._write(JOURNAL_HEADER)
            self._sync()

    # -- low-level I/O -----------------------------------------------------------

    def _write(self, data: bytes) -> None:
        try:
            self._fh.write(data)
        except OSError as exc:
            if exc.errno == errno.ENOSPC:
                raise JournalDiskFullError(
                    "journal device is full; free space or swap the device"
                ) from exc
            raise JournalError(f"journal append failed: {exc}") from exc

    def _sync(self) -> None:
        self._fh.flush()
        fileno = getattr(self._fh, "fileno", None)
        if fileno is not None:
            try:
                os.fsync(fileno())
            except (OSError, io.UnsupportedOperation):
                pass  # in-memory file objects have nothing to sync
        self._since_sync = 0
        self._synced_offset = self._fh.tell()

    # -- the public API ----------------------------------------------------------

    def append(self, kind: str, body: bytes = b"") -> int:
        """Append one record; returns its sequence number."""
        with self._mutex:
            if self._closed:
                raise JournalError("journal writer is closed")
            payload = encode_bytes(kind.encode("utf-8")) + encode_bytes(body)
            self._write(frame_payload(payload))
            seq = self._seq
            self._seq += 1
            self._since_sync += 1
            if self._since_sync >= self.fsync_every:
                self._sync()
            return seq

    def barrier(self) -> None:
        """Force the buffered tail onto the device (durability point)."""
        with self._mutex:
            if self._closed:
                raise JournalError("journal writer is closed")
            self._sync()

    def swap_device(self, path=None, *, fileobj=None) -> None:
        """Re-open on a fresh device after a disk-full failure.

        The old handle is abandoned (its tail may be lost); appends
        continue on the new device.  Recovery reads both files in order.
        """
        try:
            self._fh.close()
        except OSError:
            pass
        replacement = JournalWriter(path, fileobj=fileobj,
                                    fsync_every=self.fsync_every)
        self._fh = replacement._fh
        self._path = replacement._path
        self._synced_offset = replacement._synced_offset
        self._since_sync = 0

    def simulate_crash(self) -> None:
        """Model a process kill: drop every record since the last fsync.

        Truncates the file to the last durable offset and closes the
        writer — exactly the on-disk state a recovering process finds.
        Only meaningful for path-backed journals.
        """
        with self._mutex:
            if self._path is None:
                raise JournalError("simulate_crash needs a path-backed journal")
            self._fh.flush()
            with open(self._path, "r+b") as fh:
                fh.truncate(self._synced_offset)
            self._fh.close()
            self._closed = True

    def close(self) -> None:
        with self._mutex:
            if not self._closed:
                self._sync()
                try:
                    self._fh.close()
                except OSError:
                    pass
                self._closed = True

    def __enter__(self) -> "JournalWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def records_written(self) -> int:
        return self._seq

    @property
    def path(self) -> str | None:
        """The backing file path (``None`` for fileobj-backed writers)."""
        return self._path


def read_journal(source, strict: bool = False) -> JournalReadResult:
    """Decode a journal from a path or a bytes blob.

    A torn or corrupt *final* record is tolerated by default (reported
    via :attr:`JournalReadResult.torn`); under ``strict=True``, or when
    intact frames follow the damage (mid-file corruption), a
    :class:`~repro.errors.JournalCorruptError` is raised.
    """
    if isinstance(source, (bytes, bytearray)):
        raw = bytes(source)
    else:
        with open(os.fspath(source), "rb") as fh:
            raw = fh.read()
    if not raw.startswith(JOURNAL_HEADER):
        raise JournalCorruptError("missing journal header")
    offset = len(JOURNAL_HEADER)
    records: list[JournalRecord] = []
    torn = False
    while offset < len(raw):
        try:
            payload, next_offset = unframe_payload(raw, offset)
        except IntegrityError as exc:
            if strict:
                raise JournalCorruptError(
                    f"corrupt record {len(records)} at offset {offset}: {exc}"
                ) from exc
            # Tolerate damage only if nothing intact follows it — scan
            # ahead for a parseable frame to distinguish a torn tail
            # from mid-file corruption.
            if _intact_frame_follows(raw, offset + 1):
                raise JournalCorruptError(
                    f"mid-journal corruption at offset {offset} "
                    f"(record {len(records)})"
                ) from exc
            torn = True
            break
        try:
            kind_raw, body_offset = decode_bytes(payload, 0)
            body, end = decode_bytes(payload, body_offset)
            kind = kind_raw.decode("utf-8")
        except Exception as exc:
            raise JournalCorruptError(
                f"record {len(records)} payload is malformed: {exc}"
            ) from exc
        if end != len(payload):
            raise JournalCorruptError(
                f"record {len(records)} has trailing payload bytes"
            )
        records.append(JournalRecord(seq=len(records), kind=kind, body=body))
        offset = next_offset
    return JournalReadResult(
        records=tuple(records), torn=torn, valid_bytes=offset
    )


def _intact_frame_follows(raw: bytes, start: int) -> bool:
    """True when a parseable CRC frame exists anywhere past ``start``."""
    probe = start
    while True:
        probe = raw.find(b"PF", probe)
        if probe < 0:
            return False
        try:
            unframe_payload(raw, probe)
            return True
        except IntegrityError:
            probe += 1


class EpochJournal:
    """Protocol-level facade over a :class:`JournalWriter`.

    The coordinator, shards, replica sets, and broker all log through
    one of these; it owns the record schema so the writer stays a dumb
    framed-append device.
    """

    def __init__(self, writer: JournalWriter) -> None:
        self.writer = writer

    # -- the two replayable streams ---------------------------------------------

    def record_draw(self, bits: int, value: int) -> None:
        self.writer.append("draw", encode_int(bits) + encode_int(value))

    def record_clock(self, value: float) -> None:
        self.writer.append("clock", _CLOCK.pack(value))

    # -- protocol step markers ---------------------------------------------------

    def phase1_committed(self, round_id: str) -> None:
        """Phase-1 randomness is drawn; barrier before the scatter."""
        self.writer.append("phase1", round_id.encode("utf-8"))
        self.writer.barrier()

    def phase2_committed(self, round_id: str) -> None:
        """Phase-2 randomness + license clock are drawn; barrier."""
        self.writer.append("phase2", round_id.encode("utf-8"))
        self.writer.barrier()

    def pu_update(self, message_bytes: bytes) -> None:
        self.writer.append("pu-update", message_bytes)

    def epoch_commit(self, shard_id: str, epoch_id: int) -> None:
        self.writer.append(
            "epoch-commit", f"{shard_id}:{epoch_id}".encode("utf-8")
        )

    def promote(self, shard_id: str, resumed_epoch: int) -> None:
        self.writer.append(
            "promote", f"{shard_id}:{resumed_epoch}".encode("utf-8")
        )

    def fence(self, shard_id: str, token: int, reason: str) -> None:
        """A new lease was issued: every lower token for the shard is dead.

        Barriered — the fence must be durable *before* the successor
        serves, or a crash between promote and fsync could replay a
        world where the zombie's lease is still current.
        """
        self.writer.append(
            "fence", f"{shard_id}:{token}:{reason}".encode("utf-8")
        )
        self.writer.barrier()

    def writer_commit(self, shard_id: str, epoch_id: int, token: int) -> None:
        """Provenance for one epoch commit: *which lease* performed it.

        Kept separate from ``epoch-commit`` (whose ``shard:epoch`` body
        is parsed by cold-start tail recovery) so the exactly-one-writer
        checker can attribute commits to leases without changing the
        recovery wire format.
        """
        self.writer.append(
            "writer", f"{shard_id}:{epoch_id}:{token}".encode("utf-8")
        )

    def epoch_dispatch(self, epoch_id: int, request_ids: tuple[str, ...]) -> None:
        body = ",".join(request_ids).encode("utf-8")
        self.writer.append("epoch-dispatch", encode_int(epoch_id) + body)

    def note(self, text: str, body: bytes = b"") -> None:
        self.writer.append("note", text.encode("utf-8") + b"\x00" + body)

    def barrier(self) -> None:
        self.writer.barrier()

    def close(self) -> None:
        self.writer.close()

    def __enter__(self) -> "EpochJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        # Flush-on-exit mirrors JournalWriter: leaving the block (even
        # via an exception) must not strand up to fsync_every-1 records
        # in the userspace buffer.
        self.close()


class JournalingRandomSource(RandomSource):
    """Wraps any :class:`~repro.crypto.rand.RandomSource`, journaling draws.

    Every ``randbits`` call — the single primitive all higher-level
    sampling reduces to — is logged as a ``draw`` record *after* the
    value is produced, so the journal is exactly the stream a replay
    needs.
    """

    def __init__(self, inner: RandomSource, journal: EpochJournal) -> None:
        self._inner = inner
        self._journal = journal
        self.draws_journaled = 0

    def randbits(self, bits: int) -> int:
        value = self._inner.randbits(bits)
        self._journal.record_draw(bits, value)
        self.draws_journaled += 1
        return value


class ReplayRandomSource(RandomSource):
    """Serves journaled draws in order, then falls through to a live RNG.

    Replay is *checked*: a request for a different bit-width than the
    journal recorded means the recovering code diverged from the crashed
    code path, and raises :class:`~repro.errors.JournalReplayError`
    rather than silently desynchronizing the transcript.
    """

    def __init__(
        self, draws, fallback: RandomSource | None = None
    ) -> None:
        self._draws = list(draws)
        self._cursor = 0
        self._fallback = fallback
        self.replayed_draws = 0
        self.fallback_draws = 0

    def randbits(self, bits: int) -> int:
        if self._cursor < len(self._draws):
            recorded_bits, value = self._draws[self._cursor]
            if recorded_bits != bits:
                raise JournalReplayError(
                    f"replay divergence at draw {self._cursor}: journal has "
                    f"{recorded_bits}-bit draw, code asked for {bits} bits"
                )
            self._cursor += 1
            self.replayed_draws += 1
            return value
        if self._fallback is None:
            raise JournalReplayError(
                "journal exhausted and no fallback RNG configured"
            )
        self.fallback_draws += 1
        return self._fallback.randbits(bits)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._draws)


class JournaledClock:
    """A clock callable whose every reading is journaled."""

    def __init__(self, journal: EpochJournal, base=time.time) -> None:
        self._journal = journal
        self._base = base

    def __call__(self) -> float:
        value = self._base()
        self._journal.record_clock(value)
        return value


class ReplayClock:
    """Replays journaled clock readings, then falls through to a base."""

    def __init__(self, values, fallback=time.time) -> None:
        self._values = list(values)
        self._cursor = 0
        self._fallback = fallback
        self.replayed_reads = 0
        self.fallback_reads = 0

    def __call__(self) -> float:
        if self._cursor < len(self._values):
            value = self._values[self._cursor]
            self._cursor += 1
            self.replayed_reads += 1
            return value
        self.fallback_reads += 1
        return self._fallback()
