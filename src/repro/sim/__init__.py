"""Discrete-event simulation of a PISA deployment at service scale.

The protocol benchmarks measure one request in isolation; a real SDC
serves a *population* — SUs arriving stochastically, PUs switching
channels (§VI-A cites 2.3-2.7 virtual switches/hour per viewer), and a
single crypto-bound server queueing it all.  This subpackage couples

* the measured per-phase costs (:mod:`repro.analysis.scaling`),
* the wire sizes and latency models (:mod:`repro.net`), and
* the actual WATCH decision logic (grant/deny comes from the real
  plaintext oracle on the scenario's geometry)

into an event-driven simulator answering capacity questions: request
latency distribution, server utilisation, and the arrival rate at which
the SDC saturates.
"""

from repro.sim.costmodel import PhaseCosts, ServiceCostModel
from repro.sim.events import EventQueue, ScheduledEvent
from repro.sim.simulator import DeploymentSimulator, SimulationReport
from repro.sim.workload import PoissonArrivals, PuSwitchProcess, WorkloadConfig

__all__ = [
    "PhaseCosts",
    "ServiceCostModel",
    "EventQueue",
    "ScheduledEvent",
    "DeploymentSimulator",
    "SimulationReport",
    "PoissonArrivals",
    "PuSwitchProcess",
    "WorkloadConfig",
]
