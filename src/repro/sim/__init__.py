"""Discrete-event simulation of a PISA deployment at service scale.

The protocol benchmarks measure one request in isolation; a real SDC
serves a *population* — SUs arriving stochastically, PUs switching
channels (§VI-A cites 2.3-2.7 virtual switches/hour per viewer), and a
single crypto-bound server queueing it all.  This subpackage couples

* the measured per-phase costs (:mod:`repro.analysis.scaling`),
* the wire sizes and latency models (:mod:`repro.net`), and
* the actual WATCH decision logic (grant/deny comes from the real
  plaintext oracle on the scenario's geometry)

into an event-driven simulator answering capacity questions: request
latency distribution, server utilisation, and the arrival rate at which
the SDC saturates.

Since PR 10 it is also the system's **workload engine**: named traffic
models (:mod:`repro.sim.traffic`), the tiered CBRS regulatory scenario
(:mod:`repro.sim.cbrs`), and the scenario registry
(:mod:`repro.sim.registry`) that ``serve-loadtest --scenario/--workload``
and the chaos harness drive.
"""

from repro.sim.cbrs import CbrsConfig, TieredAdmission, build_cbrs_scenario
from repro.sim.costmodel import (
    MeasuredRound,
    PhaseCosts,
    ServiceCostModel,
    load_measured_round,
    paper_profile,
)
from repro.sim.events import EventQueue, ScheduledEvent, SimClock
from repro.sim.registry import BuiltScenario, build_named_scenario, scenario_names
from repro.sim.simulator import DeploymentSimulator, SimulationReport
from repro.sim.traffic import (
    ArrivalEvent,
    ArrivalSchedule,
    DiurnalTraffic,
    FlashCrowdTraffic,
    PoissonTraffic,
    PuChurnModel,
    RandomWaypointMobility,
    WorkloadSpec,
    build_schedule,
    resolve_workload,
    workload_names,
)
from repro.sim.workload import PoissonArrivals, PuSwitchProcess, WorkloadConfig

__all__ = [
    "PhaseCosts",
    "ServiceCostModel",
    "MeasuredRound",
    "load_measured_round",
    "paper_profile",
    "EventQueue",
    "ScheduledEvent",
    "SimClock",
    "DeploymentSimulator",
    "SimulationReport",
    "PoissonArrivals",
    "PuSwitchProcess",
    "WorkloadConfig",
    "ArrivalEvent",
    "ArrivalSchedule",
    "PoissonTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "PuChurnModel",
    "RandomWaypointMobility",
    "WorkloadSpec",
    "build_schedule",
    "resolve_workload",
    "workload_names",
    "CbrsConfig",
    "TieredAdmission",
    "build_cbrs_scenario",
    "BuiltScenario",
    "build_named_scenario",
    "scenario_names",
]
