"""Scenario registry: named regulatory deployments for the service stack.

``LoadtestConfig.scenario`` and ``repro serve-loadtest --scenario`` name
an entry here.  Each entry builds a concrete deployment *and* whatever
broker-side policy it implies — today that is the plain UHF
TV-whitespace scenario the paper evaluates, and the tiered CBRS mapping
(:mod:`repro.sim.cbrs`).

The crucial invariant: a built scenario always carries the plain
``ScenarioConfig`` it was derived from, because socket-plane workers
reconstruct the WATCH environment from that config alone
(``dataclasses.asdict`` over the wire).  Anything a registry entry adds
beyond the base config — tier maps, admission budgets — must therefore
live broker-side only.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.sim.cbrs import CbrsConfig, build_cbrs_scenario
from repro.telemetry.metrics import MetricsRegistry
from repro.watch.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "SCENARIO_UHF",
    "SCENARIO_CBRS_TIERED",
    "BuiltScenario",
    "scenario_names",
    "build_named_scenario",
]

SCENARIO_UHF = "uhf"
SCENARIO_CBRS_TIERED = "cbrs-tiered"

_NAMES = (SCENARIO_UHF, SCENARIO_CBRS_TIERED)


@dataclass(frozen=True)
class BuiltScenario:
    """A registry build: deployment plus broker-side policy inputs."""

    name: str
    scenario: Scenario
    #: The plain config socket workers rebuild the environment from.
    scenario_config: ScenarioConfig
    #: SU id -> tier, or None when the scenario has no tiering.
    tier_of: dict[str, str] | None = None
    #: Concurrent-authorization budget (tiered scenarios only).
    capacity: int = 0

    def admission(self, metrics: MetricsRegistry | None = None):
        """A fresh TieredAdmission, or None for untiered scenarios."""
        if self.tier_of is None:
            return None
        from repro.sim.cbrs import TieredAdmission

        return TieredAdmission(self.tier_of, self.capacity, metrics)


def scenario_names() -> tuple[str, ...]:
    return _NAMES


def build_named_scenario(
    name: str,
    *,
    seed: int = 0,
    num_sus: int = 1,
    gaa_capacity: int = 0,
) -> BuiltScenario:
    """Build a registry scenario at service scale.

    ``seed``/``num_sus`` follow the loadtest convention (the builders
    enroll ``su-0`` … ``su-{n-1}``).  ``gaa_capacity`` overrides the
    WATCH-derived budget for tiered scenarios; 0 derives it.
    """
    config = ScenarioConfig(seed=seed, num_sus=max(num_sus, 1))
    if name == SCENARIO_UHF:
        return BuiltScenario(
            name=name,
            scenario=build_scenario(config),
            scenario_config=config,
        )
    if name == SCENARIO_CBRS_TIERED:
        built = build_cbrs_scenario(
            CbrsConfig(base=config, gaa_capacity=gaa_capacity)
        )
        return BuiltScenario(
            name=name,
            scenario=built.scenario,
            scenario_config=config,
            tier_of=built.tier_of,
            capacity=built.capacity,
        )
    raise ConfigurationError(
        f"unknown scenario {name!r} (known: {', '.join(_NAMES)})"
    )
