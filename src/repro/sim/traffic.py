"""Deterministic, seedable traffic models — the workload engine's core.

The seed simulator sampled arrivals with ad-hoc numpy generators; this
module replaces that with a family of *traffic models* whose every draw
funnels through the one :class:`~repro.crypto.rand.RandomSource`
interface the rest of the stack already journals.  A workload is
therefore byte-replayable: building the same schedule twice from the
same seed yields the identical event tuple (asserted by
:meth:`ArrivalSchedule.digest`), and a journaled RandomSource can
reproduce a production run's arrival process offline.

Models
------
* :class:`PoissonTraffic` — homogeneous arrivals (independent users);
* :class:`DiurnalTraffic` — a sinusoidal day/night load curve,
  sampled by Lewis–Shedler thinning against the peak rate;
* :class:`FlashCrowdTraffic` — a piecewise-constant burst (breaking
  news sends everyone to the spectrum database at once);
* :class:`PuChurnModel` — per-PU channel switching at the §VI-A rate
  (2.3–2.7 virtual switches/viewer-hour, a configurable fraction
  physical);
* :class:`RandomWaypointMobility` — SU movement over the
  :class:`~repro.geo.grid.BlockGrid` (pick a waypoint, travel at a
  drawn speed, pause, repeat).

:func:`build_schedule` composes a named :class:`WorkloadSpec` into one
time-ordered :class:`ArrivalSchedule` that the loadtest driver, the
deployment simulator, and the chaos harness all consume.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterator

from repro.crypto.hashing import sha256
from repro.crypto.rand import RandomSource
from repro.errors import ConfigurationError
from repro.geo.grid import BlockGrid

__all__ = [
    "unit_float",
    "exponential_gap",
    "ArrivalEvent",
    "ArrivalSchedule",
    "ArrivalModel",
    "PoissonTraffic",
    "DiurnalTraffic",
    "FlashCrowdTraffic",
    "PuChurnModel",
    "RandomWaypointMobility",
    "WorkloadSpec",
    "WORKLOADS",
    "workload_names",
    "resolve_workload",
    "build_schedule",
]

#: §VI-A (citing [16]): mean virtual channel switches per viewer-hour.
VIRTUAL_SWITCHES_PER_HOUR = 2.5

#: Event kinds an :class:`ArrivalSchedule` may carry.
KIND_SU_REQUEST = "su-request"
KIND_PU_SWITCH = "pu-switch"
KIND_SU_MOVE = "su-move"

_UNIT = float(1 << 53)


def unit_float(rng: RandomSource) -> float:
    """A uniform float in ``[0, 1)`` from 53 RandomSource bits.

    53 bits is the double-precision mantissa: every representable value
    is equally likely and the draw consumes a fixed bit budget, so
    journal replay stays aligned.
    """
    return rng.randbits(53) / _UNIT


def exponential_gap(rng: RandomSource, rate_per_s: float) -> float:
    """An exponential inter-arrival gap (seconds) at ``rate_per_s``."""
    if rate_per_s <= 0:
        raise ConfigurationError("rate must be positive")
    # -log(1-u): u < 1 always, so the argument never hits zero.
    return -math.log1p(-unit_float(rng)) / rate_per_s


@dataclass(frozen=True)
class ArrivalEvent:
    """One scheduled workload event.

    ``index`` addresses the subject population (SU index for requests
    and moves, PU index for switches); ``slot`` is the target channel of
    a PU switch; ``block`` the destination of an SU move; ``physical``
    distinguishes SDC-visible PU switches from suppressed virtual ones.
    """

    time_s: float
    kind: str
    index: int
    slot: int = -1
    block: int = -1
    physical: bool = True

    def key(self) -> tuple:
        """Canonical encoding used for digests and tie-breaking."""
        return (self.time_s, self.kind, self.index, self.slot, self.block,
                self.physical)


@dataclass(frozen=True)
class ArrivalSchedule:
    """A fully materialised, time-ordered workload schedule."""

    workload: str
    seed_label: str
    events: tuple[ArrivalEvent, ...]

    @property
    def num_requests(self) -> int:
        return sum(1 for e in self.events if e.kind == KIND_SU_REQUEST)

    @property
    def num_pu_switches(self) -> int:
        return sum(
            1 for e in self.events if e.kind == KIND_PU_SWITCH and e.physical
        )

    @property
    def horizon_s(self) -> float:
        return self.events[-1].time_s if self.events else 0.0

    def digest(self) -> str:
        """SHA-256 over the canonical event encoding.

        Two schedules are byte-replayable equals iff their digests
        match — the property the identical-seed tests assert.
        """
        payload = repr(
            (self.workload, tuple(e.key() for e in self.events))
        ).encode("utf-8")
        return sha256(payload).hex()


# --------------------------------------------------------------------------- #
# Arrival models
# --------------------------------------------------------------------------- #


class ArrivalModel(ABC):
    """A (possibly non-homogeneous) Poisson arrival process."""

    @abstractmethod
    def rate_per_s(self, t_s: float) -> float:
        """Instantaneous arrival intensity λ(t)."""

    @property
    @abstractmethod
    def peak_rate_per_s(self) -> float:
        """An upper bound on λ(t), used by the thinning sampler."""

    @abstractmethod
    def expected_count(self, horizon_s: float) -> float:
        """∫₀ᴴ λ(t) dt — the mean number of arrivals by ``horizon_s``."""

    def arrivals(self, rng: RandomSource) -> Iterator[float]:
        """Arrival times by Lewis–Shedler thinning against the peak rate.

        Candidate points come from a homogeneous process at the peak
        intensity; each survives with probability λ(t)/peak.  Every draw
        goes through ``rng``, so the stream is deterministic per seed.
        """
        peak = self.peak_rate_per_s
        if peak <= 0:
            raise ConfigurationError("arrival model has non-positive peak rate")
        t = 0.0
        while True:
            t += exponential_gap(rng, peak)
            if unit_float(rng) * peak <= self.rate_per_s(t):
                yield t


class PoissonTraffic(ArrivalModel):
    """Homogeneous Poisson arrivals at a constant rate."""

    def __init__(self, rate_per_second: float) -> None:
        if rate_per_second <= 0:
            raise ConfigurationError("rate must be positive")
        self._rate = rate_per_second

    def rate_per_s(self, t_s: float) -> float:
        return self._rate

    @property
    def peak_rate_per_s(self) -> float:
        return self._rate

    def expected_count(self, horizon_s: float) -> float:
        return self._rate * max(horizon_s, 0.0)


class DiurnalTraffic(ArrivalModel):
    """A sinusoidal day/night curve around a mean rate.

    ``λ(t) = mean · (1 + amplitude · sin(2π (t - phase)/period))``.
    Over any whole number of periods the integral is exactly
    ``mean · horizon`` — the "integrates to its configured total"
    property the tests check.  ``period_s`` defaults to one day; the
    loadtest registry compresses it so a short run still sweeps a full
    cycle.
    """

    def __init__(
        self,
        mean_rate_per_second: float,
        amplitude: float = 0.8,
        period_s: float = 86_400.0,
        phase_s: float = 0.0,
    ) -> None:
        if mean_rate_per_second <= 0:
            raise ConfigurationError("mean rate must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ConfigurationError("period must be positive")
        self._mean = mean_rate_per_second
        self._amplitude = amplitude
        self._period = period_s
        self._phase = phase_s

    def rate_per_s(self, t_s: float) -> float:
        omega = 2.0 * math.pi / self._period
        return self._mean * (
            1.0 + self._amplitude * math.sin(omega * (t_s - self._phase))
        )

    @property
    def peak_rate_per_s(self) -> float:
        return self._mean * (1.0 + self._amplitude)

    def expected_count(self, horizon_s: float) -> float:
        omega = 2.0 * math.pi / self._period
        # ∫ mean·(1 + a·sin(ω(t-φ))) dt, closed form.
        sinus = (
            math.cos(omega * (0.0 - self._phase))
            - math.cos(omega * (horizon_s - self._phase))
        ) / omega
        return self._mean * (horizon_s + self._amplitude * sinus)


class FlashCrowdTraffic(ArrivalModel):
    """A baseline rate with one multiplied burst window."""

    def __init__(
        self,
        base_rate_per_second: float,
        burst_start_s: float,
        burst_duration_s: float,
        multiplier: float = 6.0,
    ) -> None:
        if base_rate_per_second <= 0:
            raise ConfigurationError("base rate must be positive")
        if burst_duration_s < 0 or burst_start_s < 0:
            raise ConfigurationError("burst window must be non-negative")
        if multiplier < 1.0:
            raise ConfigurationError("a flash crowd multiplies, never shrinks")
        self._base = base_rate_per_second
        self._start = burst_start_s
        self._duration = burst_duration_s
        self._multiplier = multiplier

    def rate_per_s(self, t_s: float) -> float:
        if self._start <= t_s < self._start + self._duration:
            return self._base * self._multiplier
        return self._base

    @property
    def peak_rate_per_s(self) -> float:
        return self._base * self._multiplier

    def expected_count(self, horizon_s: float) -> float:
        overlap = max(
            0.0, min(horizon_s, self._start + self._duration) - self._start
        )
        return self._base * (horizon_s + (self._multiplier - 1.0) * overlap)


# --------------------------------------------------------------------------- #
# PU churn and SU mobility
# --------------------------------------------------------------------------- #


class PuChurnModel:
    """Per-PU channel switching with the virtual/physical distinction.

    §VI-A puts *virtual* switches (remote-control hops that stay on one
    physical channel) at 2.3–2.7 per viewer-hour, with physical switches
    "much lower"; only physical switches reach the SDC.
    """

    def __init__(
        self,
        virtual_rate_per_hour: float = VIRTUAL_SWITCHES_PER_HOUR,
        physical_fraction: float = 0.2,
    ) -> None:
        if virtual_rate_per_hour <= 0:
            raise ConfigurationError("switch rate must be positive")
        if not 0.0 <= physical_fraction <= 1.0:
            raise ConfigurationError("physical_fraction must be in [0, 1]")
        self.virtual_rate_per_hour = virtual_rate_per_hour
        self.physical_fraction = physical_fraction

    def switches(
        self,
        rng: RandomSource,
        num_pus: int,
        horizon_s: float,
        num_channels: int,
    ) -> list[ArrivalEvent]:
        """All switch events over ``[0, horizon_s]``, PU by PU.

        Draw order is fixed (PU 0's whole renewal stream, then PU 1's,
        ...), so identical seeds give identical churn regardless of how
        the caller later interleaves the events.
        """
        rate_per_s = self.virtual_rate_per_hour / 3600.0
        events = []
        for pu_index in range(num_pus):
            t = 0.0
            while True:
                t += exponential_gap(rng, rate_per_s)
                if t > horizon_s:
                    break
                physical = unit_float(rng) < self.physical_fraction
                slot = rng.randbelow(num_channels) if num_channels > 0 else -1
                events.append(ArrivalEvent(
                    time_s=t, kind=KIND_PU_SWITCH, index=pu_index,
                    slot=slot, physical=physical,
                ))
        return events


class RandomWaypointMobility:
    """Random-waypoint SU movement over the block grid.

    Each SU starts in a uniformly drawn block, picks a destination
    block, travels in a straight line at a drawn speed, pauses, and
    repeats.  The emitted ``su-move`` events carry the destination block
    index; the deployment simulator re-decides a moved SU against the
    WATCH oracle at its new block.
    """

    def __init__(
        self,
        grid: BlockGrid,
        speed_mps: tuple[float, float] = (0.5, 1.5),
        pause_s: tuple[float, float] = (0.0, 60.0),
    ) -> None:
        if speed_mps[0] <= 0 or speed_mps[1] < speed_mps[0]:
            raise ConfigurationError("speed range must be positive and ordered")
        if pause_s[0] < 0 or pause_s[1] < pause_s[0]:
            raise ConfigurationError("pause range must be non-negative and ordered")
        self.grid = grid
        self.speed_mps = speed_mps
        self.pause_s = pause_s

    def _uniform(self, rng: RandomSource, low: float, high: float) -> float:
        return low + unit_float(rng) * (high - low)

    def waypoints(
        self, rng: RandomSource, num_sus: int, horizon_s: float
    ) -> tuple[list[int], list[ArrivalEvent]]:
        """``(start_blocks, move_events)`` over ``[0, horizon_s]``.

        Like :meth:`PuChurnModel.switches`, the draw order is fixed per
        SU so schedules are replayable.
        """
        starts = []
        events = []
        for su_index in range(num_sus):
            block = rng.randbelow(self.grid.num_blocks)
            starts.append(block)
            t = 0.0
            while True:
                destination = rng.randbelow(self.grid.num_blocks)
                speed = self._uniform(rng, *self.speed_mps)
                distance = self.grid.distance_m(block, destination)
                t += max(distance / speed, 1e-9)
                if t > horizon_s:
                    break
                events.append(ArrivalEvent(
                    time_s=t, kind=KIND_SU_MOVE, index=su_index,
                    block=destination,
                ))
                block = destination
                t += self._uniform(rng, *self.pause_s)
        return starts, events


# --------------------------------------------------------------------------- #
# The workload registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class WorkloadSpec:
    """A named traffic shape the scenario/workload registry serves.

    ``arrival_factory`` builds the SU arrival model for a target mean
    rate; ``period_requests`` expresses time-varying structure in
    *expected request counts* instead of wall seconds, so a 12-request
    CI smoke and a 10^5-request soak sweep the same shape.
    """

    name: str
    description: str
    arrival_factory: Callable[[float, float], ArrivalModel]
    #: Multiplier on the §VI-A PU churn rate (1.0 = paper rate).
    pu_churn_multiplier: float = 1.0
    #: Whether the schedule carries random-waypoint SU moves.
    mobility: bool = False

    def arrival_model(
        self, rate_per_s: float, expected_requests: int
    ) -> ArrivalModel:
        span_s = max(expected_requests / rate_per_s, 1e-9)
        return self.arrival_factory(rate_per_s, span_s)


def _steady(rate: float, span_s: float) -> ArrivalModel:
    return PoissonTraffic(rate)


def _diurnal(rate: float, span_s: float) -> ArrivalModel:
    # One full "day" compressed into the run's expected span: the run
    # always sweeps trough and peak, whatever its request budget.
    return DiurnalTraffic(rate, amplitude=0.8, period_s=span_s)


def _flash_crowd(rate: float, span_s: float) -> ArrivalModel:
    # The burst covers the middle fifth of the expected span at 6x.
    return FlashCrowdTraffic(
        rate,
        burst_start_s=0.4 * span_s,
        burst_duration_s=0.2 * span_s,
        multiplier=6.0,
    )


WORKLOADS: dict[str, WorkloadSpec] = {
    spec.name: spec
    for spec in (
        WorkloadSpec(
            name="steady",
            description="homogeneous Poisson arrivals, paper-rate PU churn",
            arrival_factory=_steady,
        ),
        WorkloadSpec(
            name="diurnal",
            description="sinusoidal day/night curve (one period per run)",
            arrival_factory=_diurnal,
        ),
        WorkloadSpec(
            name="flash-crowd",
            description="steady base with a 6x burst over the middle fifth",
            arrival_factory=_flash_crowd,
        ),
        WorkloadSpec(
            name="pu-churn-storm",
            description="steady arrivals under 40x PU channel churn",
            arrival_factory=_steady,
            pu_churn_multiplier=40.0,
        ),
        WorkloadSpec(
            name="mobility",
            description="steady arrivals with random-waypoint SU movement",
            arrival_factory=_steady,
            mobility=True,
        ),
    )
}


def workload_names() -> tuple[str, ...]:
    return tuple(WORKLOADS)


def resolve_workload(name: str) -> WorkloadSpec:
    spec = WORKLOADS.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown workload {name!r} (known: {', '.join(WORKLOADS)})"
        )
    return spec


_KIND_ORDER = {KIND_SU_REQUEST: 0, KIND_PU_SWITCH: 1, KIND_SU_MOVE: 2}


def build_schedule(
    workload: WorkloadSpec | str,
    *,
    rng: RandomSource,
    rate_per_s: float,
    num_requests: int,
    num_sus: int,
    num_pus: int = 0,
    num_channels: int = 0,
    max_pu_switches: int | None = None,
    grid: BlockGrid | None = None,
    pu_churn_per_hour: float = VIRTUAL_SWITCHES_PER_HOUR,
    physical_fraction: float = 1.0,
) -> ArrivalSchedule:
    """Materialise one deterministic schedule for a workload.

    Draw order is fixed — SU arrivals first (time then subject per
    arrival), then PU churn, then mobility — so the same seed always
    produces the same byte-replayable event tuple.  ``max_pu_switches``
    caps *physical* switches (the ones that reach the SDC), mirroring
    the loadtest's ``num_pu_switches`` budget; ``physical_fraction``
    defaults to 1.0 because service-driving schedules only care about
    SDC-visible churn (the simulator passes the paper's fraction).
    """
    spec = resolve_workload(workload) if isinstance(workload, str) else workload
    if num_requests < 1:
        raise ConfigurationError("a schedule needs at least one request")
    if num_sus < 1:
        raise ConfigurationError("a schedule needs at least one SU")
    model = spec.arrival_model(rate_per_s, num_requests)
    events: list[ArrivalEvent] = []
    stream = model.arrivals(rng)
    for _ in range(num_requests):
        t = next(stream)
        events.append(ArrivalEvent(
            time_s=t, kind=KIND_SU_REQUEST, index=rng.randbelow(num_sus)
        ))
    horizon = events[-1].time_s

    if num_pus > 0 and spec.pu_churn_multiplier > 0:
        churn = PuChurnModel(
            virtual_rate_per_hour=pu_churn_per_hour * spec.pu_churn_multiplier,
            physical_fraction=physical_fraction,
        )
        switches = churn.switches(rng, num_pus, horizon, num_channels)
        if max_pu_switches is not None:
            kept, physical_seen = [], 0
            for event in sorted(switches, key=lambda e: e.key()):
                if event.physical:
                    if physical_seen >= max_pu_switches:
                        continue
                    physical_seen += 1
                kept.append(event)
            switches = kept
        events.extend(switches)

    if spec.mobility:
        if grid is None:
            raise ConfigurationError(
                f"workload {spec.name!r} needs a grid for mobility"
            )
        _, moves = RandomWaypointMobility(grid).waypoints(rng, num_sus, horizon)
        events.extend(moves)

    # Stable total order: time, then kind (requests before switches
    # before moves at equal instants), then subject index.
    events.sort(key=lambda e: (e.time_s, _KIND_ORDER[e.kind], e.index, e.slot))
    return ArrivalSchedule(
        workload=spec.name, seed_label="rng", events=tuple(events)
    )
