"""Workload generators for the deployment simulator.

* :class:`PoissonArrivals` — SU transmission requests as a Poisson
  process (the standard model for independent user arrivals);
* :class:`PuSwitchProcess` — PU channel switching.  §VI-A (citing [16])
  puts *virtual* channel switches at 2.3-2.7 per viewer-hour with
  physical switches "much lower"; only physical switches reach the SDC,
  so the process draws exponential inter-switch times at a configurable
  physical rate and flags which switches need an SDC update.

Both samplers draw exclusively through the injected
:class:`~repro.crypto.rand.RandomSource` (no ambient randomness), so a
journaled source replays a simulation byte-for-byte.  The richer
time-varying models (diurnal curves, flash crowds, mobility) live in
:mod:`repro.sim.traffic`; these two remain as the homogeneous
building blocks the simulator and loadtest legacy path use directly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.rand import RandomSource
from repro.errors import ConfigurationError
from repro.sim.traffic import (
    VIRTUAL_SWITCHES_PER_HOUR,
    exponential_gap,
    unit_float,
)

__all__ = ["WorkloadConfig", "PoissonArrivals", "PuSwitchProcess"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Aggregate workload knobs for a simulated deployment."""

    #: Mean SU request arrivals per hour (whole population).
    su_requests_per_hour: float = 20.0
    #: Mean per-PU virtual switches per hour (paper: 2.3-2.7).
    pu_virtual_switches_per_hour: float = VIRTUAL_SWITCHES_PER_HOUR
    #: Fraction of virtual switches that cross a physical channel and
    #: therefore require an SDC update ("much lower" per the paper).
    physical_switch_fraction: float = 0.2
    #: Fraction of SU requests able to reuse a cached (refreshable) request.
    cached_request_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.su_requests_per_hour <= 0:
            raise ConfigurationError("need a positive SU arrival rate")
        if not 0 <= self.physical_switch_fraction <= 1:
            raise ConfigurationError("physical_switch_fraction must be in [0, 1]")
        if not 0 <= self.cached_request_fraction <= 1:
            raise ConfigurationError("cached_request_fraction must be in [0, 1]")


class PoissonArrivals:
    """Exponential inter-arrival sampler over an injected RandomSource."""

    def __init__(self, rate_per_hour: float, rng: RandomSource) -> None:
        if rate_per_hour <= 0:
            raise ConfigurationError("rate must be positive")
        self._rate_per_s = rate_per_hour / 3600.0
        self._rng = rng

    def next_gap_s(self) -> float:
        """Seconds until the next arrival."""
        return exponential_gap(self._rng, self._rate_per_s)


class PuSwitchProcess:
    """Per-PU switching with the virtual/physical distinction."""

    def __init__(
        self,
        virtual_rate_per_hour: float,
        physical_fraction: float,
        rng: RandomSource,
    ) -> None:
        if virtual_rate_per_hour <= 0:
            raise ConfigurationError("switch rate must be positive")
        self._rate_per_s = virtual_rate_per_hour / 3600.0
        self._physical_fraction = physical_fraction
        self._rng = rng

    def next_switch(self) -> tuple[float, bool]:
        """``(seconds_until_switch, needs_sdc_update)``.

        Virtual-only switches (same physical channel) do not notify the
        SDC — the §VI-A optimisation.
        """
        gap = exponential_gap(self._rng, self._rate_per_s)
        physical = unit_float(self._rng) < self._physical_fraction
        return gap, physical
