"""Workload generators for the deployment simulator.

* :class:`PoissonArrivals` — SU transmission requests as a Poisson
  process (the standard model for independent user arrivals);
* :class:`PuSwitchProcess` — PU channel switching.  §VI-A (citing [16])
  puts *virtual* channel switches at 2.3-2.7 per viewer-hour with
  physical switches "much lower"; only physical switches reach the SDC,
  so the process draws exponential inter-switch times at a configurable
  physical rate and flags which switches need an SDC update.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["WorkloadConfig", "PoissonArrivals", "PuSwitchProcess"]

#: [16] via §VI-A: mean virtual switches per viewer-hour.
VIRTUAL_SWITCHES_PER_HOUR = 2.5


@dataclass(frozen=True)
class WorkloadConfig:
    """Aggregate workload knobs for a simulated deployment."""

    #: Mean SU request arrivals per hour (whole population).
    su_requests_per_hour: float = 20.0
    #: Mean per-PU virtual switches per hour (paper: 2.3-2.7).
    pu_virtual_switches_per_hour: float = VIRTUAL_SWITCHES_PER_HOUR
    #: Fraction of virtual switches that cross a physical channel and
    #: therefore require an SDC update ("much lower" per the paper).
    physical_switch_fraction: float = 0.2
    #: Fraction of SU requests able to reuse a cached (refreshable) request.
    cached_request_fraction: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.su_requests_per_hour <= 0:
            raise ConfigurationError("need a positive SU arrival rate")
        if not 0 <= self.physical_switch_fraction <= 1:
            raise ConfigurationError("physical_switch_fraction must be in [0, 1]")
        if not 0 <= self.cached_request_fraction <= 1:
            raise ConfigurationError("cached_request_fraction must be in [0, 1]")


class PoissonArrivals:
    """Exponential inter-arrival sampler."""

    def __init__(self, rate_per_hour: float, rng: np.random.Generator) -> None:
        if rate_per_hour <= 0:
            raise ConfigurationError("rate must be positive")
        self._mean_gap_s = 3600.0 / rate_per_hour
        self._rng = rng

    def next_gap_s(self) -> float:
        """Seconds until the next arrival."""
        return float(self._rng.exponential(self._mean_gap_s))


class PuSwitchProcess:
    """Per-PU switching with the virtual/physical distinction."""

    def __init__(
        self,
        virtual_rate_per_hour: float,
        physical_fraction: float,
        rng: np.random.Generator,
    ) -> None:
        if virtual_rate_per_hour <= 0:
            raise ConfigurationError("switch rate must be positive")
        self._mean_gap_s = 3600.0 / virtual_rate_per_hour
        self._physical_fraction = physical_fraction
        self._rng = rng

    def next_switch(self) -> tuple[float, bool]:
        """``(seconds_until_switch, needs_sdc_update)``.

        Virtual-only switches (same physical channel) do not notify the
        SDC — the §VI-A optimisation.
        """
        gap = float(self._rng.exponential(self._mean_gap_s))
        physical = bool(self._rng.random() < self._physical_fraction)
        return gap, physical
