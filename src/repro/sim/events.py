"""A minimal discrete-event core: a time-ordered event queue.

Events are ``(time, sequence, payload)`` triples in a binary heap; the
sequence number breaks ties deterministically (FIFO among simultaneous
events), which keeps whole simulations reproducible.

The queue *is* the simulation clock — ``now`` only advances when an
event is popped — and its origin is injected (``start_s``) rather than
assumed, so simulations can be anchored to any epoch without ambient
time.  :class:`SimClock` exposes the queue's time behind the same
zero-argument callable signature the service layer uses for its
injected clocks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any

__all__ = ["ScheduledEvent", "EventQueue", "SimClock"]


@dataclass(frozen=True, order=True)
class ScheduledEvent:
    """One queued event; ordering is (time, sequence)."""

    time: float
    sequence: int
    kind: str = field(compare=False)
    payload: Any = field(compare=False, default=None)


class EventQueue:
    """Deterministic min-heap event queue with an injected time origin."""

    def __init__(self, start_s: float = 0.0) -> None:
        self._heap: list[ScheduledEvent] = []
        self._counter = itertools.count()
        self.start_s = start_s
        self.now = start_s

    def schedule(self, delay: float, kind: str, payload: Any = None) -> ScheduledEvent:
        """Schedule an event ``delay`` seconds from the current time."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        event = ScheduledEvent(
            time=self.now + delay, sequence=next(self._counter),
            kind=kind, payload=payload,
        )
        heapq.heappush(self._heap, event)
        return event

    def schedule_at(self, time: float, kind: str, payload: Any = None) -> ScheduledEvent:
        """Schedule an event at an absolute time ≥ now."""
        if time < self.now:
            raise ValueError("cannot schedule into the past")
        event = ScheduledEvent(
            time=time, sequence=next(self._counter), kind=kind, payload=payload
        )
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> ScheduledEvent:
        """Advance the clock to and return the next event."""
        if not self._heap:
            raise IndexError("event queue is empty")
        event = heapq.heappop(self._heap)
        self.now = event.time
        return event

    def clock(self) -> "SimClock":
        """A zero-argument callable view of this queue's clock."""
        return SimClock(self)

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)


class SimClock:
    """Simulated time behind the service layer's ``clock()`` signature."""

    def __init__(self, queue: EventQueue) -> None:
        self._queue = queue

    def __call__(self) -> float:
        return self._queue.now
