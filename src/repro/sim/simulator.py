"""The deployment simulator: queueing + physics + real decisions.

Each protocol phase is a service demand on a single-threaded server
(the SDC or the STP), scheduled through the event queue; message
transfers add latency-model delays.  Grant/deny outcomes are *not*
sampled — each simulated request belongs to a scenario SU and is
decided once by the real plaintext WATCH oracle, so grant ratios track
the actual geometry.

All randomness flows through an injected
:class:`~repro.crypto.rand.RandomSource` (forked per stream, so event
interleaving never perturbs draws) and all time through the
:class:`~repro.sim.events.EventQueue`'s injected origin — no ambient
clocks or generators, which is what lets the DET/ASY audit rules cover
this package.  A named :class:`~repro.sim.traffic.WorkloadSpec` shapes
the arrival process (diurnal, flash-crowd, churn-storm, mobility);
without one the workload is the homogeneous paper model.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.crypto.rand import DeterministicRandomSource, RandomSource
from repro.errors import ConfigurationError
from repro.net.latency import ConstantLatency, LatencyModel
from repro.sim.costmodel import ServiceCostModel
from repro.sim.events import EventQueue
from repro.sim.traffic import (
    RandomWaypointMobility,
    WorkloadSpec,
    resolve_workload,
    unit_float,
)
from repro.sim.workload import PoissonArrivals, PuSwitchProcess, WorkloadConfig
from repro.watch.scenario import Scenario
from repro.watch.sdc import PlaintextSDC

__all__ = ["RequestRecord", "SimulationReport", "DeploymentSimulator"]


@dataclass
class _Server:
    """A service station with ``workers`` parallel lanes.

    Jobs go to the earliest-free lane (a c-server FIFO queue);
    utilisation is busy time divided by total lane-seconds.
    """

    name: str
    workers: int = 1
    busy_until: list[float] = field(default_factory=list)
    busy_time: float = 0.0
    jobs: int = 0

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ConfigurationError("a server needs at least one worker")
        if not self.busy_until:
            self.busy_until = [0.0] * self.workers

    def serve(self, arrival: float, service_s: float) -> float:
        """Queue a job arriving at ``arrival``; returns completion time."""
        lane = min(range(self.workers), key=lambda i: self.busy_until[i])
        start = max(arrival, self.busy_until[lane])
        done = start + service_s
        self.busy_until[lane] = done
        self.busy_time += service_s
        self.jobs += 1
        return done


@dataclass(frozen=True)
class RequestRecord:
    """One SU request's lifecycle."""

    su_id: str
    arrival_s: float
    completion_s: float
    granted: bool
    cached: bool

    @property
    def latency_s(self) -> float:
        return self.completion_s - self.arrival_s


@dataclass(frozen=True)
class SimulationReport:
    """Aggregate results of one simulated horizon."""

    duration_s: float
    requests: tuple[RequestRecord, ...]
    pu_updates: int
    virtual_switches_suppressed: int
    sdc_utilization: float
    stp_utilization: float
    su_moves: int = 0

    @property
    def num_requests(self) -> int:
        return len(self.requests)

    @property
    def grant_ratio(self) -> float:
        if not self.requests:
            return 0.0
        return sum(r.granted for r in self.requests) / len(self.requests)

    def latency_percentile_s(self, percentile: float) -> float:
        if not self.requests:
            return 0.0
        return float(np.percentile([r.latency_s for r in self.requests], percentile))

    @property
    def mean_latency_s(self) -> float:
        if not self.requests:
            return 0.0
        return float(np.mean([r.latency_s for r in self.requests]))

    def as_table_rows(self) -> list[tuple[str, str]]:
        return [
            ("horizon", f"{self.duration_s / 3600:.1f} h"),
            ("requests served", str(self.num_requests)),
            ("grant ratio", f"{self.grant_ratio:.0%}"),
            ("mean latency", f"{self.mean_latency_s:.0f} s"),
            ("p95 latency", f"{self.latency_percentile_s(95):.0f} s"),
            ("PU updates processed", str(self.pu_updates)),
            ("virtual switches suppressed", str(self.virtual_switches_suppressed)),
            ("SDC utilisation", f"{self.sdc_utilization:.0%}"),
            ("STP utilisation", f"{self.stp_utilization:.0%}"),
        ]


class DeploymentSimulator:
    """Event-driven simulation of one SDC service area."""

    def __init__(
        self,
        scenario: Scenario,
        cost_model: ServiceCostModel,
        workload: WorkloadConfig | None = None,
        latency: LatencyModel | None = None,
        sdc_workers: int = 1,
        stp_workers: int = 1,
        rng: RandomSource | None = None,
        start_s: float = 0.0,
        traffic: WorkloadSpec | str | None = None,
    ) -> None:
        if sdc_workers < 1 or stp_workers < 1:
            raise ConfigurationError("worker counts must be positive")
        self.scenario = scenario
        self.cost_model = cost_model
        self.workload = workload or WorkloadConfig()
        self.latency = latency or ConstantLatency()
        self.sdc_workers = sdc_workers
        self.stp_workers = stp_workers
        self.start_s = start_s
        if traffic is None:
            self.traffic: WorkloadSpec | None = None
        elif isinstance(traffic, str):
            self.traffic = resolve_workload(traffic)
        else:
            self.traffic = traffic
        # The injected source is forked per draw stream, so the order in
        # which event kinds interleave can never shift another stream's
        # draws.  Default derives from the workload seed for
        # backwards-compatible determinism.
        self._rng = rng if rng is not None else DeterministicRandomSource(
            self.workload.seed
        )
        # Decide every scenario SU once with the real oracle (moved SUs
        # are re-decided against the same oracle).
        self._oracle = PlaintextSDC(scenario.environment)
        for pu in scenario.pus:
            self._oracle.pu_update(pu)
        if not scenario.sus:
            raise ConfigurationError("scenario has no SUs to draw requests from")
        self._sus = {su.su_id: su for su in scenario.sus}
        self._decisions = {
            su.su_id: self._oracle.process_request(su).granted
            for su in scenario.sus
        }
        self._su_ids = [su.su_id for su in scenario.sus]

    def _delay(self, size_bytes: int, sender: str, receiver: str) -> float:
        return self.latency.delay_seconds(size_bytes, sender, receiver)

    def run(self, duration_s: float) -> SimulationReport:
        """Simulate ``duration_s`` seconds of deployment time."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        queue = EventQueue(start_s=self.start_s)
        horizon = self.start_s + duration_s
        sdc = _Server("sdc", workers=self.sdc_workers)
        stp = _Server("stp", workers=self.stp_workers)
        costs = self.cost_model.costs
        records: list[RequestRecord] = []
        pu_updates = 0
        suppressed = 0
        su_moves = 0

        arrival_rng = self._rng.fork("arrivals")
        subject_rng = self._rng.fork("subjects")
        rate_per_s = self.workload.su_requests_per_hour / 3600.0
        if self.traffic is not None:
            expected = max(1, round(rate_per_s * duration_s))
            arrival_stream = self.traffic.arrival_model(
                rate_per_s, expected
            ).arrivals(arrival_rng)
            next_arrival = lambda: self.start_s + next(arrival_stream)  # noqa: E731
            churn_multiplier = self.traffic.pu_churn_multiplier
        else:
            arrivals = PoissonArrivals(
                self.workload.su_requests_per_hour, arrival_rng
            )
            clock = queue.clock()
            next_arrival = lambda: clock() + arrivals.next_gap_s()  # noqa: E731
            churn_multiplier = 1.0
        queue.schedule_at(next_arrival(), "su-arrival")

        switchers = []
        for index, pu in enumerate(self.scenario.pus):
            process = PuSwitchProcess(
                self.workload.pu_virtual_switches_per_hour * churn_multiplier,
                self.workload.physical_switch_fraction,
                self._rng.fork(f"pu-{index}"),
            )
            switchers.append((pu.receiver_id, process))
            gap, physical = process.next_switch()
            queue.schedule(gap, "pu-switch", payload=(index, physical))

        if self.traffic is not None and self.traffic.mobility:
            mobility = RandomWaypointMobility(self.scenario.grid)
            _, moves = mobility.waypoints(
                self._rng.fork("mobility"), len(self._su_ids), duration_s
            )
            for move in moves:
                queue.schedule_at(
                    self.start_s + move.time_s, "su-move",
                    payload=(move.index, move.block),
                )

        # Stage transitions are events so each server's jobs are served
        # in true arrival-time order — synchronous chaining would let an
        # early request's phase 2 (scheduled far in the future) block a
        # later request's phase 1.
        while queue:
            event = queue.pop()
            if event.kind in ("su-arrival", "pu-switch") and event.time > horizon:
                continue  # stop generating load; drain in-flight work
            if event.kind == "su-arrival":
                queue.schedule_at(next_arrival(), "su-arrival")
                su_id = self._su_ids[subject_rng.randbelow(len(self._su_ids))]
                cached = (
                    unit_float(subject_rng)
                    < self.workload.cached_request_fraction
                )
                prep = costs.su_refresh_s if cached else costs.su_prepare_s
                at_sdc = event.time + prep + self._delay(
                    self.cost_model.request_bytes, su_id, "sdc"
                )
                queue.schedule_at(at_sdc, "sdc-phase1",
                                  payload=(su_id, event.time, cached))
            elif event.kind == "sdc-phase1":
                su_id, arrival_s, cached = event.payload
                done = sdc.serve(event.time, costs.sdc_phase1_s)
                at_stp = done + self._delay(
                    self.cost_model.extraction_bytes, "sdc", "stp"
                )
                queue.schedule_at(at_stp, "stp-convert", payload=event.payload)
            elif event.kind == "stp-convert":
                done = stp.serve(event.time, costs.stp_convert_s)
                back = done + self._delay(
                    self.cost_model.conversion_bytes, "stp", "sdc"
                )
                queue.schedule_at(back, "sdc-phase2", payload=event.payload)
            elif event.kind == "sdc-phase2":
                su_id, arrival_s, cached = event.payload
                done = sdc.serve(event.time, costs.sdc_phase2_s)
                finished = (
                    done
                    + self._delay(self.cost_model.response_bytes, "sdc", su_id)
                    + costs.su_decrypt_s
                )
                records.append(RequestRecord(
                    su_id=su_id,
                    arrival_s=arrival_s,
                    completion_s=finished,
                    granted=self._decisions[su_id],
                    cached=cached,
                ))
            elif event.kind == "pu-switch":
                index, physical = event.payload
                pu_id, process = switchers[index]
                gap, next_physical = process.next_switch()
                queue.schedule(gap, "pu-switch", payload=(index, next_physical))
                if physical:
                    at_sdc = event.time + costs.pu_prepare_s + self._delay(
                        self.cost_model.pu_update_bytes, pu_id, "sdc"
                    )
                    queue.schedule_at(at_sdc, "sdc-pu-update")
                    pu_updates += 1
                else:
                    suppressed += 1
            elif event.kind == "sdc-pu-update":
                sdc.serve(event.time, costs.sdc_pu_update_s)
            elif event.kind == "su-move":
                su_index, block = event.payload
                su_id = self._su_ids[su_index]
                moved = replace(self._sus[su_id], block_index=block)
                self._sus[su_id] = moved
                self._decisions[su_id] = self._oracle.process_request(
                    moved
                ).granted
                su_moves += 1

        # Overloaded servers drain past the horizon; divide each server's
        # busy time by the span it was actually active over so reported
        # utilisation stays a faithful fraction instead of clipping at 1.
        sdc_span = max(duration_s, max(sdc.busy_until) - self.start_s)
        stp_span = max(duration_s, max(stp.busy_until) - self.start_s)
        return SimulationReport(
            duration_s=duration_s,
            requests=tuple(records),
            pu_updates=pu_updates,
            virtual_switches_suppressed=suppressed,
            sdc_utilization=min(1.0, sdc.busy_time / (sdc_span * sdc.workers)),
            stp_utilization=min(1.0, stp.busy_time / (stp_span * stp.workers)),
            su_moves=su_moves,
        )
