"""Service-time model for the deployment simulator.

Simulating thousands of requests cannot run real 2048-bit crypto per
event; instead, each protocol phase gets a *service time* derived from
the same measured primitive profile that the Figure 6 extrapolation
uses.  The phase decomposition mirrors
:func:`repro.analysis.scaling.estimate_full_scale` exactly, so simulator
capacity numbers and benchmark projections are mutually consistent.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.scaling import PaillierCostProfile, estimate_full_scale
from repro.errors import ConfigurationError

__all__ = ["PhaseCosts", "ServiceCostModel"]


@dataclass(frozen=True)
class PhaseCosts:
    """Seconds of service per protocol phase for one operation."""

    su_prepare_s: float
    su_refresh_s: float
    sdc_phase1_s: float
    stp_convert_s: float
    sdc_phase2_s: float
    su_decrypt_s: float
    pu_prepare_s: float
    sdc_pu_update_s: float

    @property
    def sdc_per_request_s(self) -> float:
        return self.sdc_phase1_s + self.sdc_phase2_s


class ServiceCostModel:
    """Derives per-phase service times from a measured cost profile.

    ``packing_factor`` models the packed-mode extension: phases that are
    per-cell (preparation, STP conversion) divide by ``k``; phases with
    per-cell *and* per-chunk parts use the same factor as a first-order
    model.
    """

    def __init__(
        self,
        profile: PaillierCostProfile,
        num_channels: int,
        num_blocks: int,
        packing_factor: int = 1,
        fresh_beta_encryption: bool = False,
    ) -> None:
        if packing_factor < 1:
            raise ConfigurationError("packing_factor must be ≥ 1")
        self.profile = profile
        self.num_channels = num_channels
        self.num_blocks = num_blocks
        self.packing_factor = packing_factor
        # The paper's 219 s SDC processing implies β arrives as a
        # plaintext blind (one multiplication), not a fresh per-cell
        # encryption; capacity modelling defaults to that reading.
        estimate = estimate_full_scale(
            profile,
            num_channels=num_channels,
            num_blocks=num_blocks,
            fresh_beta_encryption=fresh_beta_encryption,
        )
        cells = num_channels * num_blocks
        k = packing_factor
        # Phase 1 vs phase 2 split of the SDC estimate: phase 2 is the
        # cheap ε-unblind + ΣQ̃ accumulation (adds only).
        phase2 = cells * (
            profile.hom_sub_s + 2 * profile.hom_add_s
        ) + profile.hom_scale_full_s
        phase1 = max(estimate.sdc_processing_s - phase2, 0.0)
        self.costs = PhaseCosts(
            su_prepare_s=estimate.request_preparation_s / k,
            su_refresh_s=estimate.request_refresh_s / k,
            sdc_phase1_s=phase1 / k,
            stp_convert_s=estimate.stp_conversion_s / k,
            sdc_phase2_s=phase2 / k,
            su_decrypt_s=profile.decryption_s,
            pu_prepare_s=estimate.pu_update_prepare_s,
            sdc_pu_update_s=estimate.sdc_pu_update_s,
        )
        self._estimate = estimate

    # -- wire sizes (for the latency model) ---------------------------------

    @property
    def request_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def extraction_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def conversion_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def pu_update_bytes(self) -> int:
        return self._estimate.pu_update_bytes

    @property
    def response_bytes(self) -> int:
        return self._estimate.response_bytes

    def saturation_rate_per_hour(self) -> float:
        """Arrival rate at which the SDC's utilisation reaches 1."""
        return 3600.0 / self.costs.sdc_per_request_s
