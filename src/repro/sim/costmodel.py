"""Service-time model for the deployment simulator.

Simulating thousands of requests cannot run real 2048-bit crypto per
event; instead, each protocol phase gets a *service time* derived from
the same measured primitive profile that the Figure 6 extrapolation
uses.  The phase decomposition mirrors
:func:`repro.analysis.scaling.estimate_full_scale` exactly, so simulator
capacity numbers and benchmark projections are mutually consistent.

When a ``BENCH_service.json`` history exists, the model can additionally
be *calibrated* to it (:func:`load_measured_round` +
:meth:`ServiceCostModel.calibration_from`): the analytic profile fixes
the phase *proportions* while the measured end-to-end round on this
machine fixes the absolute scale, so capacity answers track measured
reality instead of the paper's hardware constants.  The analytic
constants remain the fallback when no bench history is available.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, replace
from pathlib import Path

from repro.analysis.scaling import PaillierCostProfile, estimate_full_scale
from repro.errors import ConfigurationError

__all__ = [
    "PhaseCosts",
    "ServiceCostModel",
    "MeasuredRound",
    "load_measured_round",
    "paper_profile",
    "DEFAULT_BENCH_PATH",
]

#: Where ``benchmarks/bench_service_throughput.py`` appends its history
#: (the repo root); resolution fails soft when the package is installed
#: away from a checkout.
DEFAULT_BENCH_PATH = Path(__file__).resolve().parents[3] / "BENCH_service.json"

#: The reduced-scale configuration the service bench measures at
#: (``benchmarks/conftest.py``): 10 channels over a 6x8 grid.
BENCH_CHANNELS = 10
BENCH_BLOCKS = 48


def paper_profile() -> PaillierCostProfile:
    """Table II's measured primitive times on the paper's hardware.

    The hardcoded-constants fallback used whenever no bench history is
    available to calibrate against.
    """
    return PaillierCostProfile(
        key_bits=2048, encryption_s=0.030378, decryption_s=0.021170,
        hom_add_s=4e-6, hom_sub_s=7.3e-5, hom_scale_small_s=1.564e-3,
        hom_scale_full_s=0.018867, rerandomize_s=0.030,
    )


@dataclass(frozen=True)
class PhaseCosts:
    """Seconds of service per protocol phase for one operation."""

    su_prepare_s: float
    su_refresh_s: float
    sdc_phase1_s: float
    stp_convert_s: float
    sdc_phase2_s: float
    su_decrypt_s: float
    pu_prepare_s: float
    sdc_pu_update_s: float

    @property
    def sdc_per_request_s(self) -> float:
        return self.sdc_phase1_s + self.sdc_phase2_s

    def scaled(self, factor: float) -> "PhaseCosts":
        """Every phase multiplied by ``factor`` (bench calibration)."""
        if factor <= 0:
            raise ConfigurationError("calibration factor must be positive")
        return replace(
            self,
            **{name: getattr(self, name) * factor for name in (
                "su_prepare_s", "su_refresh_s", "sdc_phase1_s",
                "stp_convert_s", "sdc_phase2_s", "su_decrypt_s",
                "pu_prepare_s", "sdc_pu_update_s",
            )},
        )


@dataclass(frozen=True)
class MeasuredRound:
    """The latest measured end-to-end protocol round from bench history."""

    seconds_per_request: float
    key_bits: int
    timestamp: str = ""
    source: str = ""


def load_measured_round(
    path: str | Path | None = None,
) -> MeasuredRound | None:
    """Latest baseline round from a ``BENCH_service.json`` history.

    Understands both the ``{"history": [...]}`` layout the bench
    harness appends to and the legacy single-entry layout, and returns
    ``None`` (constants fallback) whenever the file is missing,
    unparseable, or lacks a baseline measurement — a stale or absent
    bench must never break capacity answers.
    """
    bench_path = Path(path) if path is not None else DEFAULT_BENCH_PATH
    try:
        payload = json.loads(bench_path.read_text(encoding="utf-8"))
    except (OSError, ValueError):
        return None
    if isinstance(payload, dict) and isinstance(payload.get("history"), list):
        entries = [e for e in payload["history"] if isinstance(e, dict)]
        entry = entries[-1] if entries else None
    elif isinstance(payload, dict):
        entry = payload
    else:
        entry = None
    if entry is None:
        return None
    baseline = entry.get("baseline")
    if not isinstance(baseline, dict):
        return None
    seconds = baseline.get("seconds_per_request")
    if not isinstance(seconds, (int, float)) or seconds <= 0:
        return None
    return MeasuredRound(
        seconds_per_request=float(seconds),
        key_bits=int(entry.get("key_bits", 0) or 0),
        timestamp=str(entry.get("timestamp", "")),
        source=str(bench_path),
    )


class ServiceCostModel:
    """Derives per-phase service times from a measured cost profile.

    ``packing_factor`` models the packed-mode extension: phases that are
    per-cell (preparation, STP conversion) divide by ``k``; phases with
    per-cell *and* per-chunk parts use the same factor as a first-order
    model.
    """

    def __init__(
        self,
        profile: PaillierCostProfile,
        num_channels: int,
        num_blocks: int,
        packing_factor: int = 1,
        fresh_beta_encryption: bool = False,
        calibration: float = 1.0,
    ) -> None:
        if packing_factor < 1:
            raise ConfigurationError("packing_factor must be ≥ 1")
        if calibration <= 0:
            raise ConfigurationError("calibration must be positive")
        self.profile = profile
        self.num_channels = num_channels
        self.num_blocks = num_blocks
        self.packing_factor = packing_factor
        # The paper's 219 s SDC processing implies β arrives as a
        # plaintext blind (one multiplication), not a fresh per-cell
        # encryption; capacity modelling defaults to that reading.
        estimate = estimate_full_scale(
            profile,
            num_channels=num_channels,
            num_blocks=num_blocks,
            fresh_beta_encryption=fresh_beta_encryption,
        )
        cells = num_channels * num_blocks
        k = packing_factor
        # Phase 1 vs phase 2 split of the SDC estimate: phase 2 is the
        # cheap ε-unblind + ΣQ̃ accumulation (adds only).
        phase2 = cells * (
            profile.hom_sub_s + 2 * profile.hom_add_s
        ) + profile.hom_scale_full_s
        phase1 = max(estimate.sdc_processing_s - phase2, 0.0)
        self.costs = PhaseCosts(
            su_prepare_s=estimate.request_preparation_s / k,
            su_refresh_s=estimate.request_refresh_s / k,
            sdc_phase1_s=phase1 / k,
            stp_convert_s=estimate.stp_conversion_s / k,
            sdc_phase2_s=phase2 / k,
            su_decrypt_s=profile.decryption_s,
            pu_prepare_s=estimate.pu_update_prepare_s,
            sdc_pu_update_s=estimate.sdc_pu_update_s,
        )
        if calibration != 1.0:
            self.costs = self.costs.scaled(calibration)
        self.calibration = calibration
        self._estimate = estimate

    @classmethod
    def calibration_from(
        cls,
        profile: PaillierCostProfile,
        measured: MeasuredRound,
        bench_channels: int = BENCH_CHANNELS,
        bench_blocks: int = BENCH_BLOCKS,
    ) -> float:
        """Machine-speed factor from a measured bench round.

        The service bench times one full unpacked protocol round at the
        reduced bench scale; the same round predicted by ``profile`` at
        that scale gives the denominator.  The ratio folds this
        machine's primitive speed (and the bench's reduced key size)
        into one multiplicative factor applicable at any (C, B) scale —
        the phase proportions stay analytic.
        """
        reference = cls(profile, bench_channels, bench_blocks)
        costs = reference.costs
        modeled_round_s = (
            costs.su_prepare_s
            + costs.sdc_phase1_s
            + costs.stp_convert_s
            + costs.sdc_phase2_s
            + costs.su_decrypt_s
        )
        return measured.seconds_per_request / modeled_round_s

    # -- wire sizes (for the latency model) ---------------------------------

    @property
    def request_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def extraction_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def conversion_bytes(self) -> int:
        return self._estimate.su_request_bytes // self.packing_factor

    @property
    def pu_update_bytes(self) -> int:
        return self._estimate.pu_update_bytes

    @property
    def response_bytes(self) -> int:
        return self._estimate.response_bytes

    def saturation_rate_per_hour(self) -> float:
        """Arrival rate at which the SDC's utilisation reaches 1."""
        return 3600.0 / self.costs.sdc_per_request_s
