"""CBRS tiered-access scenario: incumbent / PAL / GAA over WATCH budgets.

The paper evaluates PISA on a UHF TV-whitespace deployment where every
secondary user is equal.  The 3.5 GHz CBRS band (TrustSAS, arXiv
1907.03136) layers a three-tier priority model on the same
database-driven sharing idea:

* **incumbents** (federal radar, FSS) must never see interference —
  they map onto PISA's PUs: their presence shapes the WATCH
  interference budget, and incumbent activity arrives as PU channel
  updates;
* **PAL** (Priority Access Licence) holders paid for protected access
  — when the budget is exhausted their grants *preempt* GAA users;
* **GAA** (General Authorized Access) users take whatever is left and
  can be revoked at any time.

This module maps those semantics onto the existing machinery without
touching the crypto path: the environment, populations, and WATCH
decisions are exactly a :func:`~repro.watch.scenario.build_scenario`
output (so socket-plane workers rebuild it unchanged from a plain
``ScenarioConfig``), and the tiering lives entirely broker-side in
:class:`TieredAdmission` — an SAS-style authorization ledger consulted
at submission time.

Determinism is load-bearing: admission decisions depend *only* on the
order requests are submitted, never on how long shards take to answer,
so transcripts stay byte-identical across the in-memory and socket
planes and across repeated runs.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.telemetry.metrics import MetricsRegistry
from repro.watch.scenario import Scenario, ScenarioConfig, build_scenario

__all__ = [
    "TIER_INCUMBENT",
    "TIER_PAL",
    "TIER_GAA",
    "CbrsConfig",
    "CbrsScenario",
    "assign_tiers",
    "derive_gaa_capacity",
    "build_cbrs_scenario",
    "TieredAdmission",
]

TIER_INCUMBENT = "incumbent"
TIER_PAL = "pal"
TIER_GAA = "gaa"

#: Tiers that submit spectrum requests through the broker.  Incumbents
#: never request — they are the PU population whose activity *defines*
#: the budget.
REQUESTING_TIERS = (TIER_PAL, TIER_GAA)


@dataclass(frozen=True)
class CbrsConfig:
    """Knobs for the CBRS mapping on top of a base ScenarioConfig.

    ``pal_every`` assigns every Nth SU (by index) to the PAL tier,
    mirroring the FCC's cap of a minority of PAL licences per census
    tract; the rest are GAA.  ``gaa_capacity`` fixes the concurrent
    authorization budget, or 0 to derive it from the WATCH
    interference-budget geometry (:func:`derive_gaa_capacity`).
    """

    base: ScenarioConfig = field(default_factory=ScenarioConfig)
    pal_every: int = 3
    gaa_capacity: int = 0

    def __post_init__(self) -> None:
        if self.pal_every < 1:
            raise ConfigurationError("pal_every must be >= 1")
        if self.gaa_capacity < 0:
            raise ConfigurationError("gaa_capacity must be >= 0")


@dataclass(frozen=True)
class CbrsScenario:
    """A built CBRS deployment: base scenario plus tier metadata."""

    scenario: Scenario
    #: SU id -> tier (pal / gaa); incumbents are ``scenario.pus``.
    tier_of: dict[str, str]
    #: Concurrent authorizations the shared budget supports.
    capacity: int


def assign_tiers(num_sus: int, pal_every: int = 3) -> dict[str, str]:
    """Deterministic tier assignment by SU index.

    SU ids follow the ``su-<index>`` convention used by every service
    builder; index 0, ``pal_every``, 2·``pal_every``… hold PAL licences.
    """
    return {
        f"su-{index}": TIER_PAL if index % pal_every == 0 else TIER_GAA
        for index in range(num_sus)
    }


def derive_gaa_capacity(scenario: Scenario) -> int:
    """Concurrent-authorization budget from the WATCH geometry.

    For each block, count the channels whose dynamic exclusion zone
    (the WATCH interference budget around active incumbents) leaves the
    block free; the budget is the median across blocks — the number of
    simultaneous grants a typical census tract can host.  Clamped to at
    least 1 so the PAL tier always has something to preempt into.
    """
    from repro.watch.capacity import capacity_report

    env = scenario.environment
    report = capacity_report(
        env, scenario.pus, probe_power_dbm=scenario.config.su_tx_power_dbm
    )
    free_by_block = [0] * env.num_blocks
    for zones in report.per_channel:
        blocked = zones.dynamic_blocks
        for block in range(env.num_blocks):
            if block not in blocked:
                free_by_block[block] += 1
    return max(1, int(statistics.median(free_by_block)))


def build_cbrs_scenario(config: CbrsConfig | None = None) -> CbrsScenario:
    """Build the tiered deployment from a plain base scenario.

    The base environment is byte-for-byte a ``build_scenario`` output,
    so a socket worker handed the base ``ScenarioConfig`` reconstructs
    the identical WATCH substrate; only the broker needs the tier map.
    """
    cfg = config or CbrsConfig()
    scenario = build_scenario(cfg.base)
    tier_of = assign_tiers(len(scenario.sus), cfg.pal_every)
    capacity = cfg.gaa_capacity or derive_gaa_capacity(scenario)
    return CbrsScenario(scenario=scenario, tier_of=tier_of, capacity=capacity)


@dataclass(frozen=True)
class _Lease:
    su_id: str
    tier: str
    sequence: int


class TieredAdmission:
    """SAS-style tiered authorization ledger for the broker.

    The ledger tracks one *lease* per SU holding an authorization.
    All mutations happen synchronously inside ``on_submit`` — in
    submission order — which is what keeps the socket and in-memory
    planes byte-identical: a shard's response latency can never reorder
    admission decisions.

    Semantics per submission:

    * a re-submitting SU replaces its own lease (the closed-loop
      drivers re-request per SU, mirroring licence refresh);
    * under capacity, everyone is admitted;
    * at capacity, a **GAA** request is rejected (reason
      ``tier_budget``);
    * at capacity, a **PAL** request preempts the *oldest* GAA lease —
      recorded as a ``("preempt", victim)`` event *before* the PAL
      SU's ``("admit", su_id)`` event, the ordering the tests assert.
      Preemption revokes the victim's authorization (it must
      re-request), exactly as an SAS revokes a GAA grant; the victim's
      in-flight protocol run is not torn down mid-round.
    * a PAL request at capacity with no GAA lease to evict is rejected
      too — the band is genuinely full of equal-or-higher tiers.

    Per-tier telemetry families are pre-registered at zero so scrapes
    and CI greps see them before the first grant.
    """

    def __init__(
        self,
        tier_of: dict[str, str],
        capacity: int,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if capacity < 1:
            raise ConfigurationError("tier capacity must be >= 1")
        unknown = sorted(
            {tier for tier in tier_of.values() if tier not in REQUESTING_TIERS}
        )
        if unknown:
            raise ConfigurationError(
                f"non-requesting tiers in map: {', '.join(unknown)}"
            )
        self.tier_of = dict(tier_of)
        self.capacity = capacity
        self._metrics = metrics or MetricsRegistry()
        self._leases: dict[str, _Lease] = {}
        self._sequence = 0
        #: (verb, su_id) admission log: admit / reject / preempt / grant.
        self.events: list[tuple[str, str]] = []
        for tier in (TIER_INCUMBENT, TIER_PAL, TIER_GAA):
            self._metrics.counter("grants_total", tier=tier)
            self._metrics.counter("preemptions_total", tier=tier)
            self._metrics.counter("tier_rejections_total", tier=tier)

    def tier(self, su_id: str) -> str:
        """Tier of an SU; unmapped ids default to GAA (lowest tier)."""
        return self.tier_of.get(su_id, TIER_GAA)

    @property
    def active_leases(self) -> dict[str, str]:
        """su_id -> tier for currently held authorizations."""
        return {lease.su_id: lease.tier for lease in self._leases.values()}

    def _oldest_gaa(self) -> _Lease | None:
        gaa = [l for l in self._leases.values() if l.tier == TIER_GAA]
        return min(gaa, key=lambda l: l.sequence) if gaa else None

    def on_submit(self, su_id: str) -> bool:
        """Decide admission, mutating the ledger.  Returns admitted."""
        tier = self.tier(su_id)
        if su_id in self._leases:
            # Licence refresh: replace our own lease, keep its age.
            old = self._leases[su_id]
            self._leases[su_id] = _Lease(su_id, tier, old.sequence)
            self.events.append(("admit", su_id))
            return True
        if len(self._leases) >= self.capacity:
            if tier == TIER_GAA:
                self._metrics.counter("tier_rejections_total", tier=tier).inc()
                self.events.append(("reject", su_id))
                return False
            victim = self._oldest_gaa()
            if victim is None:
                self._metrics.counter("tier_rejections_total", tier=tier).inc()
                self.events.append(("reject", su_id))
                return False
            del self._leases[victim.su_id]
            self._metrics.counter(
                "preemptions_total", tier=victim.tier
            ).inc()
            self.events.append(("preempt", victim.su_id))
        self._sequence += 1
        self._leases[su_id] = _Lease(su_id, tier, self._sequence)
        self.events.append(("admit", su_id))
        return True

    def on_granted(self, su_id: str) -> None:
        """Record a resolved grant — pure telemetry, no ledger feedback."""
        self._metrics.counter("grants_total", tier=self.tier(su_id)).inc()
        self.events.append(("grant", su_id))

    def on_pu_update(self) -> None:
        """Incumbent activity reached the SDC — count it as such."""
        self._metrics.counter("grants_total", tier=TIER_INCUMBENT).inc()
