"""The Bahrak et al. probing attack (§II) — and what PISA changes.

Related work the paper builds on: "a malicious SU can determine the
types and locations of a PU in a given region of interest by sending
seemingly innocuous queries" to the spectrum database.  This module
implements that attack against our substrate to make the threat model
concrete:

* :class:`ProbingAttack` issues probe requests over a (block × channel)
  sweep and reconstructs active-PU locations and channels from the
  grant/deny pattern — near-perfect against any system that answers
  honest queries, because the *decisions themselves* carry the
  information.
* :func:`sdc_breach_view` contrasts what a *breached database* leaks:
  the plaintext WATCH SDC stores every PU's channel and signal in the
  clear; the PISA SDC stores only ciphertexts, so the same breach
  yields nothing (demonstrated by a guess-the-channel experiment).

The honest conclusion, matching the paper's scope: PISA eliminates the
*database* as an information source (its §V guarantee), while
decision-probing by a licensed adversary remains possible in any
allocation system and must be handled by policy (licensing cost,
rate limiting, obfuscation à la Bahrak).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.sdc import PlaintextSDC

__all__ = ["ProbeReport", "ProbingAttack", "sdc_breach_view"]


@dataclass(frozen=True)
class ProbeReport:
    """What the probing adversary reconstructed."""

    probes_used: int
    #: (channel, block) cells the attacker believes host an active PU.
    inferred_cells: frozenset[tuple[int, int]]
    #: Ground-truth active cells, for scoring.
    true_cells: frozenset[tuple[int, int]]

    @property
    def precision(self) -> float:
        if not self.inferred_cells:
            return 1.0 if not self.true_cells else 0.0
        return len(self.inferred_cells & self.true_cells) / len(self.inferred_cells)

    @property
    def recall(self) -> float:
        if not self.true_cells:
            return 1.0
        return len(self.inferred_cells & self.true_cells) / len(self.true_cells)


class ProbingAttack:
    """Decision-oracle probing: infer PU cells from grant/deny patterns.

    Strategy (a simplified Bahrak sweep): for every channel, probe each
    block at a power low enough not to trip empty-block caps but high
    enough to trip a co-located PU's budget.  A deny at (c, b) with the
    calibration probe granted elsewhere marks a suspected PU.  The
    decision oracle is whatever answers requests — for PISA that means
    the attacker must be an *enrolled SU* actually receiving licenses;
    the breached-SDC path this attack needs in the plaintext system is
    gone (see :func:`sdc_breach_view`).
    """

    def __init__(
        self,
        environment: SpectrumEnvironment,
        decision_oracle,
        probe_power_dbm: float = 10.0,
    ) -> None:
        self.environment = environment
        self._decide = decision_oracle
        self.probe_power_dbm = probe_power_dbm
        self.probes_used = 0

    def _probe(self, block: int, channel: int) -> bool:
        self.probes_used += 1
        su = SUTransmitter(
            su_id=f"attacker-{self.probes_used}",
            block_index=block,
            tx_power_dbm=self.probe_power_dbm,
        )
        return self._decide(su, channel)

    def sweep(self, active_pus: list[PUReceiver]) -> ProbeReport:
        """Probe every (channel, block) cell and reconstruct PU cells.

        A denial is attributed to the nearest block actually hosting the
        budget violation — since a probe's interference is strongest in
        its own block, a deny at (c, b) flags (c, b) itself.
        """
        env = self.environment
        inferred = set()
        for channel in range(env.num_channels):
            for block in range(env.num_blocks):
                if not self._probe(block, channel):
                    inferred.add((channel, block))
        # Denials cluster around PUs; keep local minima (the block whose
        # neighbours are also denied is interior — the PU cell).  For
        # the simplified scorer we report the raw denial set.
        true_cells = frozenset(
            (pu.channel_slot, pu.block_index)
            for pu in active_pus
            if pu.is_active
        )
        return ProbeReport(
            probes_used=self.probes_used,
            inferred_cells=frozenset(inferred),
            true_cells=true_cells,
        )


def sdc_breach_view(
    environment: SpectrumEnvironment,
    pus: list[PUReceiver],
    coordinator=None,
    guesses: int = 1,
) -> dict[str, float]:
    """Compare what a breached SDC learns under WATCH vs under PISA.

    Returns per-system channel-recovery accuracy for the first PU:

    * ``watch``: read the budget matrix; the PU's channel is the cell
      differing from ``E`` — accuracy 1.0 by construction.
    * ``pisa``: the stored state is ciphertext; the best available
      strategy is guessing among C channels — expected accuracy 1/C,
      measured here by literally attempting the read.
    """
    env = environment
    target = pus[0]

    watch_sdc = PlaintextSDC(env)
    for pu in pus:
        watch_sdc.pu_update(pu)
    budget = watch_sdc.budget
    watch_recovered = None
    for c in range(env.num_channels):
        if budget[c, target.block_index] != env.e_matrix[c, target.block_index]:
            watch_recovered = c
            break
    watch_accuracy = 1.0 if watch_recovered == target.channel_slot else 0.0

    pisa_accuracy = 0.0
    if coordinator is not None:
        # The breached PISA SDC holds one ciphertext per channel at the
        # PU's block; without sk_G every candidate looks alike.  Emulate
        # the best generic attack: pick the lexicographically-smallest
        # ciphertext (any fixed rule does equally well) — success only
        # by luck.
        cells = {
            c: coordinator.sdc._w_sum[(c, target.block_index)].ciphertext
            for c in range(env.num_channels)
        }
        guess = min(cells, key=cells.get)
        pisa_accuracy = 1.0 if guess == target.channel_slot else 0.0
    return {
        "watch": watch_accuracy,
        "pisa": pisa_accuracy,
        "pisa_baseline": 1.0 / env.num_channels,
    }
