"""Baselines the paper positions PISA against.

* :mod:`repro.baselines.securecmp` — a bit-decomposition secure
  comparison protocol in the style of [12], [13], [18]: what the SDC/STP
  would have to run per matrix cell if PISA did not use its
  multiplicative blinding trick.  Used by the ablation benchmark.
* :mod:`repro.baselines.fhe_costmodel` — a cost model for solving the
  same problem with generic fully homomorphic encryption, using the
  literature constants the paper cites (homomorphic AES ≈5.8 s and
  ≈21 MB per 128-bit block, [21]).
"""

from repro.baselines.fhe_costmodel import FheCostEstimate, FheCostModel
from repro.baselines.probing import ProbeReport, ProbingAttack, sdc_breach_view
from repro.baselines.securecmp import ComparisonStats, SecureComparisonProtocol

__all__ = [
    "FheCostEstimate",
    "FheCostModel",
    "ProbeReport",
    "ProbingAttack",
    "sdc_breach_view",
    "ComparisonStats",
    "SecureComparisonProtocol",
]
