"""Generic-FHE cost model.

§VI-A argues PISA's ≈minutes-scale costs are "acceptable and practical"
*compared to generic methods based on fully homomorphic encryptions*,
citing the homomorphic-AES measurements of Gentry–Halevi–Smart [21]:
"computing AES circuit over encrypted data will take ≈5.8 seconds and
will use ≈21 MB of memory per 128-bit input message".

We cannot run an FHE library offline (and the paper didn't either — it
cites published constants), so the comparison benchmark uses this cost
model: it counts the 128-bit blocks a generic FHE evaluation of the
spectrum-allocation circuit would process, and scales the cited per-block
constants.  The model is deliberately *generous* to FHE — it charges one
AES-equivalent circuit per block of the input matrix and nothing for the
comparison sub-circuits, so the reported gap is a lower bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["FheCostEstimate", "FheCostModel"]

#: [21] Gentry, Halevi, Smart, "Homomorphic evaluation of the AES
#: circuit": ≈5.8 s amortised per 128-bit block.
GHS_SECONDS_PER_BLOCK = 5.8
#: [21]: ≈21 MB of memory per 128-bit input message.
GHS_MB_PER_BLOCK = 21.0
BITS_PER_BLOCK = 128


@dataclass(frozen=True)
class FheCostEstimate:
    """Estimated cost of one generic-FHE protocol execution."""

    input_blocks: int
    time_seconds: float
    memory_mb: float

    @property
    def time_hours(self) -> float:
        return self.time_seconds / 3600.0


class FheCostModel:
    """Scale the cited per-block constants to a PISA-sized workload."""

    def __init__(
        self,
        seconds_per_block: float = GHS_SECONDS_PER_BLOCK,
        mb_per_block: float = GHS_MB_PER_BLOCK,
    ) -> None:
        if seconds_per_block <= 0 or mb_per_block <= 0:
            raise ConfigurationError("cost constants must be positive")
        self.seconds_per_block = seconds_per_block
        self.mb_per_block = mb_per_block

    def blocks_for_matrix(self, num_channels: int, num_blocks: int, value_bits: int) -> int:
        """128-bit blocks needed to carry a C × B matrix of ℓ-bit values."""
        if num_channels < 1 or num_blocks < 1 or value_bits < 1:
            raise ConfigurationError("matrix dimensions must be positive")
        total_bits = num_channels * num_blocks * value_bits
        return math.ceil(total_bits / BITS_PER_BLOCK)

    def estimate_request(
        self, num_channels: int, num_blocks: int, value_bits: int
    ) -> FheCostEstimate:
        """Cost to process one SU transmission request under generic FHE.

        One circuit evaluation per input block of the request matrix —
        the budget matrix, blinding, and comparison circuits are charged
        nothing, so this under-estimates real FHE cost.
        """
        blocks = self.blocks_for_matrix(num_channels, num_blocks, value_bits)
        return FheCostEstimate(
            input_blocks=blocks,
            time_seconds=blocks * self.seconds_per_block,
            memory_mb=blocks * self.mb_per_block,
        )
