"""Bit-decomposition secure comparison — the road PISA did not take.

§IV-B: "Some of the existing methods [13], [12], [18] require the
involved integers to be encrypted bit by bit.  Consequently, this will
make the rest computations involving T'(c, b) extremely complex and
time-consuming.  (Those methods will also need multiple rounds of
communications…)"

To quantify that claim, this module implements a representative
two-party comparison protocol between the SDC (holding ``Enc_G(I)`` and
the mask) and the STP (holding ``sk_G``), in the DGK/Damgård style:

1. **Mask**: SDC samples ``r`` uniform in ``[2^ℓ, 2^{ℓ+κ})``, sends
   ``Enc(I + r)``; STP decrypts ``z = I + r``.  ``I ≤ 0  ⟺  z ≤ r``.
2. **Bitwise stage**: STP encrypts each bit of ``z``; the SDC, knowing
   the bits of ``r``, homomorphically evaluates the DGK cells

   ``e_i = r_i − z_i + 1 + 3·Σ_{j>i} (z_j ⊕ r_j)``

   blinds each with a fresh non-zero scalar, shuffles, and returns them.
3. **Decide**: STP decrypts; ``r < z`` iff some cell is zero, so
   ``I ≤ 0 ⟺ no cell is zero``.

Per comparison this costs ``ℓ+κ+1`` encryptions *and* decryptions plus
three communication legs — versus PISA's single blinded ciphertext per
cell and one leg.  The ablation benchmark
(``benchmarks/bench_ablation_comparison.py``) measures exactly this gap.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.paillier import EncryptedNumber, PaillierKeypair
from repro.crypto.rand import RandomSource, default_rng
from repro.crypto.serialization import encoded_int_size
from repro.errors import BlindingError, ProtocolError

__all__ = ["ComparisonStats", "SecureComparisonProtocol"]


@dataclass
class ComparisonStats:
    """Cost counters accumulated across comparisons."""

    comparisons: int = 0
    encryptions: int = 0
    decryptions: int = 0
    hom_operations: int = 0
    communication_legs: int = 0
    bytes_transferred: int = 0


class SecureComparisonProtocol:
    """Two-party ``I ≤ 0`` test over a Paillier ciphertext.

    The object plays *both* roles (SDC and STP) so tests and benchmarks
    can run it standalone; the ``stats`` field records what each message
    leg would have cost on the wire.

    Parameters
    ----------
    keypair:
        The group keypair — the "STP side" uses the private half.
    value_bits:
        Bound on ``|I|`` (``ℓ``): the protocol needs ``|I| < 2**value_bits``.
    kappa:
        Statistical masking security parameter (``κ``).
    """

    def __init__(
        self,
        keypair: PaillierKeypair,
        value_bits: int,
        kappa: int = 40,
        rng: RandomSource | None = None,
    ) -> None:
        total_bits = value_bits + kappa + 2
        if total_bits + 2 > keypair.public_key.n.bit_length() - 1:
            raise BlindingError("key too small for the masked comparison range")
        self.keypair = keypair
        self.value_bits = value_bits
        self.kappa = kappa
        self._rng = default_rng(rng)
        self.stats = ComparisonStats()

    @property
    def bit_length(self) -> int:
        """Bits compared in the DGK stage (mask width + 1)."""
        return self.value_bits + self.kappa + 1

    # -- the protocol -----------------------------------------------------------

    def is_non_positive(self, encrypted_indicator: EncryptedNumber) -> bool:
        """Run the full comparison; returns ``I ≤ 0``.

        Raises :class:`ProtocolError` if the ciphertext is under a
        different key.
        """
        pk = self.keypair.public_key
        sk = self.keypair.private_key
        if encrypted_indicator.public_key != pk:
            raise ProtocolError("indicator not under the group key")

        # Leg 1 (SDC → STP): the additively masked indicator.
        r = self._rng.randrange(1 << self.value_bits, 1 << (self.value_bits + self.kappa))
        masked = encrypted_indicator.add_plain(r)
        self.stats.hom_operations += 1
        self._account_leg([masked])

        z = sk.decrypt(masked)
        self.stats.decryptions += 1
        if z < 0:
            raise ProtocolError("indicator outside the declared value range")

        # Leg 2 (STP → SDC): bitwise encryption of z.
        z_bits = [(z >> i) & 1 for i in range(self.bit_length)]
        z_cts = [pk.encrypt(bit, rng=self._rng) for bit in z_bits]
        self.stats.encryptions += len(z_cts)
        self._account_leg(z_cts)

        # SDC side: DGK cells for the comparison r < z.
        r_bits = [(r >> i) & 1 for i in range(self.bit_length)]
        cells = []
        xor_suffix = pk.encrypt(0, rng=self._rng)  # Σ_{j>i} (z_j ⊕ r_j), built high→low
        self.stats.encryptions += 1
        for i in reversed(range(self.bit_length)):
            # e_i = r_i − z_i + 1 + 3·Σ_{j>i}(z_j ⊕ r_j), all homomorphic in Enc(z_i).
            e = xor_suffix.scalar_mul(3)
            e = e.add_plain(r_bits[i] + 1)
            e = e.subtract(z_cts[i])
            self.stats.hom_operations += 3
            scalar = self._rng.randrange(1, 1 << 32)
            cells.append(e.scalar_mul(scalar))
            self.stats.hom_operations += 1
            # Extend the suffix with this bit's XOR for the next (lower) i:
            # z ⊕ r = z + r − 2·z·r → linear because r_i is plaintext.
            if r_bits[i] == 0:
                xor_i = z_cts[i]
            else:
                xor_i = z_cts[i].scalar_mul(-1).add_plain(1)
                self.stats.hom_operations += 2
            xor_suffix = xor_suffix.add(xor_i)
            self.stats.hom_operations += 1
        self._shuffle(cells)

        # Leg 3 (SDC → STP): blinded, shuffled cells.
        self._account_leg(cells)
        r_less_than_z = False
        for cell in cells:
            if sk.decrypt(cell) == 0:
                r_less_than_z = True
            self.stats.decryptions += 1

        self.stats.comparisons += 1
        return not r_less_than_z  # I ≤ 0  ⟺  z ≤ r  ⟺  not (r < z)

    # -- helpers ---------------------------------------------------------------

    def _account_leg(self, ciphertexts) -> None:
        self.stats.communication_legs += 1
        self.stats.bytes_transferred += sum(
            encoded_int_size(ct.ciphertext) for ct in ciphertexts
        )

    def _shuffle(self, items: list) -> None:
        """Fisher–Yates with the protocol's randomness source."""
        for i in range(len(items) - 1, 0, -1):
            j = self._rng.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]
