"""The Paillier cryptosystem (Paillier, EUROCRYPT'99).

This module implements exactly the primitive PISA builds on (Figure 2 of
the paper): key generation, probabilistic encryption, decryption, and the
three homomorphic operations

* addition        ``D(E(a) ⊕ E(b)) = a + b  (mod n)``
* subtraction     ``D(E(a) ⊖ E(b)) = a − b  (mod n)``
* scalar multiply ``D(k ⊗ E(a))   = k · a  (mod n)``

plus ciphertext *re-randomisation* (multiplying by a fresh ``r**n``),
which §VI-A of the paper uses to refresh a pre-computed request cheaply.

Implementation notes
--------------------
* The generator defaults to ``g = n + 1``, for which encryption needs a
  single modular multiplication (``(1 + m·n) · r**n mod n²``) instead of a
  full exponentiation of ``g``.
* Decryption uses the standard CRT speed-up: exponentiate separately
  modulo ``p²`` and ``q²`` and recombine, roughly a 4x saving.
* Scalar multiplication by a *negative* constant inverts the ciphertext
  modulo ``n²`` first, so small negative scalars (PISA uses ``ε ∈ {−1,1}``)
  cost one inverse plus a small exponentiation rather than a 2048-bit one.
* All values are plain Python integers; there is no GMP dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.crypto.numtheory import CrtContext, generate_distinct_primes, lcm, modinv
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ConfigurationError, DecryptionError, KeyMismatchError

__all__ = [
    "ObfuscatorPool",
    "PaillierPublicKey",
    "PaillierPrivateKey",
    "PaillierKeypair",
    "EncryptedNumber",
    "generate_keypair",
    "DEFAULT_KEY_BITS",
]

#: NIST SP 800-57 recommends 2048-bit moduli for a 112-bit security level;
#: this matches Table II of the paper.
DEFAULT_KEY_BITS = 2048


class PaillierPublicKey:
    """Public key ``(n, g)`` with precomputed ``n²``.

    Instances are hashable and compare equal iff their ``(n, g)`` pairs
    match, which lets ciphertexts detect cross-key operations.
    """

    __slots__ = ("n", "g", "n_sq", "_half_n")

    def __init__(self, n: int, g: int | None = None) -> None:
        if n < 15:
            raise ConfigurationError("Paillier modulus too small")
        self.n = n
        self.g = n + 1 if g is None else g
        self.n_sq = n * n
        self._half_n = n // 2
        if not 1 < self.g < self.n_sq:
            raise ConfigurationError("generator g out of range")

    # -- identity ---------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, PaillierPublicKey)
            and self.n == other.n
            and self.g == other.g
        )

    def __hash__(self) -> int:
        return hash(("paillier-pk", self.n, self.g))

    def __repr__(self) -> str:
        return f"PaillierPublicKey(bits={self.n.bit_length()})"

    @property
    def key_bits(self) -> int:
        """Bit length of the modulus ``n``."""
        return self.n.bit_length()

    @property
    def max_signed(self) -> int:
        """Largest magnitude representable by the signed encoding."""
        return self._half_n

    # -- encryption -------------------------------------------------------

    def random_r(self, rng: RandomSource | None = None) -> int:
        """Sample an encryption nonce ``r`` uniform in ``Z_n^*``.

        For ``n = p·q`` with large primes, a uniform element of
        ``[1, n)`` is invertible except with negligible probability, so we
        sample and retry on the (astronomically unlikely) gcd failure.
        """
        import math

        rng = default_rng(rng)
        while True:
            r = rng.randrange(1, self.n)
            if math.gcd(r, self.n) == 1:
                return r

    def raw_encrypt(self, plaintext: int, r: int | None = None, rng: RandomSource | None = None) -> int:
        """Encrypt ``plaintext ∈ Z_n`` and return the raw ciphertext integer."""
        m = plaintext % self.n
        if r is None:
            r = self.random_r(rng)
        if self.g == self.n + 1:
            g_m = (1 + m * self.n) % self.n_sq
        else:
            g_m = pow(self.g, m, self.n_sq)
        return (g_m * pow(r, self.n, self.n_sq)) % self.n_sq

    def encrypt(
        self, value: int, r: int | None = None, rng: RandomSource | None = None
    ) -> "EncryptedNumber":
        """Encrypt a *signed* integer ``value`` with ``|value| ≤ n/2``.

        Negative values are mapped into the upper half of ``Z_n``; see
        :mod:`repro.crypto.encoding` for the encoding convention.
        """
        from repro.crypto.encoding import encode_signed

        return EncryptedNumber(self, self.raw_encrypt(encode_signed(value, self.n), r=r, rng=rng))

    def encrypt_zero(self, rng: RandomSource | None = None) -> "EncryptedNumber":
        """A fresh encryption of zero (useful for re-randomisation)."""
        return self.encrypt(0, rng=rng)

    def obfuscator_job(self, r: int) -> tuple[int, int, int]:
        """The :data:`~repro.crypto.parallel.PowJob` computing ``r**n mod n²``.

        Precomputing obfuscators is the embarrassingly-parallel half of
        encryption; feed the job to an executor and finish with
        :meth:`encrypt_with_obfuscator`.
        """
        return (r, self.n, self.n_sq)

    def encrypt_with_obfuscator(self, value: int, obfuscator: int) -> "EncryptedNumber":
        """Encrypt a signed integer using a precomputed ``r**n mod n²``.

        Byte-identical to ``encrypt(value, r=r)`` when ``obfuscator ==
        pow(r, n, n²)`` — the cheap completion step after the expensive
        exponentiation ran elsewhere (worker pool, idle-time stock).
        """
        from repro.crypto.encoding import encode_signed

        m = encode_signed(value, self.n)
        if self.g == self.n + 1:
            g_m = (1 + m * self.n) % self.n_sq
        else:
            g_m = pow(self.g, m, self.n_sq)
        return EncryptedNumber(self, (g_m * obfuscator) % self.n_sq)


class PaillierPrivateKey:
    """Private key holding ``(λ, μ)`` plus CRT acceleration state."""

    __slots__ = ("public_key", "p", "q", "lam", "mu", "_crt", "_hp", "_hq", "_p_sq", "_q_sq")

    def __init__(self, public_key: PaillierPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise ConfigurationError("p*q does not match the public modulus")
        if p == q:
            raise ConfigurationError("p and q must be distinct")
        self.public_key = public_key
        self.p = p
        self.q = q
        self.lam = lcm(p - 1, q - 1)
        self._crt = CrtContext.create(p, q)
        self._p_sq = p * p
        self._q_sq = q * q
        # Standard CRT decryption constants:  h_p = L_p(g^{p-1} mod p²)^{-1}.
        self._hp = modinv(self._l_function(pow(public_key.g, p - 1, self._p_sq), p), p)
        self._hq = modinv(self._l_function(pow(public_key.g, q - 1, self._q_sq), q), q)
        # The textbook μ = L(g^λ mod n²)^{-1} mod n, kept for completeness
        # and for the non-CRT decryption path used in tests.
        n = public_key.n
        self.mu = modinv(self._l_function(pow(public_key.g, self.lam, public_key.n_sq), n), n)

    @staticmethod
    def _l_function(x: int, n: int) -> int:
        """Paillier's ``L(x) = (x − 1) / n`` on the subgroup where it is exact."""
        return (x - 1) // n

    def raw_decrypt(self, ciphertext: int) -> int:
        """Decrypt a raw ciphertext integer to its plaintext in ``Z_n``."""
        if not 0 < ciphertext < self.public_key.n_sq:
            raise DecryptionError("ciphertext out of range")
        mp = (
            self._l_function(pow(ciphertext, self.p - 1, self._p_sq), self.p) * self._hp
        ) % self.p
        mq = (
            self._l_function(pow(ciphertext, self.q - 1, self._q_sq), self.q) * self._hq
        ) % self.q
        return self._crt.combine(mp, mq)

    def decrypt_pow_jobs(self, ciphertext: int) -> tuple[tuple[int, int, int], tuple[int, int, int]]:
        """The two CRT exponentiations of :meth:`raw_decrypt` as pow jobs.

        Lets a batch runtime ship the expensive halves of many
        decryptions to an executor; finish each with
        :meth:`raw_decrypt_from_pows`.
        """
        if not 0 < ciphertext < self.public_key.n_sq:
            raise DecryptionError("ciphertext out of range")
        return (
            (ciphertext, self.p - 1, self._p_sq),
            (ciphertext, self.q - 1, self._q_sq),
        )

    def raw_decrypt_from_pows(self, pow_p: int, pow_q: int) -> int:
        """Complete a CRT decryption from the :meth:`decrypt_pow_jobs` results."""
        mp = (self._l_function(pow_p, self.p) * self._hp) % self.p
        mq = (self._l_function(pow_q, self.q) * self._hq) % self.q
        return self._crt.combine(mp, mq)

    def raw_decrypt_textbook(self, ciphertext: int) -> int:
        """Decrypt using the textbook ``(λ, μ)`` formula (no CRT).

        Slower than :meth:`raw_decrypt`; kept as an oracle for tests.
        """
        if not 0 < ciphertext < self.public_key.n_sq:
            raise DecryptionError("ciphertext out of range")
        n = self.public_key.n
        x = pow(ciphertext, self.lam, self.public_key.n_sq)
        return (self._l_function(x, n) * self.mu) % n

    def decrypt(self, encrypted: "EncryptedNumber") -> int:
        """Decrypt to a *signed* integer (see the encoding convention)."""
        from repro.crypto.encoding import decode_signed

        if encrypted.public_key != self.public_key:
            raise KeyMismatchError("ciphertext was produced under a different key")
        return decode_signed(self.raw_decrypt(encrypted.ciphertext), self.public_key.n)

    def __repr__(self) -> str:
        return f"PaillierPrivateKey(bits={self.public_key.key_bits})"


@dataclass(frozen=True)
class PaillierKeypair:
    """A matched public/private Paillier key pair."""

    public_key: PaillierPublicKey
    private_key: PaillierPrivateKey

    @property
    def key_bits(self) -> int:
        return self.public_key.key_bits


def generate_keypair(
    key_bits: int = DEFAULT_KEY_BITS, rng: RandomSource | None = None
) -> PaillierKeypair:
    """Generate a Paillier keypair with an ``key_bits``-bit modulus.

    The two primes are ``key_bits // 2`` bits each, so ``n`` has either
    ``key_bits`` or ``key_bits − 1`` bits; generation retries until the
    modulus has the requested length, matching common library behaviour.
    """
    if key_bits < 16:
        raise ConfigurationError("key_bits must be at least 16")
    rng = default_rng(rng)
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        n = p * q
        if n.bit_length() == key_bits:
            public = PaillierPublicKey(n)
            return PaillierKeypair(public, PaillierPrivateKey(public, p, q))


class EncryptedNumber:
    """A Paillier ciphertext bound to its public key.

    Supports the operator sugar::

        c1 + c2        homomorphic addition (⊕)
        c1 - c2        homomorphic subtraction (⊖)
        k * c1         scalar multiplication (⊗), k a signed int
        -c1            negation, i.e. (−1) ⊗ c1
        c1 + k         plaintext addition (encrypt-free)

    All operations validate that both operands share the same public key.
    """

    __slots__ = ("public_key", "ciphertext")

    def __init__(self, public_key: PaillierPublicKey, ciphertext: int) -> None:
        self.public_key = public_key
        self.ciphertext = ciphertext % public_key.n_sq

    # -- helpers ----------------------------------------------------------

    def _check_same_key(self, other: "EncryptedNumber") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    # -- homomorphic operations (Figure 2 of the paper) -------------------

    def add(self, other: "EncryptedNumber") -> "EncryptedNumber":
        """Homomorphic addition ⊕: multiply ciphertexts mod n²."""
        self._check_same_key(other)
        return EncryptedNumber(
            self.public_key,
            (self.ciphertext * other.ciphertext) % self.public_key.n_sq,
        )

    def subtract(self, other: "EncryptedNumber") -> "EncryptedNumber":
        """Homomorphic subtraction ⊖: multiply by the inverse ciphertext."""
        self._check_same_key(other)
        inv = modinv(other.ciphertext, self.public_key.n_sq)
        return EncryptedNumber(
            self.public_key, (self.ciphertext * inv) % self.public_key.n_sq
        )

    def scalar_mul(self, scalar: int) -> "EncryptedNumber":
        """Homomorphic scalar multiplication ⊗ by a signed integer."""
        n_sq = self.public_key.n_sq
        if scalar >= 0:
            return EncryptedNumber(self.public_key, pow(self.ciphertext, scalar, n_sq))
        inv = modinv(self.ciphertext, n_sq)
        return EncryptedNumber(self.public_key, pow(inv, -scalar, n_sq))

    def add_plain(self, value: int) -> "EncryptedNumber":
        """Add a public plaintext constant without a fresh encryption.

        Uses ``E(a) · g^b = E(a + b)`` and the fast ``g = n + 1`` path.
        """
        pk = self.public_key
        m = value % pk.n
        if pk.g == pk.n + 1:
            g_m = (1 + m * pk.n) % pk.n_sq
        else:
            g_m = pow(pk.g, m, pk.n_sq)
        return EncryptedNumber(pk, (self.ciphertext * g_m) % pk.n_sq)

    def rerandomize(self, rng: RandomSource | None = None) -> "EncryptedNumber":
        """Refresh the randomness: multiply by a fresh ``r**n``.

        This computes the obfuscator ``r**n`` inline, which costs a full
        exponentiation.  §VI-A's fast refresh path precomputes obfuscators
        offline and applies them with :meth:`rerandomize_with`, which is a
        single modular multiplication ("the same amount of time as
        homomorphic addition", as the paper puts it).
        """
        pk = self.public_key
        r = pk.random_r(rng)
        return EncryptedNumber(pk, (self.ciphertext * pow(r, pk.n, pk.n_sq)) % pk.n_sq)

    def rerandomize_with(self, obfuscator: int) -> "EncryptedNumber":
        """Refresh using a precomputed obfuscator ``r**n mod n²``.

        One modular multiplication — the online cost of the §VI-A
        "multiply the pre-stored ciphertexts by r^n" optimisation.  Draw
        obfuscators from an :class:`ObfuscatorPool` filled offline.
        """
        pk = self.public_key
        return EncryptedNumber(pk, (self.ciphertext * obfuscator) % pk.n_sq)

    # -- operator sugar ----------------------------------------------------

    def __add__(self, other: "EncryptedNumber | int") -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            return self.add(other)
        if isinstance(other, int):
            return self.add_plain(other)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other: "EncryptedNumber | int") -> "EncryptedNumber":
        if isinstance(other, EncryptedNumber):
            return self.subtract(other)
        if isinstance(other, int):
            return self.add_plain(-other)
        return NotImplemented

    def __mul__(self, scalar: int) -> "EncryptedNumber":
        if isinstance(scalar, int):
            return self.scalar_mul(scalar)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self) -> "EncryptedNumber":
        return self.scalar_mul(-1)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, EncryptedNumber)
            and self.public_key == other.public_key
            and self.ciphertext == other.ciphertext
        )

    def __hash__(self) -> int:
        return hash(("paillier-ct", self.public_key.n, self.ciphertext))

    def __repr__(self) -> str:
        return f"EncryptedNumber(bits={self.public_key.key_bits})"


class ObfuscatorPool:
    """A stock of precomputed re-randomisation factors ``r**n mod n²``.

    §VI-A: an SU that resubmits a cached encrypted request only needs
    one multiplication per ciphertext *if* the ``r**n`` values are
    already on hand.  The pool is that offline stock: :meth:`refill`
    does the expensive exponentiations (idle-time work), :meth:`take`
    pops one factor for a cheap online refresh.
    """

    def __init__(self, public_key: PaillierPublicKey, rng: RandomSource | None = None) -> None:
        self.public_key = public_key
        self._rng = default_rng(rng)
        self._stock: list[int] = []

    def __len__(self) -> int:
        return len(self._stock)

    def refill(self, count: int, executor=None) -> None:
        """Precompute ``count`` obfuscators (the offline phase).

        The nonces are drawn serially (randomness stays in-process) and
        the ``r**n`` exponentiations run through ``executor`` when one is
        given — see :mod:`repro.crypto.parallel`.
        """
        from repro.crypto.parallel import default_executor

        if count < 0:
            raise ValueError("count must be non-negative")
        pk = self.public_key
        nonces = [pk.random_r(self._rng) for _ in range(count)]
        self._stock.extend(
            default_executor(executor).pow_many([pk.obfuscator_job(r) for r in nonces])
        )

    def ensure(self, count: int, executor=None) -> None:
        """Refill up to a target stock level."""
        if len(self._stock) < count:
            self.refill(count - len(self._stock), executor=executor)

    def take(self) -> int:
        """Pop one precomputed obfuscator; refills one inline if empty."""
        if not self._stock:
            self.refill(1)
        return self._stock.pop()


def hom_sum(terms: Iterable[EncryptedNumber]) -> EncryptedNumber:
    """Homomorphic sum ``⊕_i c_i`` of a non-empty iterable of ciphertexts."""
    iterator = iter(terms)
    try:
        total = next(iterator)
    except StopIteration:
        raise ValueError("hom_sum needs at least one ciphertext") from None
    for term in iterator:
        total = total.add(term)
    return total


__all__.append("hom_sum")
