"""Number-theoretic primitives.

Pure-Python implementations of everything the Paillier and RSA layers
need: Miller–Rabin primality testing, random prime generation, modular
inverses, least common multiple, and Chinese-remainder recombination.

The implementations favour clarity over micro-optimisation, but the hot
paths (primality testing, modular exponentiation) delegate to CPython's
C-level ``pow`` and are practical up to a few thousand bits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.rand import RandomSource, default_rng
from repro.errors import CryptoError

__all__ = [
    "is_probable_prime",
    "generate_prime",
    "generate_distinct_primes",
    "modinv",
    "lcm",
    "crt_pair",
    "CrtContext",
]

# Small primes used for cheap trial division before Miller-Rabin.
_SMALL_PRIMES: tuple[int, ...] = tuple(
    p
    for p in range(3, 1000, 2)
    if all(p % q for q in range(3, int(p**0.5) + 1, 2))
)


def _miller_rabin_witness(candidate: int, base: int, d: int, r: int) -> bool:
    """Return True iff ``base`` witnesses that ``candidate`` is composite."""
    x = pow(base, d, candidate)
    if x in (1, candidate - 1):
        return False
    for _ in range(r - 1):
        x = (x * x) % candidate
        if x == candidate - 1:
            return False
    return True


def is_probable_prime(candidate: int, rounds: int = 40, rng: RandomSource | None = None) -> bool:
    """Miller–Rabin primality test.

    ``rounds`` random bases give a composite-acceptance probability of at
    most ``4**-rounds``; the default 40 rounds is far below any practical
    failure probability.
    """
    if candidate < 2:
        return False
    if candidate in (2, 3):
        return True
    if candidate % 2 == 0:
        return False
    for p in _SMALL_PRIMES:
        if candidate == p:
            return True
        if candidate % p == 0:
            return False
    rng = default_rng(rng)
    d = candidate - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for _ in range(rounds):
        base = rng.randrange(2, candidate - 1)
        if _miller_rabin_witness(candidate, base, d, r):
            return False
    return True


def generate_prime(bits: int, rng: RandomSource | None = None, max_attempts: int = 100_000) -> int:
    """Generate a random prime with exactly ``bits`` bits."""
    if bits < 8:
        raise CryptoError(f"prime size too small: {bits} bits")
    rng = default_rng(rng)
    for _ in range(max_attempts):
        candidate = rng.rand_odd(bits)
        if is_probable_prime(candidate, rng=rng):
            return candidate
    raise CryptoError(f"failed to find a {bits}-bit prime in {max_attempts} attempts")


def generate_distinct_primes(
    bits: int, count: int = 2, rng: RandomSource | None = None
) -> list[int]:
    """Generate ``count`` distinct primes of ``bits`` bits each."""
    rng = default_rng(rng)
    primes: list[int] = []
    while len(primes) < count:
        p = generate_prime(bits, rng=rng)
        if p not in primes:
            primes.append(p)
    return primes


def modinv(value: int, modulus: int) -> int:
    """Return the inverse of ``value`` modulo ``modulus``.

    Raises :class:`CryptoError` when the inverse does not exist.
    """
    try:
        return pow(value, -1, modulus)
    except ValueError as exc:  # pragma: no cover - message text differs by version
        raise CryptoError(f"{value} is not invertible modulo {modulus}") from exc


def lcm(a: int, b: int) -> int:
    """Least common multiple of two positive integers."""
    if a <= 0 or b <= 0:
        raise CryptoError("lcm arguments must be positive")
    return a // math.gcd(a, b) * b


def crt_pair(residue_p: int, residue_q: int, p: int, q: int, q_inv_p: int | None = None) -> int:
    """Recombine residues mod ``p`` and mod ``q`` into a residue mod ``p*q``.

    ``q_inv_p`` may be supplied to avoid recomputing ``q^{-1} mod p``.
    """
    if q_inv_p is None:
        q_inv_p = modinv(q, p)
    diff = (residue_p - residue_q) % p
    return (residue_q + q * ((diff * q_inv_p) % p)) % (p * q)


@dataclass(frozen=True)
class CrtContext:
    """Precomputed context for fast CRT recombination mod ``p*q``.

    Used by Paillier private keys to cut decryption cost roughly 4x by
    exponentiating separately modulo ``p**2`` and ``q**2``.
    """

    p: int
    q: int
    q_inv_p: int

    @classmethod
    def create(cls, p: int, q: int) -> "CrtContext":
        if p == q:
            raise CryptoError("CRT moduli must be distinct")
        if math.gcd(p, q) != 1:
            raise CryptoError("CRT moduli must be coprime")
        return cls(p=p, q=q, q_inv_p=modinv(q, p))

    def combine(self, residue_p: int, residue_q: int) -> int:
        """Return the unique value mod ``p*q`` matching both residues."""
        return crt_pair(residue_p, residue_q, self.p, self.q, self.q_inv_p)
