"""Shared SHA-256 helpers — the one module allowed to touch :mod:`hashlib`.

Every hash computed by this library (license request commitments, the
RSA-FDH expansion, the deterministic DRBG blocks) routes through this
module so the crypto-hygiene analyzer (:mod:`repro.audit`, rule CRY001)
can enforce a single seam: direct ``hashlib`` imports anywhere else in
``src/repro`` are findings.  Centralising the calls also keeps the
algorithm choice (SHA-256 everywhere) in one place.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha256", "SHA256_DIGEST_SIZE"]

#: Digest size in bytes of the library-wide hash.
SHA256_DIGEST_SIZE = 32


def sha256(*parts: bytes) -> bytes:
    """SHA-256 digest over the concatenation of ``parts``.

    Accepting parts avoids building intermediate concatenations at call
    sites (``sha256(seed, counter_bytes)`` instead of ``seed + counter``).
    """
    state = hashlib.sha256()
    for part in parts:
        state.update(part)
    return state.digest()
