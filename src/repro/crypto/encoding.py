"""Plaintext encodings on the Paillier ring ``Z_n``.

The PISA computation mixes non-negative quantities (signal strengths,
EIRPs) with *signed* intermediate values — the interference indicator
``I = N − R`` may be negative, and the blinded value ``V = ε(αI − β)``
certainly can be.  We therefore adopt the usual threshold convention:

* a residue ``x ≤ n/2`` represents the non-negative integer ``x``;
* a residue ``x > n/2`` represents the negative integer ``x − n``.

Additionally the paper quantises physical quantities (power in mW) into
60-bit integers (Table I); :class:`SignedEncoder` wraps a key with a
configured value bit-length and checks every encode against it, while
:class:`FixedPointEncoder` provides a deterministic dB/mW quantisation
used by the radio layer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EncodingRangeError

__all__ = [
    "encode_signed",
    "decode_signed",
    "SignedEncoder",
    "FixedPointEncoder",
    "PAPER_VALUE_BITS",
]

#: Table I of the paper: 60-bit integer representation, which satisfies
#: FCC regulation and the SPLAT propagation tool's precision.
PAPER_VALUE_BITS = 60


def encode_signed(value: int, modulus: int) -> int:
    """Map a signed integer with ``|value| ≤ modulus // 2`` into ``Z_n``."""
    half = modulus // 2
    if value > half or value < -half:
        raise EncodingRangeError(
            f"value {value} exceeds the signed range ±{half} of the modulus"
        )
    return value % modulus


def decode_signed(residue: int, modulus: int) -> int:
    """Inverse of :func:`encode_signed`."""
    if not 0 <= residue < modulus:
        raise EncodingRangeError("residue out of range")
    half = modulus // 2
    return residue - modulus if residue > half else residue


@dataclass(frozen=True)
class SignedEncoder:
    """Range-checked signed encoding for a fixed value bit-length.

    Parameters
    ----------
    modulus:
        The Paillier modulus ``n``.
    value_bits:
        Maximum bit-length of application values (60 in the paper).  Encode
        rejects anything outside ``±(2**value_bits − 1)`` even when the
        modulus could represent it — this keeps headroom for the blinding
        multiplications of §IV-B.
    """

    modulus: int
    value_bits: int = PAPER_VALUE_BITS

    def __post_init__(self) -> None:
        if self.value_bits < 1:
            raise EncodingRangeError("value_bits must be positive")
        if (1 << self.value_bits) > self.modulus // 2:
            raise EncodingRangeError(
                f"{self.value_bits}-bit values do not fit the signed range of "
                f"a {self.modulus.bit_length()}-bit modulus"
            )

    @property
    def max_value(self) -> int:
        """Largest encodable magnitude."""
        return (1 << self.value_bits) - 1

    def encode(self, value: int) -> int:
        if abs(value) > self.max_value:
            raise EncodingRangeError(
                f"|{value}| exceeds the configured {self.value_bits}-bit range"
            )
        return encode_signed(value, self.modulus)

    def decode(self, residue: int) -> int:
        return decode_signed(residue, self.modulus)


@dataclass(frozen=True)
class FixedPointEncoder:
    """Deterministic fixed-point quantisation of physical quantities.

    The paper represents power values as integers "e.g. in the unit of
    mW".  To retain sub-mW precision we scale by ``10**decimals`` before
    rounding; all parties must of course share the same scale.
    """

    decimals: int = 6

    @property
    def scale(self) -> int:
        return 10**self.decimals

    def encode(self, value: float) -> int:
        """Quantise a real value to an integer at the configured scale."""
        scaled = value * self.scale
        return int(round(scaled))

    def decode(self, quantised: int) -> float:
        return quantised / self.scale

    def encode_db(self, value_db: float) -> int:
        """Quantise a dB value (same scale; named for call-site clarity)."""
        return self.encode(value_db)
