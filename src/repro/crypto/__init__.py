"""Cryptographic substrate for PISA.

This subpackage implements, from scratch, everything PISA needs:

* :mod:`repro.crypto.numtheory` — primality testing, prime generation,
  modular inverses, CRT recombination.
* :mod:`repro.crypto.rand` — secure and deterministic randomness sources.
* :mod:`repro.crypto.paillier` — the Paillier cryptosystem with the
  homomorphic operations of Figure 2 of the paper.
* :mod:`repro.crypto.encoding` — signed-integer and fixed-point encodings
  on the plaintext ring Z_n.
* :mod:`repro.crypto.signatures` — RSA full-domain-hash signatures used for
  transmission licenses.
* :mod:`repro.crypto.serialization` — canonical byte encodings with exact
  size accounting for the communication-overhead evaluation.
"""

from repro.crypto.encoding import SignedEncoder
from repro.crypto.paillier import (
    EncryptedNumber,
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.signatures import RsaFdhSigner, RsaFdhVerifier, generate_rsa_keypair

__all__ = [
    "EncryptedNumber",
    "PaillierKeypair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
    "SignedEncoder",
    "RsaFdhSigner",
    "RsaFdhVerifier",
    "generate_rsa_keypair",
]
