"""The Damgård–Jurik generalisation of Paillier (s ≥ 1).

Paillier works modulo ``n²`` with plaintexts in ``Z_n``; Damgård–Jurik
(PKC'01) generalises to ciphertexts modulo ``n^{s+1}`` with plaintexts
in ``Z_{n^s}``:

.. math::

    E(m, r) = (1+n)^m · r^{n^s}  \\bmod n^{s+1}

The same homomorphic operations carry over (multiply → add, power →
scalar multiply), ``s = 1`` *is* Paillier, and the ciphertext-to-
plaintext expansion drops from 2x to ``(s+1)/s`` — which is exactly what
the packed-request extension wants: an ``s = 2`` key more than doubles
the slots per ciphertext at far less than double the per-operation
cost.

Decryption uses the exponent ``d ≡ 0 (mod λ)``, ``d ≡ 1 (mod n^s)``
followed by Damgård–Jurik's recursive extraction of ``m`` from
``(1+n)^m mod n^{s+1}`` (Hensel-style lifting digit by digit in base
``n``).

The class surface mirrors :mod:`repro.crypto.paillier` deliberately, so
higher layers can swap the scheme in wherever a bigger plaintext space
pays for itself.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.numtheory import crt_pair, generate_distinct_primes, lcm, modinv
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import (
    ConfigurationError,
    DecryptionError,
    EncodingRangeError,
    KeyMismatchError,
)

__all__ = [
    "DjPublicKey",
    "DjPrivateKey",
    "DjKeypair",
    "DjCiphertext",
    "generate_dj_keypair",
]


class DjPublicKey:
    """Public key ``(n, s)``: plaintexts mod ``n^s``, ciphertexts mod ``n^{s+1}``."""

    __slots__ = ("n", "s", "n_s", "n_s1")

    def __init__(self, n: int, s: int = 1) -> None:
        if n < 15:
            raise ConfigurationError("modulus too small")
        if s < 1:
            raise ConfigurationError("s must be at least 1")
        self.n = n
        self.s = s
        self.n_s = n**s
        self.n_s1 = n ** (s + 1)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, DjPublicKey) and (self.n, self.s) == (other.n, other.s)

    def __hash__(self) -> int:
        return hash(("dj-pk", self.n, self.s))

    def __repr__(self) -> str:
        return f"DjPublicKey(bits={self.n.bit_length()}, s={self.s})"

    @property
    def key_bits(self) -> int:
        return self.n.bit_length()

    @property
    def plaintext_bits(self) -> int:
        """Bits of the plaintext space ``n^s``."""
        return self.n_s.bit_length()

    @property
    def max_signed(self) -> int:
        return self.n_s // 2

    @property
    def expansion_ratio(self) -> float:
        """Ciphertext/plaintext size ratio ``(s+1)/s`` — 2.0 for Paillier."""
        return (self.s + 1) / self.s

    # -- encryption -------------------------------------------------------------

    def random_r(self, rng: RandomSource | None = None) -> int:
        rng = default_rng(rng)
        while True:
            r = rng.randrange(1, self.n)
            if r % self.n != 0:
                return r

    def raw_encrypt(
        self, plaintext: int, r: int | None = None, rng: RandomSource | None = None
    ) -> int:
        m = plaintext % self.n_s
        if r is None:
            r = self.random_r(rng)
        # (1+n)^m mod n^{s+1}: binomial expansion truncates after s+1
        # terms, but plain pow is already efficient and exact.
        g_m = pow(1 + self.n, m, self.n_s1)
        return (g_m * pow(r, self.n_s, self.n_s1)) % self.n_s1

    def encrypt(
        self, value: int, r: int | None = None, rng: RandomSource | None = None
    ) -> "DjCiphertext":
        half = self.n_s // 2
        if value > half or value < -half:
            raise EncodingRangeError("value outside the signed plaintext range")
        return DjCiphertext(self, self.raw_encrypt(value % self.n_s, r=r, rng=rng))


class DjPrivateKey:
    """Private key: the CRT-defined decryption exponent plus extraction."""

    __slots__ = ("public_key", "p", "q", "_d")

    def __init__(self, public_key: DjPublicKey, p: int, q: int) -> None:
        if p * q != public_key.n:
            raise ConfigurationError("p*q does not match the modulus")
        if p == q:
            raise ConfigurationError("p and q must be distinct")
        self.public_key = public_key
        self.p = p
        self.q = q
        lam = lcm(p - 1, q - 1)
        # Keygen-time validity check, not a data-dependent branch: it runs
        # once per key and only rejects degenerate moduli.
        if math.gcd(lam, public_key.n) != 1:  # audit-ok: SEC002
            raise ConfigurationError("gcd(λ, n) must be 1 (regenerate the key)")
        # d ≡ 1 (mod n^s), d ≡ 0 (mod λ).
        self._d = crt_pair(1 % public_key.n_s, 0, public_key.n_s, lam)

    def _extract(self, a: int) -> int:
        """Recover ``m`` from ``a = (1+n)^m mod n^{s+1}`` (DJ Theorem 1).

        Lifts ``m mod n^j`` to ``m mod n^{j+1}`` for j = 1..s using the
        truncated binomial series of ``(1+n)^m``.
        """
        pk = self.public_key
        n = pk.n
        m = 0
        for j in range(1, pk.s + 1):
            n_j = n**j
            n_j1 = n ** (j + 1)
            t1 = ((a % n_j1) - 1) // n  # L(a mod n^{j+1})
            t2 = m
            for k in range(2, j + 1):
                m = m - 1
                t2 = (t2 * m) % n_j
                factorial_inv = modinv(math.factorial(k), n_j)
                t1 = (t1 - t2 * (n ** (k - 1)) * factorial_inv) % n_j
            m = t1 % n_j
        return m

    def raw_decrypt(self, ciphertext: int) -> int:
        pk = self.public_key
        if not 0 < ciphertext < pk.n_s1:
            raise DecryptionError("ciphertext out of range")
        return self._extract(pow(ciphertext, self._d, pk.n_s1))

    def decrypt(self, encrypted: "DjCiphertext") -> int:
        if encrypted.public_key != self.public_key:
            raise KeyMismatchError("ciphertext under a different key")
        residue = self.raw_decrypt(encrypted.ciphertext)
        half = self.public_key.n_s // 2
        return residue - self.public_key.n_s if residue > half else residue


@dataclass(frozen=True)
class DjKeypair:
    public_key: DjPublicKey
    private_key: DjPrivateKey


def generate_dj_keypair(
    key_bits: int = 2048, s: int = 2, rng: RandomSource | None = None
) -> DjKeypair:
    """Generate a Damgård–Jurik keypair with an exact-size modulus."""
    if key_bits < 16:
        raise ConfigurationError("key_bits must be at least 16")
    rng = default_rng(rng)
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        n = p * q
        if n.bit_length() != key_bits:
            continue
        if math.gcd(lcm(p - 1, q - 1), n) != 1:
            continue
        public = DjPublicKey(n, s=s)
        return DjKeypair(public, DjPrivateKey(public, p, q))


class DjCiphertext:
    """A Damgård–Jurik ciphertext with the familiar operator sugar."""

    __slots__ = ("public_key", "ciphertext")

    def __init__(self, public_key: DjPublicKey, ciphertext: int) -> None:
        self.public_key = public_key
        self.ciphertext = ciphertext % public_key.n_s1

    def _check(self, other: "DjCiphertext") -> None:
        if self.public_key != other.public_key:
            raise KeyMismatchError("cannot combine ciphertexts under different keys")

    def add(self, other: "DjCiphertext") -> "DjCiphertext":
        self._check(other)
        return DjCiphertext(
            self.public_key,
            (self.ciphertext * other.ciphertext) % self.public_key.n_s1,
        )

    def subtract(self, other: "DjCiphertext") -> "DjCiphertext":
        self._check(other)
        inv = modinv(other.ciphertext, self.public_key.n_s1)
        return DjCiphertext(self.public_key, (self.ciphertext * inv) % self.public_key.n_s1)

    def scalar_mul(self, scalar: int) -> "DjCiphertext":
        n_s1 = self.public_key.n_s1
        if scalar >= 0:
            return DjCiphertext(self.public_key, pow(self.ciphertext, scalar, n_s1))
        inv = modinv(self.ciphertext, n_s1)
        return DjCiphertext(self.public_key, pow(inv, -scalar, n_s1))

    def add_plain(self, value: int) -> "DjCiphertext":
        pk = self.public_key
        g_m = pow(1 + pk.n, value % pk.n_s, pk.n_s1)
        return DjCiphertext(pk, (self.ciphertext * g_m) % pk.n_s1)

    def rerandomize(self, rng: RandomSource | None = None) -> "DjCiphertext":
        pk = self.public_key
        r = pk.random_r(rng)
        return DjCiphertext(
            pk, (self.ciphertext * pow(r, pk.n_s, pk.n_s1)) % pk.n_s1
        )

    def __add__(self, other):
        if isinstance(other, DjCiphertext):
            return self.add(other)
        if isinstance(other, int):
            return self.add_plain(other)
        return NotImplemented

    __radd__ = __add__

    def __sub__(self, other):
        if isinstance(other, DjCiphertext):
            return self.subtract(other)
        if isinstance(other, int):
            return self.add_plain(-other)
        return NotImplemented

    def __mul__(self, scalar):
        if isinstance(scalar, int):
            return self.scalar_mul(scalar)
        return NotImplemented

    __rmul__ = __mul__

    def __neg__(self):
        return self.scalar_mul(-1)

    def __repr__(self) -> str:
        return (
            f"DjCiphertext(bits={self.public_key.key_bits}, s={self.public_key.s})"
        )
