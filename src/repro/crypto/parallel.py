"""The executor seam for parallelisable modular exponentiations.

Every hot loop in the protocol — eq. (14) blinding, STP sign
extraction, threshold partial decryptions, ``r**n`` obfuscator
precomputation — reduces to *batches of independent modular
exponentiations* whose exponents and bases are fixed before any result
is needed.  This module defines the minimal seam that lets a runtime
ship those batches to worker processes while the protocol objects stay
pure call graphs:

* a :class:`PowJob` is one ``pow(base, exponent, modulus)``;
* an :class:`Executor` evaluates a batch of jobs and returns the
  results *in order*;
* :class:`SerialExecutor` is the default — plain in-process evaluation,
  so library users who never touch :mod:`repro.service` see identical
  behaviour (and identical bytes) to a build without the seam.

The process-pool implementation lives in :mod:`repro.service.workers`;
protocol code only ever sees this protocol.  Because all randomness is
drawn *before* jobs are dispatched, results are byte-identical whichever
executor runs the batch — a property the test suite asserts.
"""

from __future__ import annotations

from typing import Protocol, Sequence

__all__ = ["PowJob", "Executor", "SerialExecutor", "default_executor"]

#: ``(base, exponent, modulus)`` — one modular exponentiation.
PowJob = tuple[int, int, int]


class Executor(Protocol):
    """Evaluates batches of independent modular exponentiations."""

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        """Return ``[pow(b, e, m) for (b, e, m) in jobs]`` in order."""
        ...


class SerialExecutor:
    """In-process evaluation — the library default.

    Keeps a running job counter so benchmarks can report how much work
    the seam would have parallelised.
    """

    def __init__(self) -> None:
        self.jobs_executed = 0

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        self.jobs_executed += len(jobs)
        return [pow(base, exponent, modulus) for base, exponent, modulus in jobs]


_SERIAL = SerialExecutor()


def default_executor(executor: Executor | None = None) -> Executor:
    """Return ``executor`` if given, else the process-wide serial one."""
    return _SERIAL if executor is None else executor
