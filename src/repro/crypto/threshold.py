"""Additively shared (t-of-t) threshold Paillier decryption.

The paper's future work (§VII) is to "pursue a model that does not
involve an STP": in PISA the STP is a single point of total compromise —
whoever holds ``sk_G`` can decrypt *every* PU update and SU request ever
sent.  The standard fix is to make decryption a joint operation, so no
single server can decrypt anything alone.

Construction (the classic exponent-sharing variant):

* choose ``d`` with ``d ≡ 0 (mod λ)`` and ``d ≡ 1 (mod n)`` (CRT; ``λ``
  and ``n`` are coprime for all but a negligible fraction of keys, which
  key generation rejects);
* then for any ciphertext ``c = (1+n)^m · r^n``:
  ``c^d = (1+n)^{m·d} · r^{n·d} = 1 + m·n  (mod n²)``,
  because ``n·d ≡ 0 (mod n·λ)`` kills the ``r`` part and
  ``d ≡ 1 (mod n)`` fixes the message part — so
  ``m = L(c^d mod n²)`` with no ``μ`` correction;
* split ``d`` additively: ``d = Σ dᵢ (mod n·λ)`` with each ``dᵢ``
  uniform.  Party *i* publishes the partial ``c^{dᵢ} mod n²``; anyone
  can multiply the partials and apply ``L``.

Each share alone is a uniformly random exponent — a single partial
decryption of a ciphertext is a uniformly random group element from the
holder's perspective and reveals nothing about the plaintext.

A trusted dealer generates and splits the key here; distributed key
generation (no dealer at all) is orthogonal machinery and out of scope,
as is robustness against malicious shareholders (we target the paper's
honest-but-curious model).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.crypto.numtheory import crt_pair, generate_distinct_primes, lcm
from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ConfigurationError, CryptoError, DecryptionError

__all__ = [
    "DecryptionShare",
    "PartialDecryption",
    "ThresholdKeypair",
    "generate_threshold_keypair",
    "combine_partials",
]


@dataclass(frozen=True)
class DecryptionShare:
    """One party's additive share ``dᵢ`` of the decryption exponent."""

    index: int
    exponent: int
    public_key: PaillierPublicKey

    def partial_decrypt(self, ciphertext: EncryptedNumber) -> "PartialDecryption":
        """Compute this party's partial ``c^{dᵢ} mod n²``."""
        if ciphertext.public_key != self.public_key:
            raise CryptoError("ciphertext not under the shared key")
        return PartialDecryption(
            index=self.index,
            value=pow(ciphertext.ciphertext, self.exponent, self.public_key.n_sq),
        )


@dataclass(frozen=True)
class PartialDecryption:
    """The group element ``c^{dᵢ}`` contributed by share ``index``."""

    index: int
    value: int


@dataclass(frozen=True)
class ThresholdKeypair:
    """A shared Paillier key: one public key, ``num_shares`` shares.

    All shares are required to decrypt (t-of-t).  The dealer-side full
    exponent is intentionally NOT retained.
    """

    public_key: PaillierPublicKey
    shares: tuple[DecryptionShare, ...]

    @property
    def num_shares(self) -> int:
        return len(self.shares)


def generate_threshold_keypair(
    key_bits: int = 2048, num_shares: int = 2, rng: RandomSource | None = None
) -> ThresholdKeypair:
    """Generate a Paillier key whose decryption exponent is shared.

    Retries key generation until ``gcd(λ, n) = 1`` (needed for the CRT
    defining ``d``); random balanced keys satisfy this with overwhelming
    probability.
    """
    if num_shares < 2:
        raise ConfigurationError("threshold sharing needs at least 2 shares")
    if key_bits < 16:
        raise ConfigurationError("key_bits must be at least 16")
    rng = default_rng(rng)
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        n = p * q
        if n.bit_length() != key_bits:
            continue
        lam = lcm(p - 1, q - 1)
        # Keygen-time validity check on a candidate modulus (re-rolled on
        # failure), not a secret-dependent protocol branch.
        if math.gcd(lam, n) != 1:  # audit-ok: SEC002
            continue
        public_key = PaillierPublicKey(n)
        # d ≡ 0 (mod λ), d ≡ 1 (mod n); reduce exponents mod n·λ, the
        # group exponent of Z*_{n²}.
        modulus = n * lam
        d = crt_pair(1 % n, 0, n, lam) % modulus
        # Additive split: num_shares − 1 uniform shares, last one fixes the sum.
        partial_sum = 0
        shares = []
        for index in range(num_shares - 1):
            share = rng.randbelow(modulus)
            partial_sum = (partial_sum + share) % modulus
            shares.append(DecryptionShare(index, share, public_key))
        shares.append(
            DecryptionShare(num_shares - 1, (d - partial_sum) % modulus, public_key)
        )
        return ThresholdKeypair(public_key=public_key, shares=tuple(shares))


def combine_partials(
    public_key: PaillierPublicKey, partials: list[PartialDecryption]
) -> int:
    """Combine all parties' partials into the signed plaintext.

    ``m = L(Π c^{dᵢ} mod n²)`` decoded with the library's signed
    convention.  Raises :class:`DecryptionError` when the product falls
    outside the ``1 + m·n`` subgroup (missing or mismatched partials).
    """
    from repro.crypto.encoding import decode_signed

    if not partials:
        raise DecryptionError("no partial decryptions to combine")
    indices = {p.index for p in partials}
    if len(indices) != len(partials):
        raise DecryptionError("duplicate partial decryption indices")
    product = 1
    for partial in partials:
        product = (product * partial.value) % public_key.n_sq
    if product % public_key.n != 1:
        raise DecryptionError("partials do not combine to a valid decryption")
    return decode_signed((product - 1) // public_key.n, public_key.n)
