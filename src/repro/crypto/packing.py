"""Plaintext slot packing ("batching") for Paillier.

A 2048-bit Paillier plaintext is enormously wider than PISA's 60-bit
values, so most of every ciphertext is wasted.  Packing lays out ``k``
values side by side in one plaintext:

.. math::

    \\text{pack}(v_0, …, v_{k-1}) = \\sum_i v_i · 2^{i·W}

with slot width ``W`` chosen so every slot survives the protocol's
linear operations without overflowing into its neighbour:

* homomorphic addition / plaintext addition — slots add independently;
* scalar multiplication by a shared constant — every slot scales;
* the α-blinding of eq. (14) grows slots by ``alpha_bits``.

``W`` therefore budgets the full pipeline: value bits + scaling bits +
carry headroom.  Intermediate per-slot values may go negative (e.g.
``E − X·F`` before the PU term lands); that is fine as long as the
*final* per-slot value is non-negative and below ``2**W`` — integer
arithmetic is exact, so transient borrows cancel.  Callers add a
per-slot bias (e.g. ``2**(W-1)``) when a final value can be negative.

The payoff is one encryption/decryption per *chunk* instead of per cell
— a ``k``x saving on exactly the operations that dominate Figure 6.
The privacy trade-off this creates at the STP is analysed in
:mod:`repro.pisa.packed`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.crypto.paillier import PaillierPublicKey
from repro.errors import ConfigurationError, EncodingRangeError

__all__ = ["SlotLayout"]


@dataclass(frozen=True)
class SlotLayout:
    """A fixed slot geometry over a Paillier plaintext space.

    Attributes
    ----------
    slot_bits:
        Width ``W`` of each slot; per-slot values must stay in
        ``[0, 2**W)`` at the end of the homomorphic pipeline.
    num_slots:
        Slots per plaintext (``k``).
    """

    slot_bits: int
    num_slots: int

    def __post_init__(self) -> None:
        if self.slot_bits < 2:
            raise ConfigurationError("slots must be at least 2 bits wide")
        if self.num_slots < 1:
            raise ConfigurationError("need at least one slot")

    @classmethod
    def for_key(
        cls,
        public_key: PaillierPublicKey,
        value_bits: int,
        scale_bits: int = 0,
        headroom_bits: int = 4,
    ) -> "SlotLayout":
        """The widest layout a key supports for a given value pipeline.

        ``value_bits`` bounds the application values, ``scale_bits`` the
        total bits of scalar multiplications applied (e.g. α's width),
        ``headroom_bits`` absorbs additive accumulation.  Raises when
        even a single slot does not fit.
        """
        slot_bits = value_bits + scale_bits + headroom_bits
        usable = public_key.n.bit_length() - 2  # keep clear of n/2 signedness
        num_slots = usable // slot_bits
        if num_slots < 1:
            raise ConfigurationError(
                f"a {public_key.n.bit_length()}-bit key cannot fit one "
                f"{slot_bits}-bit slot"
            )
        return cls(slot_bits=slot_bits, num_slots=num_slots)

    # -- geometry -----------------------------------------------------------

    @property
    def slot_modulus(self) -> int:
        """``2**W`` — the per-slot value bound."""
        return 1 << self.slot_bits

    @property
    def half_slot(self) -> int:
        """The natural per-slot bias for signed final values."""
        return 1 << (self.slot_bits - 1)

    @property
    def total_bits(self) -> int:
        return self.slot_bits * self.num_slots

    def shift(self, slot: int) -> int:
        """The multiplier ``2**(slot·W)`` placing a value into ``slot``."""
        if not 0 <= slot < self.num_slots:
            raise EncodingRangeError(f"slot {slot} outside [0, {self.num_slots})")
        return 1 << (slot * self.slot_bits)

    # -- packing -------------------------------------------------------------

    def pack(self, values: Sequence[int]) -> int:
        """Pack up to ``num_slots`` values in ``[0, 2**W)`` into one integer.

        Missing trailing slots are zero.  Values must already carry any
        bias the caller's pipeline requires.
        """
        if len(values) > self.num_slots:
            raise EncodingRangeError(
                f"{len(values)} values exceed the {self.num_slots}-slot layout"
            )
        packed = 0
        for slot, value in enumerate(values):
            if not 0 <= value < self.slot_modulus:
                raise EncodingRangeError(
                    f"slot value {value} outside [0, 2^{self.slot_bits})"
                )
            packed |= value << (slot * self.slot_bits)
        return packed

    def unpack(self, packed: int, count: int | None = None) -> list[int]:
        """Split a packed integer back into its slot values.

        ``packed`` must be non-negative with every slot in range —
        exactly the guarantee a correctly budgeted pipeline provides.
        """
        if packed < 0:
            raise EncodingRangeError("packed value must be non-negative")
        count = self.num_slots if count is None else count
        if count > self.num_slots:
            raise EncodingRangeError("count exceeds the layout's slots")
        mask = self.slot_modulus - 1
        values = [(packed >> (slot * self.slot_bits)) & mask for slot in range(count)]
        if packed >> (self.num_slots * self.slot_bits):
            raise EncodingRangeError("packed value overflows the layout")
        return values

    def chunk_count(self, total_values: int) -> int:
        """Chunks needed to carry ``total_values`` values."""
        return (total_values + self.num_slots - 1) // self.num_slots

    def chunks(self, values: Sequence[int]) -> list[list[int]]:
        """Split a flat value list into slot-sized chunks (last one short)."""
        return [
            list(values[start : start + self.num_slots])
            for start in range(0, len(values), self.num_slots)
        ]
