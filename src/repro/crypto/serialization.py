"""Canonical wire encodings with exact size accounting.

§VI-A of the paper reports *communication* overhead — the 29 MB request
ciphertext matrix, the ≈0.05 MB PU update, the 4.1 kb response — so the
reproduction needs a byte-exact serialisation layer, not just object
graphs.  Every protocol message in :mod:`repro.pisa.messages` serialises
through these helpers, and :mod:`repro.net.transport` accounts the sizes.

Format
------
A self-describing little format (not interoperable, but canonical and
versioned):

* integers: 4-byte big-endian length prefix + big-endian magnitude;
* ciphertexts: the integer encoding of the ciphertext value (a Paillier
  ciphertext under an ``k``-bit key occupies ``2k`` bits ≈ ``k/4`` bytes,
  matching Table II's "ciphertext size 4096 bits" for ``n`` of 2048 bits);
* matrices: dimensions plus row-major entries.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey
from repro.errors import SerializationError

__all__ = [
    "encode_int",
    "decode_int",
    "encoded_int_size",
    "encode_ciphertext",
    "decode_ciphertext",
    "ciphertext_wire_size",
    "encode_ciphertext_matrix",
    "decode_ciphertext_matrix",
    "encode_bytes",
    "decode_bytes",
]

_LEN = struct.Struct(">I")


def encode_int(value: int) -> bytes:
    """Length-prefixed big-endian encoding of a non-negative integer."""
    if value < 0:
        raise SerializationError("only non-negative integers are wire-encodable")
    body = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return _LEN.pack(len(body)) + body


def decode_int(buffer: bytes, offset: int = 0) -> tuple[int, int]:
    """Decode an integer; returns ``(value, next_offset)``."""
    if offset + 4 > len(buffer):
        raise SerializationError("truncated integer length prefix")
    (length,) = _LEN.unpack_from(buffer, offset)
    offset += 4
    if offset + length > len(buffer):
        raise SerializationError("truncated integer body")
    return int.from_bytes(buffer[offset : offset + length], "big"), offset + length


def encoded_int_size(value: int) -> int:
    """Wire size in bytes of :func:`encode_int` without building the bytes."""
    return 4 + ((value.bit_length() + 7) // 8 or 1)


def encode_bytes(data: bytes) -> bytes:
    """Length-prefixed byte string."""
    return _LEN.pack(len(data)) + data


def decode_bytes(buffer: bytes, offset: int = 0) -> tuple[bytes, int]:
    if offset + 4 > len(buffer):
        raise SerializationError("truncated bytes length prefix")
    (length,) = _LEN.unpack_from(buffer, offset)
    offset += 4
    if offset + length > len(buffer):
        raise SerializationError("truncated bytes body")
    return bytes(buffer[offset : offset + length]), offset + length


def encode_ciphertext(ct: EncryptedNumber) -> bytes:
    """Encode a ciphertext as its raw integer (key carried out of band)."""
    return encode_int(ct.ciphertext)


def decode_ciphertext(
    buffer: bytes, public_key: PaillierPublicKey, offset: int = 0
) -> tuple[EncryptedNumber, int]:
    value, offset = decode_int(buffer, offset)
    if value >= public_key.n_sq:
        raise SerializationError("ciphertext exceeds n² for the given key")
    return EncryptedNumber(public_key, value), offset


def ciphertext_wire_size(public_key: PaillierPublicKey) -> int:
    """Fixed upper-bound wire size of one ciphertext under ``public_key``.

    Table II: a ciphertext is ``2·key_bits`` bits; plus our 4-byte prefix.
    """
    return 4 + (2 * public_key.key_bits + 7) // 8


def encode_ciphertext_matrix(
    rows: Sequence[Sequence[EncryptedNumber]],
) -> bytes:
    """Row-major encoding of a 2-D ciphertext matrix with dimensions."""
    if not rows:
        return _LEN.pack(0) + _LEN.pack(0)
    n_rows = len(rows)
    n_cols = len(rows[0])
    parts = [_LEN.pack(n_rows), _LEN.pack(n_cols)]
    for row in rows:
        if len(row) != n_cols:
            raise SerializationError("ragged ciphertext matrix")
        parts.extend(encode_ciphertext(ct) for ct in row)
    return b"".join(parts)


def decode_ciphertext_matrix(
    buffer: bytes, public_key: PaillierPublicKey, offset: int = 0
) -> tuple[list[list[EncryptedNumber]], int]:
    if offset + 8 > len(buffer):
        raise SerializationError("truncated matrix header")
    (n_rows,) = _LEN.unpack_from(buffer, offset)
    (n_cols,) = _LEN.unpack_from(buffer, offset + 4)
    offset += 8
    matrix: list[list[EncryptedNumber]] = []
    for _ in range(n_rows):
        row: list[EncryptedNumber] = []
        for _ in range(n_cols):
            ct, offset = decode_ciphertext(buffer, public_key, offset)
            row.append(ct)
        matrix.append(row)
    return matrix, offset


def matrix_wire_size(entries: Iterable[EncryptedNumber]) -> int:
    """Exact wire size of a matrix given its entries (plus 8-byte header)."""
    return 8 + sum(encoded_int_size(ct.ciphertext) for ct in entries)


__all__.append("matrix_wire_size")


# -- key serialisation -----------------------------------------------------------


def encode_public_key(public_key: PaillierPublicKey) -> bytes:
    """Canonical encoding of a Paillier public key ``(n, g)``."""
    return b"PISA-PK-v1" + encode_int(public_key.n) + encode_int(public_key.g)


def decode_public_key(buffer: bytes) -> PaillierPublicKey:
    """Inverse of :func:`encode_public_key`."""
    magic = b"PISA-PK-v1"
    if not buffer.startswith(magic):
        raise SerializationError("not a v1 Paillier public key")
    n, offset = decode_int(buffer, len(magic))
    g, offset = decode_int(buffer, offset)
    if offset != len(buffer):
        raise SerializationError("trailing bytes in public key")
    return PaillierPublicKey(n, g)


def encode_private_key(private_key) -> bytes:
    """Canonical encoding of a Paillier private key (its prime factors).

    The public half is recomputable from ``p·q``; handle with care —
    this is raw secret material for test/CLI persistence only.
    """
    return b"PISA-SK-v1" + encode_int(private_key.p) + encode_int(private_key.q)


def decode_private_key(buffer: bytes):
    """Inverse of :func:`encode_private_key`."""
    from repro.crypto.paillier import PaillierPrivateKey

    magic = b"PISA-SK-v1"
    if not buffer.startswith(magic):
        raise SerializationError("not a v1 Paillier private key")
    p, offset = decode_int(buffer, len(magic))
    q, offset = decode_int(buffer, offset)
    if offset != len(buffer):
        raise SerializationError("trailing bytes in private key")
    return PaillierPrivateKey(PaillierPublicKey(p * q), p, q)


__all__.extend([
    "encode_public_key",
    "decode_public_key",
    "encode_private_key",
    "decode_private_key",
])


# -- Damgård–Jurik ---------------------------------------------------------------
#
# DJ generalizes Paillier to plaintext space Z_{n^s} with ciphertexts in
# Z*_{n^{s+1}}; the wire formats mirror the Paillier ones but carry ``s``
# so a decoder can rebuild the exact parameterization.  Imports are lazy:
# the serialization module must stay importable without pulling the DJ
# machinery into every message-layer consumer.


def encode_dj_public_key(public_key) -> bytes:
    """Canonical encoding of a Damgård–Jurik public key ``(n, s)``."""
    return b"PISA-DJPK-v1" + encode_int(public_key.n) + encode_int(public_key.s)


def decode_dj_public_key(buffer: bytes):
    """Inverse of :func:`encode_dj_public_key`."""
    from repro.crypto.damgard_jurik import DjPublicKey

    magic = b"PISA-DJPK-v1"
    if not buffer.startswith(magic):
        raise SerializationError("not a v1 Damgård–Jurik public key")
    n, offset = decode_int(buffer, len(magic))
    s, offset = decode_int(buffer, offset)
    if offset != len(buffer):
        raise SerializationError("trailing bytes in Damgård–Jurik public key")
    if s < 1:
        raise SerializationError("Damgård–Jurik parameter s must be >= 1")
    return DjPublicKey(n, s)


def encode_dj_private_key(private_key) -> bytes:
    """Canonical encoding of a DJ private key (primes plus ``s``).

    Raw secret material — test/CLI persistence only, like the Paillier
    private-key encoding above.
    """
    return (
        b"PISA-DJSK-v1"
        + encode_int(private_key.p)
        + encode_int(private_key.q)
        + encode_int(private_key.public_key.s)
    )


def decode_dj_private_key(buffer: bytes):
    """Inverse of :func:`encode_dj_private_key`."""
    from repro.crypto.damgard_jurik import DjPrivateKey, DjPublicKey

    magic = b"PISA-DJSK-v1"
    if not buffer.startswith(magic):
        raise SerializationError("not a v1 Damgård–Jurik private key")
    p, offset = decode_int(buffer, len(magic))
    q, offset = decode_int(buffer, offset)
    s, offset = decode_int(buffer, offset)
    if offset != len(buffer):
        raise SerializationError("trailing bytes in Damgård–Jurik private key")
    if s < 1:
        raise SerializationError("Damgård–Jurik parameter s must be >= 1")
    return DjPrivateKey(DjPublicKey(p * q, s), p, q)


def encode_dj_ciphertext(ct) -> bytes:
    """Encode a DJ ciphertext as its raw integer (key carried out of band)."""
    return encode_int(ct.ciphertext)


def decode_dj_ciphertext(buffer: bytes, public_key, offset: int = 0):
    """Decode a DJ ciphertext; returns ``(ciphertext, next_offset)``."""
    from repro.crypto.damgard_jurik import DjCiphertext

    value, offset = decode_int(buffer, offset)
    if value >= public_key.n_s1:
        raise SerializationError("ciphertext exceeds n^{s+1} for the given key")
    return DjCiphertext(public_key, value), offset


__all__.extend([
    "encode_dj_public_key",
    "decode_dj_public_key",
    "encode_dj_private_key",
    "decode_dj_private_key",
    "encode_dj_ciphertext",
    "decode_dj_ciphertext",
])
