"""Randomness sources.

Two sources are provided behind one tiny interface:

* :class:`SystemRandomSource` — wraps :mod:`secrets`; used by default for
  every key, nonce, and blinding factor.
* :class:`DeterministicRandomSource` — a seedable ChaCha-free DRBG built on
  SHA-256 in counter mode.  It exists so tests, benchmarks, and examples
  are reproducible; it must never be used for real deployments.

All generation helpers in this library accept an optional ``rng`` argument
of type :class:`RandomSource` and default to the system source.
"""

from __future__ import annotations

import secrets
from abc import ABC, abstractmethod

from repro.crypto.hashing import sha256

__all__ = [
    "RandomSource",
    "SystemRandomSource",
    "DeterministicRandomSource",
    "default_rng",
]


class RandomSource(ABC):
    """Interface for integer randomness used by the crypto layer."""

    @abstractmethod
    def randbits(self, bits: int) -> int:
        """Return a uniform integer in ``[0, 2**bits)``."""

    def randbelow(self, bound: int) -> int:
        """Return a uniform integer in ``[0, bound)`` via rejection sampling."""
        if bound <= 0:
            raise ValueError("bound must be positive")
        bits = bound.bit_length()
        while True:
            candidate = self.randbits(bits)
            if candidate < bound:
                return candidate

    def randrange(self, low: int, high: int) -> int:
        """Return a uniform integer in ``[low, high)``."""
        if high <= low:
            raise ValueError("empty range")
        return low + self.randbelow(high - low)

    def rand_odd(self, bits: int) -> int:
        """Return a uniform odd integer with exactly ``bits`` bits."""
        if bits < 2:
            raise ValueError("need at least 2 bits")
        value = self.randbits(bits - 2)
        return (1 << (bits - 1)) | (value << 1) | 1

    def choice(self, seq):
        """Return a uniformly chosen element of a non-empty sequence."""
        if not seq:
            raise ValueError("empty sequence")
        return seq[self.randbelow(len(seq))]


class SystemRandomSource(RandomSource):
    """Cryptographically secure randomness from the operating system."""

    def randbits(self, bits: int) -> int:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0
        return secrets.randbits(bits)


class DeterministicRandomSource(RandomSource):
    """SHA-256 counter-mode DRBG.  Reproducible; NOT secure for production.

    The state is ``(seed, counter)``; each block is
    ``SHA256(seed || counter)`` and blocks are concatenated until enough
    bits are available.
    """

    def __init__(self, seed: int | bytes | str = 0) -> None:
        if isinstance(seed, int):
            seed = seed.to_bytes((seed.bit_length() + 7) // 8 or 1, "big", signed=False)
        elif isinstance(seed, str):
            seed = seed.encode("utf-8")
        self._seed = bytes(seed)
        self._counter = 0
        self._buffer = 0
        self._buffer_bits = 0

    def _refill(self) -> None:
        block = sha256(self._seed, self._counter.to_bytes(8, "big"))
        self._counter += 1
        self._buffer = (self._buffer << 256) | int.from_bytes(block, "big")
        self._buffer_bits += 256

    def randbits(self, bits: int) -> int:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0
        while self._buffer_bits < bits:
            self._refill()
        self._buffer_bits -= bits
        value = self._buffer >> self._buffer_bits
        self._buffer &= (1 << self._buffer_bits) - 1
        return value

    def fork(self, label: str) -> "DeterministicRandomSource":
        """Return an independent child stream derived from this seed."""
        return DeterministicRandomSource(self._seed + b"/" + label.encode("utf-8"))


_SYSTEM = SystemRandomSource()


def default_rng(rng: RandomSource | None = None) -> RandomSource:
    """Return ``rng`` if given, else the process-wide system source."""
    return _SYSTEM if rng is None else rng
