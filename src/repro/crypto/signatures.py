"""RSA full-domain-hash signatures for transmission licenses.

§IV-B step (2) of the paper: the SDC signs each transmission license with
"a typical digital signature algorithm (e.g., RSA, DSA, etc.)", encrypts
the signature under the SU's Paillier key, and perturbs it homomorphically
so it only decrypts to a *valid* signature when every interference budget
is respected.

Because the signature integer must live inside the SU's Paillier
plaintext space ``Z_{n_j}``, PISA deployments pick the RSA modulus
strictly smaller than every SU Paillier modulus;
:func:`generate_rsa_keypair` takes the bit size explicitly and
:class:`RsaFdhSigner` validates the produced signature fits a given bound.

The hash is a SHA-256-based MGF1 expansion (full-domain hash), giving an
existentially unforgeable scheme in the random-oracle model.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.crypto.numtheory import generate_distinct_primes, modinv
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ConfigurationError, SignatureError

__all__ = [
    "RsaPublicKey",
    "RsaPrivateKey",
    "RsaFdhSigner",
    "RsaFdhVerifier",
    "generate_rsa_keypair",
    "full_domain_hash",
]

_RSA_E = 65537


def full_domain_hash(message: bytes, modulus: int) -> int:
    """MGF1-style full-domain hash of ``message`` into ``Z_modulus``.

    SHA-256 blocks ``H(counter || message)`` are concatenated until the
    output covers the modulus length, then reduced mod ``modulus``.
    Reduction bias is negligible because we expand 64 extra bits.
    """
    target_bits = modulus.bit_length() + 64
    blocks = []
    counter = 0
    bits = 0
    while bits < target_bits:
        blocks.append(sha256(counter.to_bytes(4, "big"), message))
        counter += 1
        bits += 256
    return int.from_bytes(b"".join(blocks), "big") % modulus


@dataclass(frozen=True)
class RsaPublicKey:
    """RSA verification key ``(n, e)``."""

    n: int
    e: int = _RSA_E

    @property
    def key_bits(self) -> int:
        return self.n.bit_length()


@dataclass(frozen=True)
class RsaPrivateKey:
    """RSA signing key; ``d`` is the inverse of ``e`` mod ``λ(n)``."""

    public_key: RsaPublicKey
    d: int


def generate_rsa_keypair(
    key_bits: int = 2048, rng: RandomSource | None = None
) -> tuple[RsaPublicKey, RsaPrivateKey]:
    """Generate an RSA keypair with a modulus of exactly ``key_bits`` bits."""
    if key_bits < 32:
        raise ConfigurationError("RSA key_bits must be at least 32")
    rng = default_rng(rng)
    half = key_bits // 2
    while True:
        p, q = generate_distinct_primes(half, count=2, rng=rng)
        n = p * q
        if n.bit_length() != key_bits:
            continue
        phi = (p - 1) * (q - 1)
        if phi % _RSA_E == 0:
            continue
        d = modinv(_RSA_E, phi)
        public = RsaPublicKey(n=n)
        return public, RsaPrivateKey(public_key=public, d=d)


class RsaFdhSigner:
    """Produces integer signatures ``σ = H(m)^d mod n``."""

    def __init__(self, private_key: RsaPrivateKey) -> None:
        self._key = private_key

    @property
    def public_key(self) -> RsaPublicKey:
        return self._key.public_key

    def sign(self, message: bytes, max_value: int | None = None) -> int:
        """Sign ``message``; optionally enforce ``σ < max_value``.

        ``max_value`` is the SU's Paillier modulus in PISA — the signature
        must be a valid Paillier plaintext.  A correctly configured system
        (RSA modulus < Paillier modulus) always satisfies the bound.
        """
        n = self._key.public_key.n
        sigma = pow(full_domain_hash(message, n), self._key.d, n)
        if max_value is not None and sigma >= max_value:
            raise SignatureError(
                "signature does not fit the target plaintext space; use a "
                "smaller RSA modulus than the Paillier modulus"
            )
        return sigma


class RsaFdhVerifier:
    """Verifies integer signatures against a public key."""

    def __init__(self, public_key: RsaPublicKey) -> None:
        self._key = public_key

    def verify(self, message: bytes, signature: int) -> bool:
        """Return True iff ``signature`` is valid for ``message``."""
        n = self._key.n
        if not 0 <= signature < n:
            return False
        return pow(signature, self._key.e, n) == full_domain_hash(message, n)
