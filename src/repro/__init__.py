"""PISA — Privacy-preserving fine-grained spectrum access (ICDCS 2017).

A full reproduction of Guan et al., "When Smart TV Meets CRN:
Privacy-Preserving Fine-Grained Spectrum Access".  The package contains:

* :mod:`repro.crypto` — Paillier cryptosystem, signatures, encodings;
* :mod:`repro.radio` — propagation models, terrain, antennas, channels;
* :mod:`repro.geo` — block-grid geography of the SDC service area;
* :mod:`repro.watch` — the plaintext WATCH spectrum-sharing baseline;
* :mod:`repro.pisa` — the PISA privacy-preserving protocol (the paper's
  contribution);
* :mod:`repro.net` — in-memory transport with byte accounting;
* :mod:`repro.sdr` — simulated USRP testbed for §VI-B;
* :mod:`repro.baselines` — secure-comparison and FHE cost baselines;
* :mod:`repro.analysis` — overhead accounting, scaling, reporting.

Quickstart
----------
>>> from repro import quickstart_demo
>>> report = quickstart_demo(seed=7)
>>> report.granted in (True, False)
True
"""

from __future__ import annotations

__version__ = "1.0.0"

from repro.crypto import (
    EncryptedNumber,
    PaillierKeypair,
    PaillierPrivateKey,
    PaillierPublicKey,
    generate_keypair,
)

__all__ = [
    "__version__",
    "EncryptedNumber",
    "PaillierKeypair",
    "PaillierPrivateKey",
    "PaillierPublicKey",
    "generate_keypair",
]


def quickstart_demo(seed: int = 0):
    """Run one tiny PISA round end-to-end and return the decision report.

    Lazy import so that ``import repro`` stays cheap.
    """
    from repro.pisa.protocol import small_demo

    return small_demo(seed=seed)
