"""PU-side client (Figure 4).

When the TV receiver switches physical channel (or turns off), the
client builds the §IV-B update vector

``W_i(c, i) = T_i(c, i) − E_S(c, i)`` at its received channel, 0 on all
other channels — then encrypts each of the ``C`` entries under ``pk_G``
and sends them to the SDC.  Submitting ``W`` rather than ``T`` is what
lets the SDC assemble the budget matrix N with plain homomorphic
additions (eqs. (9)/(10)) instead of a secure equality test.

The client also implements the §VI-A *virtual channel* optimisation: a
switch between virtual channels on the same physical channel requires no
update at all.
"""

from __future__ import annotations

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ProtocolError
from repro.pisa.messages import PUUpdateMessage
from repro.watch.entities import PUReceiver
from repro.watch.environment import SpectrumEnvironment
from repro.watch.matrices import pu_update_matrix

__all__ = ["PUClient"]


class PUClient:
    """The primary user's protocol agent.

    Parameters
    ----------
    pu:
        The receiver's current state (block, channel, signal strength).
    environment:
        Shared public substrate (provides ``E`` and the channel plan).
    group_public_key:
        ``pk_G`` retrieved from the STP's key directory.
    """

    def __init__(
        self,
        pu: PUReceiver,
        environment: SpectrumEnvironment,
        group_public_key: PaillierPublicKey,
        rng: RandomSource | None = None,
    ) -> None:
        self.pu = pu
        self.environment = environment
        self.group_public_key = group_public_key
        self._rng = default_rng(rng)
        self._updates_sent = 0

    # -- update construction -------------------------------------------------

    def build_update(self) -> PUUpdateMessage:
        """Encrypt the ``C`` entries ``W̃(1, i) … W̃(C, i)`` (Figure 4)."""
        env = self.environment
        w_matrix = pu_update_matrix(self.pu, env.e_matrix, env.params)
        block = self.pu.block_index
        ciphertexts = tuple(
            self.group_public_key.encrypt(int(w_matrix[c, block]), rng=self._rng)
            for c in range(env.num_channels)
        )
        self._updates_sent += 1
        return PUUpdateMessage(
            pu_id=self.pu.receiver_id, block_index=block, ciphertexts=ciphertexts
        )

    # -- channel switching ------------------------------------------------------

    def switch_channel(
        self, channel_slot: int | None, signal_strength_mw: float = 0.0
    ) -> PUUpdateMessage | None:
        """Retune the receiver; return an update message only when needed.

        §VI-A: "when a PU is switching between virtual channels but
        staying in the same physical channel, it does not need to notify
        the SDC."  Returns ``None`` in that case.
        """
        if channel_slot is not None and not (
            0 <= channel_slot < self.environment.num_channels
        ):
            raise ProtocolError("channel slot outside the plan")
        plan = self.environment.plan
        old_slot = self.pu.channel_slot
        needs_update = True
        if channel_slot is not None and old_slot is not None:
            needs_update = not plan.same_physical(old_slot, channel_slot)
        if channel_slot is None and old_slot is None:
            needs_update = False
        self.pu = self.pu.switched_to(channel_slot, signal_strength_mw)
        return self.build_update() if needs_update else None

    @property
    def updates_sent(self) -> int:
        """Number of encrypted updates this client has produced."""
        return self._updates_sent
