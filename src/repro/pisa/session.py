"""SU-side license lifecycle management.

Licenses carry a validity window (§IV-B's signed license includes the
operation parameters; ours adds ``issued_at``/``valid_seconds`` so a
stale grant cannot be replayed forever).  A transmitting SU therefore
needs a small state machine: hold a valid license, renew it before
expiry using the cheap re-randomised request path, stop transmitting
the moment renewal is denied (the spectrum situation changed — e.g. a
PU tuned in nearby).

:class:`SuSession` implements that machine over any coordinator with
the PISA round API, with an injectable clock for testability.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.errors import ProtocolError
from repro.pisa.license import TransmissionLicense

__all__ = ["SessionState", "SessionStatus", "SuSession"]


class SessionState(Enum):
    """Where the SU stands with respect to transmission rights."""

    IDLE = "idle"              # never requested, or gave up
    LICENSED = "licensed"      # holds a currently valid license
    EXPIRED = "expired"        # held one; validity window passed
    DENIED = "denied"          # last request was refused


@dataclass(frozen=True)
class SessionStatus:
    """Snapshot returned by :meth:`SuSession.ensure_license`."""

    state: SessionState
    may_transmit: bool
    license: TransmissionLicense | None
    renewals: int
    denials: int


class SuSession:
    """Keeps one SU's transmission rights current.

    Parameters
    ----------
    coordinator:
        Any PISA coordinator (baseline / two-server / packed) whose
        ``run_request_round`` returns a report with ``granted`` and
        ``outcome.license``.
    su_id:
        The enrolled SU this session manages.
    renew_margin_s:
        Renew when less than this many seconds of validity remain —
        covering the round-trip so rights never lapse mid-transmission.
    clock:
        Injectable time source (seconds).
    """

    def __init__(
        self,
        coordinator,
        su_id: str,
        renew_margin_s: int = 300,
        clock=None,
    ) -> None:
        import time

        if renew_margin_s < 0:
            raise ProtocolError("renewal margin cannot be negative")
        self.coordinator = coordinator
        self.su_id = su_id
        self.renew_margin_s = renew_margin_s
        self._clock = clock or time.time
        self._license: TransmissionLicense | None = None
        self._granted = False
        self.renewals = 0
        self.denials = 0
        self._requested_once = False

    # -- state inspection -----------------------------------------------------

    def _license_valid(self, now: float) -> bool:
        return (
            self._granted
            and self._license is not None
            and self._license.is_valid_at(int(now))
        )

    def _needs_renewal(self, now: float) -> bool:
        if not self._license_valid(now):
            return True
        remaining = (
            self._license.issued_at + self._license.valid_seconds - now
        )
        return remaining < self.renew_margin_s

    @property
    def state(self) -> SessionState:
        now = self._clock()
        if self._license_valid(now):
            return SessionState.LICENSED
        if self._granted and self._license is not None:
            return SessionState.EXPIRED
        if self._requested_once:
            return SessionState.DENIED
        return SessionState.IDLE

    @property
    def may_transmit(self) -> bool:
        """True only while a valid, unexpired license is held."""
        return self._license_valid(self._clock())

    # -- the lifecycle driver ----------------------------------------------------

    def ensure_license(self) -> SessionStatus:
        """Request or renew as needed; returns the resulting status.

        The first call runs a full request round; renewals reuse the
        cached encrypted request (the §VI-A fast path).  A denial drops
        transmission rights immediately.
        """
        now = self._clock()
        if self._needs_renewal(now):
            reuse = self._requested_once
            report = self.coordinator.run_request_round(
                self.su_id, reuse_cached_request=reuse
            ) if reuse else self.coordinator.run_request_round(self.su_id)
            self._requested_once = True
            if report.granted:
                self._license = report.outcome.license
                self._granted = True
                self.renewals += 1
            else:
                self._license = None
                self._granted = False
                self.denials += 1
        return SessionStatus(
            state=self.state,
            may_transmit=self.may_transmit,
            license=self._license,
            renewals=self.renewals,
            denials=self.denials,
        )
