"""Transmission permission licenses (§IV-B, step (2)).

"The license includes the identity of SU j, the identity of the license
issuer (e.g., the SDC server), and S̃_j, the ciphertext of SU j's
operation parameters that are submitted in its transmission request."

We commit to the encrypted operation parameters by their SHA-256 digest
(the full multi-megabyte ciphertext matrix need not be embedded — the
digest binds the license to the exact submitted request).  The license
is signed with RSA-FDH; the *signature* travels encrypted under the SU's
personal Paillier key, perturbed by the homomorphic grant/deny gadget of
eq. (17), so the SDC itself never learns whether a valid license was
delivered.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.hashing import sha256
from repro.crypto.serialization import decode_bytes, decode_int, encode_bytes, encode_int
from repro.crypto.signatures import RsaFdhSigner, RsaFdhVerifier
from repro.errors import SerializationError

__all__ = ["TransmissionLicense"]


@dataclass(frozen=True)
class TransmissionLicense:
    """An SU's transmission permission license (unsigned body).

    Attributes
    ----------
    su_id / issuer_id:
        Identities of the licensee and the issuing SDC.
    request_digest:
        SHA-256 over the SU's encrypted request matrix — the "ciphertext
        of SU j's operation parameters" commitment.
    channels:
        The channel slots the license covers.
    issued_at / valid_seconds:
        Validity window (issue timestamp and lifetime).
    """

    su_id: str
    issuer_id: str
    request_digest: bytes
    channels: tuple[int, ...]
    issued_at: int
    valid_seconds: int = 3600

    def to_bytes(self) -> bytes:
        """Canonical byte encoding — the exact message that gets signed."""
        parts = [
            b"PISA-LICENSE-v1",
            encode_bytes(self.su_id.encode("utf-8")),
            encode_bytes(self.issuer_id.encode("utf-8")),
            encode_bytes(self.request_digest),
            encode_int(len(self.channels)),
        ]
        parts.extend(encode_int(c) for c in self.channels)
        parts.append(encode_int(self.issued_at))
        parts.append(encode_int(self.valid_seconds))
        return b"".join(parts)

    def sign(self, signer: RsaFdhSigner, max_value: int | None = None) -> int:
        """Produce the license signature ``SG_j`` as an integer."""
        return signer.sign(self.to_bytes(), max_value=max_value)

    def verify(self, verifier: RsaFdhVerifier, signature: int) -> bool:
        """Check a candidate signature against this license body."""
        return verifier.verify(self.to_bytes(), signature)

    @classmethod
    def from_bytes(cls, buffer: bytes) -> "TransmissionLicense":
        """Parse a canonical license body (inverse of :meth:`to_bytes`)."""
        magic = b"PISA-LICENSE-v1"
        if not buffer.startswith(magic):
            raise SerializationError("not a v1 PISA license")
        offset = len(magic)
        su_raw, offset = decode_bytes(buffer, offset)
        issuer_raw, offset = decode_bytes(buffer, offset)
        digest, offset = decode_bytes(buffer, offset)
        count, offset = decode_int(buffer, offset)
        channels = []
        for _ in range(count):
            channel, offset = decode_int(buffer, offset)
            channels.append(channel)
        issued_at, offset = decode_int(buffer, offset)
        valid_seconds, offset = decode_int(buffer, offset)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in license body")
        return cls(
            su_id=su_raw.decode("utf-8"),
            issuer_id=issuer_raw.decode("utf-8"),
            request_digest=digest,
            channels=tuple(channels),
            issued_at=issued_at,
            valid_seconds=valid_seconds,
        )

    def is_valid_at(self, timestamp: int) -> bool:
        """True while ``timestamp`` falls inside the validity window."""
        return self.issued_at <= timestamp < self.issued_at + self.valid_seconds

    @staticmethod
    def digest_of(request_bytes: bytes) -> bytes:
        """The request-commitment digest used in license bodies."""
        return sha256(request_bytes)
