"""PISA without an STP — the paper's §VII future-work variant.

The original design trusts the STP with the *entire* group secret key:
an STP compromise silently decrypts every PU update and SU request.
This variant removes that single point of failure by splitting the
decryption exponent between two non-colluding servers
(:class:`FrontServer`, the SDC proper, and :class:`BackendServer`, a
lightweight co-server) using
:mod:`repro.crypto.threshold`:

* **setup** — a dealer generates the shared key; the front server gets
  share ``d₁``, the backend ``d₂``.  Neither can decrypt anything alone.
* **PU updates / SU requests** — byte-identical to baseline PISA (same
  clients, same messages, same ``pk_G`` encryption).
* **sign extraction** — the front server blinds the indicators exactly
  as eq. (14), *additionally* attaches its partial decryptions
  ``Ṽ^{d₁}``, and sends both to the backend.  The backend computes its
  own partials, combines, sees only the blinded values ``V`` (protected
  by α/β/ε exactly as the STP was), extracts signs (eq. (15)), and
  returns them encrypted under the SU's key.  The front unblinds and
  issues the license as before (eqs. (16)/(17)).

Compared to the STP design: the same two communication legs and the
same per-cell work at the conversion server (one exponentiation + one
encryption), plus one partial-decryption exponentiation per cell at the
front — the price of eliminating the key-escrow party.  The ablation
benchmark ``bench_two_server.py`` quantifies it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey
from repro.crypto.parallel import Executor, default_executor
from repro.crypto.rand import RandomSource, default_rng
from repro.crypto.serialization import encode_ciphertext_matrix, encode_int
from repro.crypto.threshold import (
    DecryptionShare,
    PartialDecryption,
    ThresholdKeypair,
    combine_partials,
    generate_threshold_keypair,
)
from repro.errors import ProtocolError, SerializationError
from repro.pisa.keys import KeyDirectory
from repro.pisa.messages import SignExtractionResponse
from repro.pisa.sdc_server import SdcServer

__all__ = [
    "PartialSignExtractionRequest",
    "FrontServer",
    "BackendServer",
    "deal_two_server_keys",
]


@dataclass(frozen=True)
class PartialSignExtractionRequest:
    """Front → backend: blinded indicators plus the front's partials.

    ``partials[c][k]`` is ``matrix[c][k].ciphertext ** d₁ mod n²``.
    """

    round_id: str
    su_id: str
    matrix: tuple[tuple[EncryptedNumber, ...], ...]
    partials: tuple[tuple[int, ...], ...]

    def __post_init__(self) -> None:
        if len(self.partials) != len(self.matrix) or any(
            len(p_row) != len(m_row)
            for p_row, m_row in zip(self.partials, self.matrix)
        ):
            raise SerializationError("partials shape must match the matrix")

    def to_bytes(self) -> bytes:
        from repro.crypto.serialization import encode_bytes

        parts = [
            encode_bytes(self.round_id.encode("utf-8")),
            encode_bytes(self.su_id.encode("utf-8")),
            encode_ciphertext_matrix(self.matrix),
        ]
        for row in self.partials:
            parts.extend(encode_int(value) for value in row)
        return b"".join(parts)

    def wire_size(self) -> int:
        return len(self.to_bytes())


def deal_two_server_keys(
    key_bits: int = 2048, rng: RandomSource | None = None
) -> tuple[ThresholdKeypair, KeyDirectory]:
    """Dealer setup: shared group key + a public key directory."""
    keypair = generate_threshold_keypair(key_bits, num_shares=2, rng=rng)
    return keypair, KeyDirectory(keypair.public_key)


class FrontServer(SdcServer):
    """The SDC of the two-server variant: all of baseline PISA's logic
    plus share ``d₁`` partial decryptions on the outgoing Ṽ matrix."""

    def __init__(self, share: DecryptionShare, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if share.public_key != self.group_public_key:
            raise ProtocolError("share does not match the directory's group key")
        self._share = share

    def start_request_with_partials(
        self, request, span=None
    ) -> PartialSignExtractionRequest:
        """Eq. (14) blinding + the front's threshold partials.

        The ``Ṽ^{d₁}`` exponentiations are independent per cell, so they
        ship to the executor as one batch.
        """
        extraction = self.start_request(request, span=span)
        jobs = [
            (ct.ciphertext, self._share.exponent, self.group_public_key.n_sq)
            for row in extraction.matrix
            for ct in row
        ]
        powers = iter(self._executor.pow_many(jobs))
        partials = tuple(
            tuple(next(powers) for _ in row) for row in extraction.matrix
        )
        self.stats.hom_operations += sum(len(row) for row in extraction.matrix)
        return PartialSignExtractionRequest(
            round_id=extraction.round_id,
            su_id=extraction.su_id,
            matrix=extraction.matrix,
            partials=partials,
        )


class BackendServer:
    """The lightweight co-server replacing the STP.

    Holds share ``d₂`` and the public directory.  Unlike the STP it
    *cannot* decrypt protocol traffic on its own — it only completes
    decryptions the front server has already half-opened, which by
    protocol are always the blinded ``Ṽ`` values.
    """

    def __init__(
        self,
        share: DecryptionShare,
        directory: KeyDirectory,
        rng: RandomSource | None = None,
        executor: Executor | None = None,
    ) -> None:
        if share.public_key != directory.group_public_key:
            raise ProtocolError("share does not match the directory's group key")
        self._share = share
        self.directory = directory
        self._rng = default_rng(rng)
        self._executor = default_executor(executor)
        self.cells_combined = 0

    def handle_partial_extraction(
        self, request: PartialSignExtractionRequest, span=None
    ) -> SignExtractionResponse:
        """Combine partials, extract signs (eq. (15)), convert to pk_j."""
        if span is not None:
            span.set_attribute("rows", len(request.matrix))
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has no registered key")
        su_key = self.directory.su_key(request.su_id)
        pk = self.directory.group_public_key
        # Validate cells and draw re-encryption nonces in order, then
        # batch the ``Ṽ^{d₂}`` and ``r**n`` exponentiations.
        jobs = []
        for ct_row in request.matrix:
            for ct in ct_row:
                if ct.public_key != pk:
                    raise ProtocolError("Ṽ entry not under the group key")
                jobs.append((ct.ciphertext, self._share.exponent, pk.n_sq))
                jobs.append(su_key.obfuscator_job(su_key.random_r(self._rng)))
        powers = iter(self._executor.pow_many(jobs))
        converted = []
        for ct_row, partial_row in zip(request.matrix, request.partials):
            out_row = []
            for ct, front_partial in zip(ct_row, partial_row):
                own = PartialDecryption(index=self._share.index, value=next(powers))
                obfuscator = next(powers)
                value = combine_partials(
                    pk,
                    [PartialDecryption(index=1 - self._share.index, value=front_partial), own],
                )
                self.cells_combined += 1
                sign = 1 if value > 0 else -1
                out_row.append(su_key.encrypt_with_obfuscator(sign, obfuscator))
            converted.append(tuple(out_row))
        return SignExtractionResponse(
            round_id=request.round_id, su_id=request.su_id, matrix=tuple(converted)
        )


class TwoServerCoordinator:
    """Deploys and drives the STP-free variant end to end.

    Mirrors :class:`repro.pisa.protocol.PisaCoordinator`: same clients,
    same message flow, but sign extraction runs through the
    front/backend threshold pair instead of an STP.
    """

    def __init__(
        self,
        environment,
        key_bits: int = 2048,
        signature_bits: int | None = None,
        rng: RandomSource | None = None,
        transport=None,
        executor: Executor | None = None,
    ) -> None:
        from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
        from repro.net.transport import InMemoryTransport

        if signature_bits is None:
            signature_bits = max(32, key_bits // 2)
        if signature_bits >= key_bits:
            raise ProtocolError(
                "signature modulus must be smaller than the Paillier modulus"
            )
        self.environment = environment
        self.key_bits = key_bits
        self._rng = default_rng(rng)
        self.transport = transport if transport is not None else InMemoryTransport()

        keypair, directory = deal_two_server_keys(key_bits, rng=self._rng)
        self.directory = directory
        _, signing_private = generate_rsa_keypair(signature_bits, rng=self._rng)
        self.front = FrontServer(
            keypair.shares[0],
            environment,
            directory=directory,
            signer=RsaFdhSigner(signing_private),
            rng=self._rng,
            executor=executor,
        )
        self.backend = BackendServer(
            keypair.shares[1], directory, rng=self._rng, executor=executor
        )
        self._pu_clients = {}
        self._su_clients = {}

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self.directory.group_public_key

    def enroll_pu(self, pu):
        from repro.pisa.pu_client import PUClient

        client = PUClient(
            pu, self.environment, self.group_public_key, rng=self._rng
        )
        self._pu_clients[pu.receiver_id] = client
        update = client.build_update()
        self.transport.send(update, sender=pu.receiver_id, receiver="sdc-front")
        self.front.handle_pu_update(update)
        return client

    def enroll_su(self, su, region=None, keypair=None):
        from repro.crypto.paillier import generate_keypair
        from repro.pisa.su_client import SUClient

        keypair = keypair or generate_keypair(self.key_bits, rng=self._rng)
        client = SUClient(
            su, self.environment, self.group_public_key, keypair,
            region=region, rng=self._rng,
        )
        self.directory.register_su_key(su.su_id, client.public_key)
        self._su_clients[su.su_id] = client
        return client

    def su_client(self, su_id: str):
        return self._su_clients[su_id]

    def run_request_round(self, su_id: str, reuse_cached_request: bool = False):
        """One Figure 5 round through the front/backend pair."""
        from time import perf_counter as now

        from repro.pisa.protocol import RoundReport, RoundTimings

        client = self._su_clients[su_id]

        t0 = now()
        request = (
            client.refresh_request() if reuse_cached_request
            else client.prepare_request()
        )
        t1 = now()
        self.transport.send(request, sender=su_id, receiver="sdc-front")

        extraction = self.front.start_request_with_partials(request)
        t2 = now()
        self.transport.send(extraction, sender="sdc-front", receiver="sdc-back")

        conversion = self.backend.handle_partial_extraction(extraction)
        t3 = now()
        self.transport.send(conversion, sender="sdc-back", receiver="sdc-front")

        response = self.front.finish_request(conversion)
        t4 = now()
        self.transport.send(response, sender="sdc-front", receiver=su_id)

        outcome = client.process_response(response, self.directory)
        t5 = now()
        return RoundReport(
            su_id=su_id,
            granted=outcome.granted,
            outcome=outcome,
            timings=RoundTimings(
                request_preparation=t1 - t0,
                sdc_phase1=t2 - t1,
                stp_conversion=t3 - t2,
                sdc_phase2=t4 - t3,
                su_decryption=t5 - t4,
            ),
            request_bytes=request.wire_size(),
            sign_extraction_bytes=extraction.wire_size(),
            conversion_bytes=conversion.wire_size(),
            response_bytes=response.wire_size(),
        )


__all__.append("TwoServerCoordinator")
