"""SU-side client (Figure 5, steps 1-2 and the final decryption).

The secondary user computes its interference footprint
``F_j(c, i) = S^SU_{c,j} · h(d^c_{i,j})`` (eq. (5)) over the blocks it is
willing to disclose, encrypts every entry under the group key, and sends
the matrix as its transmission request.  When the license response comes
back it decrypts ``G̃^{pk_j}`` with its personal secret key and learns —
alone among all parties — whether transmission is permitted, by checking
the decrypted integer against the license signature.

Also implemented:

* request *re-randomisation* (§VI-A): multiplying each cached ciphertext
  by a fresh ``r**n`` makes a re-submission unlinkable at roughly the
  cost of one homomorphic addition per entry instead of a fresh
  encryption;
* the *location privacy vs time* trade-off: a
  :class:`~repro.geo.region.PrivacyRegion` shrinks the encrypted matrix
  to the disclosed blocks.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

from repro.crypto.paillier import ObfuscatorPool, PaillierKeypair, PaillierPublicKey
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ProtocolError
from repro.geo.region import PrivacyRegion
from repro.pisa.keys import KeyDirectory
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import LicenseResponse, SURequestMessage
from repro.watch.entities import SUTransmitter
from repro.watch.environment import SpectrumEnvironment
from repro.watch.matrices import su_request_matrix

__all__ = ["SUClient", "RequestOutcome"]


@dataclass(frozen=True)
class RequestOutcome:
    """What the SU learns from a license response."""

    granted: bool
    license: TransmissionLicense
    #: The decrypted integer; equals the valid signature iff granted.
    decrypted_value: int


class SUClient:
    """The secondary user's protocol agent.

    Parameters
    ----------
    su:
        Private operation data (block, EIRP parameters).
    environment:
        Shared public substrate.
    group_public_key:
        ``pk_G`` from the key directory.
    keypair:
        The SU's personal Paillier keypair ``(pk_j, sk_j)``; the public
        half must be registered with the STP's directory.
    region:
        Disclosed privacy region; ``None`` = full location privacy.
    """

    def __init__(
        self,
        su: SUTransmitter,
        environment: SpectrumEnvironment,
        group_public_key: PaillierPublicKey,
        keypair: PaillierKeypair,
        region: PrivacyRegion | None = None,
        rng: RandomSource | None = None,
    ) -> None:
        self.su = su
        self.environment = environment
        self.group_public_key = group_public_key
        self.keypair = keypair
        self.region = region if region is not None else PrivacyRegion.full(environment.grid)
        self._rng = default_rng(rng)
        self._cached_request: SURequestMessage | None = None
        self._obfuscators = ObfuscatorPool(group_public_key, rng=self._rng)
        if not self.region.contains(su.block_index):
            raise ProtocolError("the disclosed region must contain the SU's block")

    @property
    def su_id(self) -> str:
        return self.su.su_id

    @property
    def public_key(self) -> PaillierPublicKey:
        """``pk_j`` — register this with the STP's key directory."""
        return self.keypair.public_key

    # -- request preparation (steps 1-2) -----------------------------------------

    def prepare_request(self, channels: Sequence[int] | None = None) -> SURequestMessage:
        """Compute eq. (5) and encrypt the region's entries under ``pk_G``.

        This is the §VI-A "≈221 s at full scale" phase; the result is
        cached so later rounds can re-randomise instead of re-encrypting.
        """
        env = self.environment
        f_matrix = su_request_matrix(
            self.su,
            env.grid,
            env.params,
            pathloss_for_channel=lambda c: env.su_pathloss_for(self.su, c),
            exclusion_distance_for_channel=env.exclusion_distance,
            region=self.region,
            channels=channels,
        )
        blocks = tuple(self.region.sorted_indices())
        matrix = tuple(
            tuple(
                self.group_public_key.encrypt(int(f_matrix[c, b]), rng=self._rng)
                for b in blocks
            )
            for c in range(env.num_channels)
        )
        self._cached_request = SURequestMessage(
            su_id=self.su.su_id, region_blocks=blocks, matrix=matrix
        )
        return self._cached_request

    def precompute_refresh_material(self, rounds: int = 1, executor=None) -> None:
        """Offline phase of the §VI-A refresh: stock up ``r**n`` factors.

        Call during idle time; each future :meth:`refresh_request` then
        costs one modular multiplication per ciphertext (the paper's
        "same amount of time as homomorphic addition").  An executor
        parallelises the stocking exponentiations.
        """
        if self._cached_request is None:
            raise ProtocolError("no cached request; call prepare_request first")
        cells = sum(len(row) for row in self._cached_request.matrix)
        self._obfuscators.ensure(rounds * cells, executor=executor)

    def refresh_request(self) -> SURequestMessage:
        """Re-randomise the cached request (§VI-A fast path, ≈20x cheaper).

        Each ciphertext is multiplied by a precomputed ``r**n``: the
        plaintext operation parameters are unchanged but the request is
        cryptographically unlinkable to previous submissions.  If the
        obfuscator pool was not stocked via
        :meth:`precompute_refresh_material`, the factors are computed
        inline (correct, but as slow as fresh encryption).
        """
        if self._cached_request is None:
            raise ProtocolError("no cached request; call prepare_request first")
        refreshed = tuple(
            tuple(ct.rerandomize_with(self._obfuscators.take()) for ct in row)
            for row in self._cached_request.matrix
        )
        self._cached_request = SURequestMessage(
            su_id=self._cached_request.su_id,
            region_blocks=self._cached_request.region_blocks,
            matrix=refreshed,
        )
        return self._cached_request

    # -- response handling (step 12, after Figure 5) --------------------------------

    def process_response(
        self, response: LicenseResponse, directory: KeyDirectory
    ) -> RequestOutcome:
        """Decrypt ``G̃`` and decide whether transmission is permitted.

        Validates that the license names this SU and commits to the
        request we actually sent, then checks the decrypted integer
        against the license signature with the issuer's public key.
        """
        license_body = response.license
        if license_body.su_id != self.su.su_id:
            raise ProtocolError("license issued to a different SU")
        if self._cached_request is not None:
            expected = TransmissionLicense.digest_of(self._cached_request.digest_bytes())
            if license_body.request_digest != expected:
                raise ProtocolError("license does not commit to our request")
        if response.encrypted_signature.public_key != self.keypair.public_key:
            raise ProtocolError("response encrypted under a key that is not ours")
        from repro.crypto.signatures import RsaFdhVerifier

        decrypted = self.keypair.private_key.raw_decrypt(
            response.encrypted_signature.ciphertext
        )
        verifier = RsaFdhVerifier(directory.signing_key(license_body.issuer_id))
        granted = license_body.verify(verifier, decrypted)
        return RequestOutcome(
            granted=granted, license=license_body, decrypted_value=decrypted
        )
