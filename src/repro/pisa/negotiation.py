"""Private power negotiation — finding the highest admissible EIRP.

WATCH grants or denies a *specific* configuration; it never tells an SU
what power *would* be admissible (and PISA hides even the deny reason).
A denied SU's natural move is to retry lower.  This module implements
the client-side search: a binary search over transmit power, each probe
being a full privacy-preserving protocol round, converging to the
highest power the budget admits within a chosen resolution.

Privacy properties of the search itself:

* each probe is an independent encrypted request — the SDC sees only
  that the SU re-requested (request *count* and timing are metadata the
  base protocol already exposes, §V);
* the SDC never learns which probes were granted, so it cannot infer
  the bracketing sequence or the final operating point;
* admission is monotone in power (tested in the WATCH suite), which is
  what makes binary search sound.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.watch.entities import SUTransmitter

__all__ = ["NegotiationResult", "PowerNegotiator"]


@dataclass(frozen=True)
class NegotiationResult:
    """Outcome of one max-power search."""

    su_id: str
    #: Highest power (dBm) that was granted; None if even the floor failed.
    best_power_dbm: float | None
    #: Lowest power (dBm) that was denied; None if even the cap passed.
    lowest_denied_dbm: float | None
    rounds_used: int
    #: (power_dbm, granted) per probe, in probe order.
    probes: tuple[tuple[float, bool], ...]

    @property
    def admitted(self) -> bool:
        return self.best_power_dbm is not None


class PowerNegotiator:
    """Binary-search driver over any coordinator with PISA's round API.

    Works with :class:`~repro.pisa.protocol.PisaCoordinator`,
    :class:`~repro.pisa.two_server.TwoServerCoordinator`, and
    :class:`~repro.pisa.packed.PackedCoordinator` — anything exposing
    ``enroll_su`` and ``run_request_round``.
    """

    def __init__(self, coordinator, resolution_db: float = 1.0) -> None:
        if resolution_db <= 0:
            raise ConfigurationError("resolution must be positive")
        import itertools

        self.coordinator = coordinator
        self.resolution_db = resolution_db
        self._probe_ids = itertools.count()
        #: One personal keypair shared by every probe identity: probes
        #: are throwaway aliases of the same SU, and regenerating a full
        #: Paillier keypair per probe would dominate negotiation time at
        #: production key sizes.
        self._probe_keypair = None

    def _probe(self, su: SUTransmitter, power_dbm: float, region) -> bool:
        from repro.crypto.paillier import generate_keypair

        if self._probe_keypair is None:
            self._probe_keypair = generate_keypair(
                self.coordinator.key_bits, rng=self.coordinator._rng
            )
        probe_su = SUTransmitter(
            su_id=f"{su.su_id}::probe-{next(self._probe_ids)}",
            block_index=su.block_index,
            tx_power_dbm=power_dbm,
            antenna=su.antenna,
        )
        self.coordinator.enroll_su(
            probe_su, region=region, keypair=self._probe_keypair
        )
        return self.coordinator.run_request_round(probe_su.su_id).granted

    def negotiate(
        self,
        su: SUTransmitter,
        floor_dbm: float = -20.0,
        cap_dbm: float = 36.0,
        region=None,
    ) -> NegotiationResult:
        """Find the highest admissible power in ``[floor, cap]``.

        At most ``2 + log2((cap − floor)/resolution)`` protocol rounds.
        """
        if cap_dbm <= floor_dbm:
            raise ConfigurationError("cap must exceed floor")
        probes: list[tuple[float, bool]] = []
        attempt = 0

        def run(power: float) -> bool:
            nonlocal attempt
            granted = self._probe(su, power, region)
            probes.append((power, granted))
            attempt += 1
            return granted

        # Bracket: if the cap passes we are done; if the floor fails,
        # nothing is admissible.
        if run(cap_dbm):
            return NegotiationResult(
                su_id=su.su_id, best_power_dbm=cap_dbm, lowest_denied_dbm=None,
                rounds_used=attempt, probes=tuple(probes),
            )
        if not run(floor_dbm):
            return NegotiationResult(
                su_id=su.su_id, best_power_dbm=None, lowest_denied_dbm=floor_dbm,
                rounds_used=attempt, probes=tuple(probes),
            )
        low, high = floor_dbm, cap_dbm  # low granted, high denied
        while high - low > self.resolution_db:
            mid = (low + high) / 2.0
            if run(mid):
                low = mid
            else:
                high = mid
        return NegotiationResult(
            su_id=su.su_id, best_power_dbm=low, lowest_denied_dbm=high,
            rounds_used=attempt, probes=tuple(probes),
        )
