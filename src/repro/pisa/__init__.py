"""PISA — the paper's privacy-preserving spectrum-access protocol (§IV).

Four parties (Figure 3):

* :class:`~repro.pisa.pu_client.PUClient` — encrypts channel-reception
  updates under the group key (Figure 4);
* :class:`~repro.pisa.su_client.SUClient` — prepares encrypted
  transmission requests and decrypts license responses (Figure 5);
* :class:`~repro.pisa.sdc_server.SdcServer` — performs the spectrum
  computation homomorphically, eqs. (9)-(12), (14), (16), (17);
* :class:`~repro.pisa.stp_server.StpServer` — the semi-trusted third
  party holding the group secret key: sign extraction (eq. (15)) and key
  conversion to each SU's personal key.

:class:`~repro.pisa.protocol.PisaCoordinator` wires them together over an
accounted transport and runs complete protocol rounds.
"""

from repro.pisa.blinding import BlindingFactory, BlindingParameters
from repro.pisa.keys import KeyDirectory
from repro.pisa.license import TransmissionLicense
from repro.pisa.negotiation import NegotiationResult, PowerNegotiator
from repro.pisa.packed import PackedCoordinator
from repro.pisa.protocol import PisaCoordinator, RoundReport, small_demo
from repro.pisa.pu_client import PUClient
from repro.pisa.sdc_server import SdcServer
from repro.pisa.session import SessionState, SuSession
from repro.pisa.stp_server import StpServer
from repro.pisa.su_client import SUClient
from repro.pisa.two_server import TwoServerCoordinator

__all__ = [
    "BlindingFactory",
    "BlindingParameters",
    "KeyDirectory",
    "TransmissionLicense",
    "NegotiationResult",
    "PowerNegotiator",
    "PackedCoordinator",
    "PisaCoordinator",
    "RoundReport",
    "small_demo",
    "PUClient",
    "SdcServer",
    "SessionState",
    "SuSession",
    "StpServer",
    "SUClient",
    "TwoServerCoordinator",
]
