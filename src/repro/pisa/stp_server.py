"""The Semi-trusted Third Party (Figure 5, steps 6-8).

The STP is the only holder of the group secret key ``sk_G``.  Its entire
protocol role is the *key-conversion* service: decrypt each blinded
indicator ``Ṽ(c,i)``, reduce it to a sign

.. math::

    X(c,i) = \\begin{cases} 1 & V(c,i) > 0 \\\\ -1 & V(c,i) \\le 0 \\end{cases}

(eq. (15)), and re-encrypt the sign under the requesting SU's personal
public key ``pk_j``.  Because the SDC multiplied in per-cell one-time
``α, β`` and a sign coin ``ε``, the decrypted values give the STP no
usable information about the interference indicators (Lemma V.1's
non-collusion assumption).

The STP also operates the public :class:`~repro.pisa.keys.KeyDirectory`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.encoding import decode_signed
from repro.crypto.paillier import (
    PaillierKeypair,
    PaillierPublicKey,
    generate_keypair,
)
from repro.crypto.parallel import Executor, default_executor
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import ProtocolError
from repro.pisa.keys import KeyDirectory
from repro.pisa.messages import SignExtractionRequest, SignExtractionResponse

__all__ = ["StpServer", "StpStats"]


@dataclass
class StpStats:
    """Operation counters for the evaluation harness."""

    conversions: int = 0
    cells_decrypted: int = 0
    cells_encrypted: int = 0


class StpServer:
    """Key authority + sign-extraction/key-conversion service."""

    def __init__(
        self,
        group_keypair: PaillierKeypair | None = None,
        key_bits: int = 2048,
        rng: RandomSource | None = None,
        executor: Executor | None = None,
    ) -> None:
        self._rng = default_rng(rng)
        self._executor = default_executor(executor)
        self._keypair = group_keypair or generate_keypair(key_bits, rng=self._rng)
        self.directory = KeyDirectory(self._keypair.public_key)
        self.stats = StpStats()

    @property
    def group_public_key(self) -> PaillierPublicKey:
        """``pk_G`` — published; the secret half never leaves this object."""
        return self._keypair.public_key

    def register_su(self, su_id: str, public_key: PaillierPublicKey) -> None:
        """Accept an SU's ``pk_i`` upload (§III-C)."""
        self.directory.register_su_key(su_id, public_key)

    # -- the key-conversion service --------------------------------------------

    def handle_sign_extraction(
        self, request: SignExtractionRequest, span=None
    ) -> SignExtractionResponse:
        """Steps 6-8 of Figure 5: decrypt Ṽ, take signs, re-encrypt under pk_j."""
        if span is not None:
            span.set_attribute("rows", len(request.matrix))
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has not registered a key")
        su_key = self.directory.su_key(request.su_id)
        sk = self._keypair.private_key
        # Validate and draw the re-encryption nonces in cell order, then
        # batch the expensive exponentiations (two CRT halves per
        # decryption plus one r**n per re-encryption) through the
        # executor; results are byte-identical to the inline path.
        jobs = []
        for row in request.matrix:
            for ct in row:
                if ct.public_key != self.group_public_key:
                    raise ProtocolError("Ṽ entry not under the group key")
                jobs.extend(sk.decrypt_pow_jobs(ct.ciphertext))
                jobs.append(su_key.obfuscator_job(su_key.random_r(self._rng)))
        powers = iter(self._executor.pow_many(jobs))
        converted = []
        for row in request.matrix:
            out_row = []
            for ct in row:
                raw = sk.raw_decrypt_from_pows(next(powers), next(powers))
                value = decode_signed(raw, self.group_public_key.n)
                self.stats.cells_decrypted += 1
                sign = 1 if value > 0 else -1
                out_row.append(su_key.encrypt_with_obfuscator(sign, next(powers)))
                self.stats.cells_encrypted += 1
            converted.append(tuple(out_row))
        self.stats.conversions += 1
        return SignExtractionResponse(
            round_id=request.round_id, su_id=request.su_id, matrix=tuple(converted)
        )
