"""Key management (§III-C).

The STP "creates a global Paillier public/private key pair (pk_G, sk_G)"
and keeps ``sk_G`` to itself; each SU generates its own pair and uploads
its public key; "anyone can retrieve pk_G and SU Paillier public keys
from the STP".  :class:`KeyDirectory` is that public bulletin board — it
never contains a secret key.
"""

from __future__ import annotations

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.signatures import RsaPublicKey
from repro.errors import ProtocolError

__all__ = ["KeyDirectory"]


class KeyDirectory:
    """Public key bulletin board operated by the STP.

    Holds the group public key, each SU's personal Paillier public key,
    and the SDC's license-signing (RSA) public key.  Secret keys never
    enter this object.
    """

    def __init__(self, group_public_key: PaillierPublicKey) -> None:
        self._group_public_key = group_public_key
        self._su_keys: dict[str, PaillierPublicKey] = {}
        self._signing_keys: dict[str, RsaPublicKey] = {}

    @property
    def group_public_key(self) -> PaillierPublicKey:
        """``pk_G`` — everyone encrypts protocol inputs under this key."""
        return self._group_public_key

    # -- SU Paillier keys ---------------------------------------------------

    def register_su_key(self, su_id: str, public_key: PaillierPublicKey) -> None:
        """SU *i* uploads ``pk_i`` (§III-C)."""
        if su_id in self._su_keys and self._su_keys[su_id] != public_key:
            raise ProtocolError(f"SU {su_id!r} already registered a different key")
        self._su_keys[su_id] = public_key

    def su_key(self, su_id: str) -> PaillierPublicKey:
        """Retrieve ``pk_i`` for SU ``su_id``."""
        try:
            return self._su_keys[su_id]
        except KeyError:
            raise ProtocolError(f"no key registered for SU {su_id!r}") from None

    def has_su_key(self, su_id: str) -> bool:
        return su_id in self._su_keys

    # -- license signing keys --------------------------------------------------

    def register_signing_key(self, issuer_id: str, public_key: RsaPublicKey) -> None:
        """The SDC publishes its license-verification key."""
        self._signing_keys[issuer_id] = public_key

    def signing_key(self, issuer_id: str) -> RsaPublicKey:
        try:
            return self._signing_keys[issuer_id]
        except KeyError:
            raise ProtocolError(f"no signing key for issuer {issuer_id!r}") from None
