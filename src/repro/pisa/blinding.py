"""Blinding factors for the sign-extraction step (eq. (14)).

The SDC hides each interference indicator ``I(c, i)`` from the STP by
sending

.. math::

    V(c, i) = ε(c,i) · (α(c,i) · I(c,i) − β(c,i))

with per-cell one-time randomness: large positive integers
``α > β ≥ 1`` and a uniform sign flip ``ε ∈ {−1, +1}``.  Because
``α·I − β`` is ≥ α−β > 0 when I > 0 and < 0 when I ≤ 0, the STP's sign
observation ``sign(V)`` equals ``ε · sign'(I)`` where ``sign'`` maps
``I > 0 → +1`` and ``I ≤ 0 → −1`` — so unblinding is just multiplying by
ε again (eq. (16)) while the STP, not knowing ε, sees an unbiased coin.

Safety condition
----------------
The blinded value must stay inside the signed half-range of the group
modulus or the sign flips by wrap-around:

.. math::

    α_{max} · |I|_{max} + β_{max} < n / 2

:class:`BlindingParameters` derives usable bit-widths from the key size
and the configured indicator bound and *refuses unsafe configurations*
(:class:`~repro.errors.BlindingError`), which a test exercises.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.rand import RandomSource, default_rng
from repro.errors import BlindingError

__all__ = ["BlindingParameters", "CellBlinding", "BlindingFactory"]

#: Table II benchmarks homomorphic scaling with a "100-bit constant";
#: we default α to the same width when the key leaves room for it.
DEFAULT_ALPHA_BITS = 100

#: Minimum acceptable blinding width: below this the STP could narrow
#: down |I| by brute force over plausible α.
MIN_ALPHA_BITS = 32


@dataclass(frozen=True)
class BlindingParameters:
    """Validated bit-widths for α and β under a given key and value bound."""

    alpha_bits: int
    beta_bits: int
    indicator_bound: int

    @classmethod
    def for_key(
        cls,
        public_key: PaillierPublicKey,
        indicator_bound: int,
        alpha_bits: int = DEFAULT_ALPHA_BITS,
    ) -> "BlindingParameters":
        """Derive safe widths for ``|I| ≤ indicator_bound`` under ``public_key``.

        ``alpha_bits`` is clamped down to what the key allows; if even
        :data:`MIN_ALPHA_BITS` does not fit, a :class:`BlindingError` is
        raised — the deployment must use a larger key or narrower values.
        """
        if indicator_bound < 1:
            raise BlindingError("indicator bound must be positive")
        # α·|I| + β < n/2  ⇐  alpha_bits + bound_bits + 1 ≤ (n_bits − 1) − 1.
        headroom = public_key.n.bit_length() - 1 - indicator_bound.bit_length() - 2
        usable = min(alpha_bits, headroom)
        if usable < MIN_ALPHA_BITS:
            raise BlindingError(
                f"key of {public_key.n.bit_length()} bits leaves only {usable} "
                f"bits for α against a {indicator_bound.bit_length()}-bit "
                f"indicator bound (minimum {MIN_ALPHA_BITS})"
            )
        return cls(alpha_bits=usable, beta_bits=usable - 1, indicator_bound=indicator_bound)


@dataclass(frozen=True)
class CellBlinding:
    """One-time blinding for a single (channel, block) cell."""

    alpha: int
    beta: int
    epsilon: int  # −1 or +1

    def blind_value(self, indicator: int) -> int:
        """Plaintext-domain reference of eq. (14) (used by tests)."""
        return self.epsilon * (self.alpha * indicator - self.beta)


class BlindingFactory:
    """Draws per-cell one-time blinding factors.

    Guarantees ``α > β ≥ 1`` (the paper's stated invariant) by sampling
    β uniformly below ``2**beta_bits`` and α uniformly in the full
    ``alpha_bits`` range above β.
    """

    def __init__(self, parameters: BlindingParameters, rng: RandomSource | None = None) -> None:
        self.parameters = parameters
        self._rng = default_rng(rng)

    def draw(self) -> CellBlinding:
        """Draw one cell's ``(α, β, ε)``."""
        p = self.parameters
        beta = self._rng.randrange(1, 1 << p.beta_bits)
        alpha = self._rng.randrange(beta + 1, 1 << p.alpha_bits)
        epsilon = 1 if self._rng.randbits(1) else -1
        return CellBlinding(alpha=alpha, beta=beta, epsilon=epsilon)

    def draw_eta(self) -> int:
        """The one-time η of eq. (17): a large positive random integer."""
        return self._rng.randrange(1 << (self.parameters.alpha_bits - 1),
                                   1 << self.parameters.alpha_bits)
