"""The Spectrum Database Controller, privacy-preserving edition (§IV-B).

The SDC performs WATCH's entire spectrum computation over ciphertexts:

* **PU updates** (Figure 4, step 4): maintain the encrypted aggregate
  ``W̃' = ⊕_i W̃_i`` (eq. (9)) incrementally — a re-submitting PU's old
  contribution is homomorphically subtracted and the new one added.  The
  budget ``Ñ = W̃' ⊕ Ẽ`` (eq. (10)) is realised with *plaintext*
  additions of the public ``E`` entries (``E`` is public data, so adding
  it via ``g^E`` costs one multiplication and no fresh encryption).
* **SU requests, phase 1** (Figure 5, steps 3-5): scale the request into
  interference (eq. (11)), subtract from the budget (eq. (12)), blind
  every cell with one-time ``(α, β, ε)`` (eq. (14)) and forward to the
  STP for sign extraction.
* **SU requests, phase 2** (steps 9-11): unblind the converted signs
  into the 0/−2 gadget values ``Q̃`` (eq. (16)), sign the transmission
  license, and perturb the encrypted signature with ``η ⊗ ΣQ̃``
  (eq. (17)) so it decrypts to a valid signature iff every cell's
  interference budget holds.

The SDC never decrypts anything and never learns the decision.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field

from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey, hom_sum
from repro.crypto.parallel import Executor, default_executor
from repro.crypto.rand import RandomSource, default_rng
from repro.crypto.signatures import RsaFdhSigner
from repro.errors import ProtocolError
from repro.pisa.blinding import BlindingFactory, BlindingParameters, CellBlinding
from repro.pisa.keys import KeyDirectory
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import (
    LicenseResponse,
    PUUpdateMessage,
    SignExtractionRequest,
    SignExtractionResponse,
    SURequestMessage,
)
from repro.watch.environment import SpectrumEnvironment

__all__ = ["SdcServer", "SdcStats", "PendingRound"]


@dataclass
class SdcStats:
    """Operation counters for the evaluation harness."""

    pu_updates: int = 0
    requests_started: int = 0
    requests_completed: int = 0
    hom_operations: int = 0


@dataclass
class PendingRound:
    """Per-request state the SDC holds between the two STP phases."""

    round_id: str
    su_id: str
    region_blocks: tuple[int, ...]
    blindings: tuple[tuple[CellBlinding, ...], ...]
    request_digest: bytes
    channels: tuple[int, ...]


class SdcServer:
    """The honest-but-curious spectrum controller."""

    def __init__(
        self,
        environment: SpectrumEnvironment,
        directory: KeyDirectory,
        signer: RsaFdhSigner,
        issuer_id: str = "sdc",
        rng: RandomSource | None = None,
        fresh_beta_encryption: bool = True,
        clock=time.time,
        executor: Executor | None = None,
    ) -> None:
        self.environment = environment
        self.directory = directory
        self.signer = signer
        self.issuer_id = issuer_id
        self._rng = default_rng(rng)
        self._executor = default_executor(executor)
        self._fresh_beta = fresh_beta_encryption
        self._clock = clock
        self.stats = SdcStats()
        #: Latest encrypted update per PU: pu_id → (block, per-channel cts).
        self._pu_updates: dict[str, tuple[int, tuple[EncryptedNumber, ...]]] = {}
        #: Incrementally maintained W̃'(c, b) for cells with contributions.
        self._w_sum: dict[tuple[int, int], EncryptedNumber] = {}
        self._pending: dict[str, PendingRound] = {}
        self._round_counter = itertools.count()
        #: The most recent round's ΣQ̃ — probe point for the cluster
        #: transcript-equivalence tests (repro.cluster exposes the same).
        self.last_q_sum: EncryptedNumber | None = None
        directory.register_signing_key(issuer_id, signer.public_key)

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self.directory.group_public_key

    # -- blinding configuration ---------------------------------------------------

    def blinding_parameters(self) -> BlindingParameters:
        """Safe α/β widths for this deployment's value range.

        The indicator magnitude is bounded by
        ``max(N, R) ≤ 2**value_bits · (X + 1)`` with ``X`` the integer
        SINR factor of eq. (11).
        """
        params = self.environment.params
        bound = (1 << params.value_bits) * (params.sinr_plus_redn_int + 1)
        return BlindingParameters.for_key(self.group_public_key, bound)

    # -- Figure 4 step 4: PU update ---------------------------------------------------

    def handle_pu_update(self, message: PUUpdateMessage) -> None:
        """Fold a PU's encrypted ``W̃_i`` into the running aggregate (eq. (9)).

        A PU that re-submits (it switched channels) has its previous
        vector homomorphically subtracted first, so the aggregate always
        equals ``⊕_{i∈PUs} W̃_i`` over each PU's *latest* state.
        """
        env = self.environment
        if len(message.ciphertexts) != env.num_channels:
            raise ProtocolError("PU update must carry one ciphertext per channel")
        for ct in message.ciphertexts:
            if ct.public_key != self.group_public_key:
                raise ProtocolError("PU update not under the group key")
        previous = self._pu_updates.get(message.pu_id)
        if previous is not None:
            old_block, old_cts = previous
            for c, old_ct in enumerate(old_cts):
                cell = (c, old_block)
                self._w_sum[cell] = self._w_sum[cell].subtract(old_ct)
                self.stats.hom_operations += 1
        for c, ct in enumerate(message.ciphertexts):
            cell = (c, message.block_index)
            if cell in self._w_sum:
                self._w_sum[cell] = self._w_sum[cell].add(ct)
            else:
                self._w_sum[cell] = ct
            self.stats.hom_operations += 1
        self._pu_updates[message.pu_id] = (message.block_index, message.ciphertexts)
        self.stats.pu_updates += 1

    # -- Figure 5 steps 3-5: request phase 1 ---------------------------------------------

    def _indicator_cell(
        self, f_ct: EncryptedNumber, channel: int, block: int
    ) -> EncryptedNumber:
        """``Ĩ(c, i) = Ñ(c, i) ⊖ R̃(c, i)`` for one cell (eqs. (10)-(12)).

        ``Ñ = W̃' ⊕ Ẽ`` with the public ``E`` added as a plaintext
        constant; cells without PU contributions reduce to
        ``E − R`` directly.
        """
        params = self.environment.params
        r_ct = f_ct.scalar_mul(params.sinr_plus_redn_int)  # eq. (11)
        self.stats.hom_operations += 1
        e_value = int(self.environment.e_matrix[channel, block])
        indicator = r_ct.scalar_mul(-1).add_plain(e_value)  # E − R
        self.stats.hom_operations += 2
        w_ct = self._w_sum.get((channel, block))
        if w_ct is not None:
            indicator = indicator.add(w_ct)  # + (T − E) where a PU sits
            self.stats.hom_operations += 1
        return indicator

    def start_request(
        self, request: SURequestMessage, span=None
    ) -> SignExtractionRequest:
        """Process an SU request up to the blinded-indicator hand-off.

        ``span`` is an optional :class:`repro.telemetry.Span` annotated
        with operational shape only (block count) — phase boundaries
        never record protocol values.
        """
        env = self.environment
        if span is not None:
            span.set_attribute("blocks", len(request.region_blocks))
        if len(request.matrix) != env.num_channels:
            raise ProtocolError("request must carry one row per channel")
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has no registered key")
        for block in request.region_blocks:
            if not 0 <= block < env.num_blocks:
                raise ProtocolError(f"disclosed block {block} outside the area")
        factory = BlindingFactory(self.blinding_parameters(), rng=self._rng)
        pk = self.group_public_key
        # Pass 1 — indicators and all randomness, drawn in cell order so
        # the transcript is byte-identical whichever executor runs pass 2.
        prepared_rows: list[list[tuple[EncryptedNumber, CellBlinding, int | None]]] = []
        for c, row in enumerate(request.matrix):
            prepared_row = []
            for k, f_ct in enumerate(row):
                if f_ct.public_key != pk:
                    raise ProtocolError("request entry not under the group key")
                block = request.region_blocks[k]
                indicator = self._indicator_cell(f_ct, c, block)
                cell = factory.draw()
                r = pk.random_r(self._rng) if self._fresh_beta else None
                self.stats.hom_operations += 3
                prepared_row.append((indicator, cell, r))
            prepared_rows.append(prepared_row)
        # Pass 2 — the expensive exponentiations of eq. (14), batched.
        jobs = []
        for prepared_row in prepared_rows:
            for indicator, cell, r in prepared_row:
                jobs.append((indicator.ciphertext, cell.alpha, pk.n_sq))  # α ⊗ Ĩ
                if r is not None:
                    jobs.append(pk.obfuscator_job(r))
        powers = iter(self._executor.pow_many(jobs))
        blinded_rows: list[tuple[EncryptedNumber, ...]] = []
        blinding_rows: list[tuple[CellBlinding, ...]] = []
        for prepared_row in prepared_rows:
            blinded_row = []
            blinding_row = []
            for indicator, cell, r in prepared_row:
                blinded = EncryptedNumber(pk, next(powers))
                if r is not None:
                    blinded = blinded.subtract(
                        pk.encrypt_with_obfuscator(cell.beta, next(powers))
                    )
                else:
                    blinded = blinded.add_plain(-cell.beta)
                blinded = blinded.scalar_mul(cell.epsilon)  # ε ⊗ (…)
                blinded_row.append(blinded)
                blinding_row.append(cell)
            blinded_rows.append(tuple(blinded_row))
            blinding_rows.append(tuple(blinding_row))
        round_id = f"round-{next(self._round_counter)}"
        self._pending[round_id] = PendingRound(
            round_id=round_id,
            su_id=request.su_id,
            region_blocks=request.region_blocks,
            blindings=tuple(blinding_rows),
            request_digest=TransmissionLicense.digest_of(request.digest_bytes()),
            channels=tuple(range(env.num_channels)),
        )
        self.stats.requests_started += 1
        return SignExtractionRequest(
            round_id=round_id, su_id=request.su_id, matrix=tuple(blinded_rows)
        )

    # -- Figure 5 steps 9-11: request phase 2 ----------------------------------------------

    def finish_request(
        self, response: SignExtractionResponse, span=None
    ) -> LicenseResponse:
        """Unblind the STP's signs and issue the perturbed encrypted license."""
        # Validate the response in full BEFORE consuming the round state:
        # a malformed/spliced response must not destroy a pending round.
        pending = self._pending.get(response.round_id)
        if pending is None:
            raise ProtocolError(f"unknown round {response.round_id!r}")
        if response.su_id != pending.su_id:
            raise ProtocolError("sign-extraction response for the wrong SU")
        su_key = self.directory.su_key(pending.su_id)
        if len(response.matrix) != len(pending.blindings):
            raise ProtocolError("sign matrix shape mismatch")
        for x_row, blinding_row in zip(response.matrix, pending.blindings):
            if len(x_row) != len(blinding_row):
                raise ProtocolError("sign matrix shape mismatch")
            for x_ct in x_row:
                if x_ct.public_key != su_key:
                    raise ProtocolError("converted sign not under the SU's key")
        del self._pending[response.round_id]
        q_cells: list[EncryptedNumber] = []
        for x_row, blinding_row in zip(response.matrix, pending.blindings):
            for x_ct, cell in zip(x_row, blinding_row):
                # eq. (16): Q̃ = (ε ⊗ X̃) ⊖ 1̃.
                q_cells.append(x_ct.scalar_mul(cell.epsilon).add_plain(-1))
                self.stats.hom_operations += 2
        license_body = TransmissionLicense(
            su_id=pending.su_id,
            issuer_id=self.issuer_id,
            request_digest=pending.request_digest,
            channels=pending.channels,
            issued_at=int(self._clock()),
        )
        signature = license_body.sign(self.signer, max_value=su_key.n)
        encrypted_signature = EncryptedNumber(
            su_key, su_key.raw_encrypt(signature, rng=self._rng)
        )
        # eq. (17): G̃ = SG̃ ⊕ (η ⊗ ΣQ̃).
        eta = BlindingFactory(self.blinding_parameters(), rng=self._rng).draw_eta()
        q_sum = hom_sum(q_cells)
        self.last_q_sum = q_sum
        self.stats.hom_operations += len(q_cells) - 1
        g_ct = encrypted_signature.add(q_sum.scalar_mul(eta))
        self.stats.hom_operations += 2
        self.stats.requests_completed += 1
        return LicenseResponse(license=license_body, encrypted_signature=g_ct)

    # -- introspection ------------------------------------------------------------------

    @property
    def num_tracked_pus(self) -> int:
        return len(self._pu_updates)

    @property
    def pending_rounds(self) -> int:
        return len(self._pending)
