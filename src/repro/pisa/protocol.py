"""End-to-end PISA protocol orchestration.

:class:`PisaCoordinator` wires the four parties (PU clients, SU clients,
the SDC, and the STP) over an accounted transport and runs complete
rounds of Figures 4 and 5.  It is a *test harness and evaluation
driver* — in a deployment the parties are separate processes; here the
message objects flow through :class:`~repro.net.transport.InMemoryTransport`
so every byte is accounted exactly as it would appear on the wire.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.crypto.paillier import PaillierKeypair, generate_keypair
from repro.crypto.rand import DeterministicRandomSource, RandomSource, default_rng
from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
from repro.errors import ProtocolError
from repro.geo.region import PrivacyRegion
from repro.net.transport import InMemoryTransport
from repro.pisa.pu_client import PUClient
from repro.pisa.sdc_server import SdcServer
from repro.pisa.stp_server import StpServer
from repro.pisa.su_client import RequestOutcome, SUClient
from repro.watch.entities import PUReceiver, SUTransmitter
from repro.watch.environment import SpectrumEnvironment

__all__ = ["PisaCoordinator", "RoundReport", "RoundTimings", "small_demo"]


@dataclass(frozen=True)
class RoundTimings:
    """Wall-clock phase timings (seconds) of one request round."""

    request_preparation: float
    sdc_phase1: float
    stp_conversion: float
    sdc_phase2: float
    su_decryption: float

    @property
    def sdc_processing(self) -> float:
        """SDC-side total — the paper's "processing this request" time."""
        return self.sdc_phase1 + self.sdc_phase2

    @property
    def total(self) -> float:
        return (
            self.request_preparation
            + self.sdc_phase1
            + self.stp_conversion
            + self.sdc_phase2
            + self.su_decryption
        )


@dataclass(frozen=True)
class RoundReport:
    """Outcome and cost accounting of one complete request round."""

    su_id: str
    granted: bool
    outcome: RequestOutcome
    timings: RoundTimings
    request_bytes: int
    sign_extraction_bytes: int
    conversion_bytes: int
    response_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.request_bytes
            + self.sign_extraction_bytes
            + self.conversion_bytes
            + self.response_bytes
        )


class PisaCoordinator:
    """Builds and drives a complete PISA deployment.

    Parameters
    ----------
    environment:
        The shared public substrate.
    key_bits:
        Paillier modulus size for the group key and every SU key.  The
        paper uses 2048; tests use small keys for speed.
    signature_bits:
        RSA modulus size for license signing; must stay below
        ``key_bits`` so signatures fit SU plaintext spaces.
    rng:
        Randomness source (pass a DRBG for reproducible runs).
    """

    def __init__(
        self,
        environment: SpectrumEnvironment,
        key_bits: int = 2048,
        signature_bits: int | None = None,
        rng: RandomSource | None = None,
        transport: InMemoryTransport | None = None,
        fresh_beta_encryption: bool = True,
        executor=None,
    ) -> None:
        if signature_bits is None:
            signature_bits = max(32, key_bits // 2)
        if signature_bits >= key_bits:
            raise ProtocolError(
                "signature modulus must be smaller than the Paillier modulus"
            )
        self.environment = environment
        self.key_bits = key_bits
        self._rng = default_rng(rng)
        self.transport = transport if transport is not None else InMemoryTransport()

        self.stp = StpServer(key_bits=key_bits, rng=self._rng, executor=executor)
        _, signing_private = generate_rsa_keypair(signature_bits, rng=self._rng)
        self.sdc = SdcServer(
            environment,
            directory=self.stp.directory,
            signer=RsaFdhSigner(signing_private),
            rng=self._rng,
            fresh_beta_encryption=fresh_beta_encryption,
            executor=executor,
        )
        self._pu_clients: dict[str, PUClient] = {}
        self._su_clients: dict[str, SUClient] = {}

    # -- enrolment -----------------------------------------------------------------

    def enroll_pu(self, pu: PUReceiver) -> PUClient:
        """Create a PU client and send its initial encrypted update."""
        client = PUClient(
            pu, self.environment, self.stp.group_public_key, rng=self._rng
        )
        self._pu_clients[pu.receiver_id] = client
        update = client.build_update()
        self.transport.send(update, sender=pu.receiver_id, receiver="sdc")
        self.sdc.handle_pu_update(update)
        return client

    def enroll_su(
        self,
        su: SUTransmitter,
        region: PrivacyRegion | None = None,
        keypair: PaillierKeypair | None = None,
    ) -> SUClient:
        """Create an SU client, generate/register its personal key pair."""
        keypair = keypair or generate_keypair(self.key_bits, rng=self._rng)
        client = SUClient(
            su,
            self.environment,
            self.stp.group_public_key,
            keypair,
            region=region,
            rng=self._rng,
        )
        self.stp.register_su(su.su_id, client.public_key)
        self._su_clients[su.su_id] = client
        return client

    def pu_client(self, pu_id: str) -> PUClient:
        return self._pu_clients[pu_id]

    def su_client(self, su_id: str) -> SUClient:
        return self._su_clients[su_id]

    # -- protocol rounds ------------------------------------------------------------

    def pu_switch_channel(
        self, pu_id: str, channel_slot: int | None, signal_strength_mw: float = 0.0
    ) -> bool:
        """Run Figure 4 for a channel switch; returns True if an update flowed."""
        client = self._pu_clients[pu_id]
        update = client.switch_channel(channel_slot, signal_strength_mw)
        if update is None:
            return False
        self.transport.send(update, sender=pu_id, receiver="sdc")
        self.sdc.handle_pu_update(update)
        return True

    def run_request_round(
        self, su_id: str, reuse_cached_request: bool = False
    ) -> RoundReport:
        """Run Figure 5 end to end for one SU and report outcome + costs.

        ``reuse_cached_request=True`` exercises the §VI-A fast path: the
        cached encrypted request is re-randomised instead of rebuilt.
        """
        client = self._su_clients[su_id]

        t0 = time.perf_counter()
        if reuse_cached_request:
            request = client.refresh_request()
        else:
            request = client.prepare_request()
        t1 = time.perf_counter()
        self.transport.send(request, sender=su_id, receiver="sdc")

        sign_request = self.sdc.start_request(request)
        t2 = time.perf_counter()
        self.transport.send(sign_request, sender="sdc", receiver="stp")

        sign_response = self.stp.handle_sign_extraction(sign_request)
        t3 = time.perf_counter()
        self.transport.send(sign_response, sender="stp", receiver="sdc")

        response = self.sdc.finish_request(sign_response)
        t4 = time.perf_counter()
        self.transport.send(response, sender="sdc", receiver=su_id)

        outcome = client.process_response(response, self.stp.directory)
        t5 = time.perf_counter()

        return RoundReport(
            su_id=su_id,
            granted=outcome.granted,
            outcome=outcome,
            timings=RoundTimings(
                request_preparation=t1 - t0,
                sdc_phase1=t2 - t1,
                stp_conversion=t3 - t2,
                sdc_phase2=t4 - t3,
                su_decryption=t5 - t4,
            ),
            request_bytes=request.wire_size(),
            sign_extraction_bytes=sign_request.wire_size(),
            conversion_bytes=sign_response.wire_size(),
            response_bytes=response.wire_size(),
        )


def small_demo(seed: int = 0) -> RoundReport:
    """A complete tiny PISA round — the library's quickstart entry point.

    Builds a 4x6-block scenario, enrols its PUs and one SU with small
    (insecure, fast) keys, and runs one request round.
    """
    from repro.watch.scenario import ScenarioConfig, build_scenario

    scenario = build_scenario(ScenarioConfig(seed=seed))
    rng = DeterministicRandomSource(seed)
    coordinator = PisaCoordinator(scenario.environment, key_bits=256, rng=rng)
    for pu in scenario.pus:
        coordinator.enroll_pu(pu)
    su = scenario.sus[0]
    coordinator.enroll_su(su)
    return coordinator.run_request_round(su.su_id)
