"""Durable state for the PISA servers.

An SDC restart must not lose the encrypted PU state: the budget matrix
is derived from every PU's *latest* update, and PUs only re-send when
they switch channels — after a crash the SDC would otherwise grant
against a budget missing every active receiver (an unsafe failure).

What needs persisting is deliberately small:

* **SDC**: the latest :class:`~repro.pisa.messages.PUUpdateMessage` per
  PU (ciphertexts — the SDC stores nothing it can read).  Pending
  request rounds are *not* persisted: they hold one-time blinding
  factors, and replaying half-finished rounds after a crash is exactly
  the replay surface we refuse; SUs simply re-request.
* **Key directory**: SU public keys and issuer verification keys.

Snapshots are canonical bytes (versioned, self-describing), restored by
replaying updates through the normal ``handle_pu_update`` path so the
incremental aggregate is rebuilt by the same audited code that built it.

Durable copies go through the CRC frame helpers (:func:`frame_payload`
/ :func:`unframe_payload` and the file-level
:func:`write_state_file` / :func:`read_state_file`): a truncated or
bit-flipped file surfaces as a typed
:class:`~repro.errors.IntegrityError` instead of garbage state.  The
write-ahead epoch journal (:mod:`repro.resilience.journal`) frames its
records with the same helpers, so one decoder audits both formats.
"""

from __future__ import annotations

import os
import zlib

from repro.crypto.paillier import PaillierPublicKey
from repro.crypto.serialization import (
    decode_bytes,
    decode_int,
    decode_public_key,
    encode_bytes,
    encode_int,
    encode_public_key,
)
from repro.crypto.signatures import RsaPublicKey
from repro.errors import IntegrityError, SerializationError
from repro.pisa.keys import KeyDirectory
from repro.pisa.messages import PUUpdateMessage

__all__ = [
    "serialize_sdc_state",
    "restore_sdc_state",
    "serialize_shard_state",
    "restore_shard_state",
    "serialize_directory",
    "restore_directory",
    "frame_payload",
    "unframe_payload",
    "write_state_file",
    "read_state_file",
]

_SDC_MAGIC = b"PISA-SDC-STATE-v1"
_SHARD_MAGIC = b"PISA-SHARD-STATE-v1"
_DIR_MAGIC = b"PISA-DIRECTORY-v1"

#: Two-byte marker opening every CRC frame.
FRAME_MAGIC = b"PF"
#: Fixed framing overhead: magic + 4-byte length prefix + 4-byte CRC32.
FRAME_OVERHEAD = len(FRAME_MAGIC) + 4 + 4

_STATE_FILE_MAGIC = b"PISA-STATE-FILE-v1\n"


def frame_payload(payload: bytes) -> bytes:
    """Wrap ``payload`` in a self-checking frame: magic, length, CRC32."""
    return (
        FRAME_MAGIC
        + encode_bytes(payload)
        + zlib.crc32(payload).to_bytes(4, "big")
    )


def unframe_payload(buffer: bytes, offset: int = 0) -> tuple[bytes, int]:
    """Decode one frame at ``offset``; returns ``(payload, next_offset)``.

    Raises :class:`~repro.errors.IntegrityError` on a wrong magic, a
    truncated frame, or a CRC mismatch — the caller never sees partial
    or corrupted payload bytes.
    """
    end_magic = offset + len(FRAME_MAGIC)
    if buffer[offset:end_magic] != FRAME_MAGIC:
        raise IntegrityError(f"bad frame magic at offset {offset}")
    try:
        payload, offset = decode_bytes(buffer, end_magic)
    except SerializationError as exc:
        raise IntegrityError(f"truncated frame: {exc}") from exc
    if offset + 4 > len(buffer):
        raise IntegrityError("truncated frame checksum")
    expected = int.from_bytes(buffer[offset : offset + 4], "big")
    if zlib.crc32(payload) != expected:
        raise IntegrityError("frame checksum mismatch")
    return payload, offset + 4


def write_state_file(path, blob: bytes) -> None:
    """Durably write one snapshot blob as a CRC-framed file.

    Written to a sibling temp file, fsynced, then renamed into place, so
    a crash mid-write leaves either the old file or the new one — never
    a torn hybrid.
    """
    path = os.fspath(path)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_STATE_FILE_MAGIC + frame_payload(blob))
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


def read_state_file(path) -> bytes:
    """Read a snapshot blob written by :func:`write_state_file`.

    Raises :class:`~repro.errors.IntegrityError` when the file is
    truncated, corrupted, or not a state file at all.
    """
    with open(os.fspath(path), "rb") as fh:
        raw = fh.read()
    if not raw.startswith(_STATE_FILE_MAGIC):
        raise IntegrityError("not a PISA state file")
    blob, offset = unframe_payload(raw, len(_STATE_FILE_MAGIC))
    if offset != len(raw):
        raise IntegrityError("trailing bytes after state frame")
    return blob


def _decode_str(buffer: bytes, offset: int) -> tuple[str, int]:
    """Decode a UTF-8 string field; corruption raises a typed error."""
    raw, offset = decode_bytes(buffer, offset)
    try:
        return raw.decode("utf-8"), offset
    except UnicodeDecodeError as exc:
        raise SerializationError(f"corrupt string field: {exc}") from exc


def serialize_sdc_state(sdc) -> bytes:
    """Snapshot an SDC's durable state (latest update per PU)."""
    parts = [_SDC_MAGIC, encode_int(len(sdc._pu_updates))]
    for pu_id, (block_index, ciphertexts) in sorted(sdc._pu_updates.items()):
        message = PUUpdateMessage(
            pu_id=pu_id, block_index=block_index, ciphertexts=ciphertexts
        )
        parts.append(encode_bytes(message.to_bytes()))
    return b"".join(parts)


def restore_sdc_state(sdc, blob: bytes) -> int:
    """Replay a snapshot into a freshly constructed SDC.

    The SDC must be empty (no PU updates yet) and share the original's
    environment and group key.  Returns the number of PUs restored.
    """
    if sdc._pu_updates:
        raise SerializationError("restore target already holds PU state")
    if not blob.startswith(_SDC_MAGIC):
        raise SerializationError("not a v1 SDC snapshot")
    count, offset = decode_int(blob, len(_SDC_MAGIC))
    group_key = sdc.group_public_key
    for _ in range(count):
        raw, offset = decode_bytes(blob, offset)
        sdc.handle_pu_update(PUUpdateMessage.from_bytes(raw, group_key))
    if offset != len(blob):
        raise SerializationError("trailing bytes in SDC snapshot")
    return count


def serialize_shard_state(shard) -> bytes:
    """Snapshot one SDC shard: identity, committed epoch, blocks, PU state.

    Taken at epoch commit, this is everything a promoted replica needs to
    resume serving the shard's block partition from the last committed
    epoch: the ownership set (so routing agrees with the ring) and the
    latest encrypted update per PU (ciphertexts only — a snapshot leaks
    no more than the shard it describes).
    """
    parts = [
        _SHARD_MAGIC,
        encode_bytes(shard.shard_id.encode("utf-8")),
        # Epochs start at −1 (nothing committed); store shifted by one
        # because the wire integers are non-negative.
        encode_int(shard.last_committed_epoch + 1),
    ]
    blocks = shard.blocks
    parts.append(encode_int(len(blocks)))
    parts.extend(encode_int(block) for block in blocks)
    updates = shard.pu_update_messages()
    parts.append(encode_int(len(updates)))
    parts.extend(encode_bytes(message.to_bytes()) for message in updates)
    return b"".join(parts)


def restore_shard_state(shard, blob: bytes) -> int:
    """Replay a shard snapshot into a freshly constructed, empty shard.

    The target must share the original's environment and group key and
    hold no PU state yet; block ownership is *replaced* by the
    snapshot's.  Returns the restored ``last_committed_epoch``.
    """
    if shard.num_tracked_pus:
        raise SerializationError("restore target already holds PU state")
    if not blob.startswith(_SHARD_MAGIC):
        raise SerializationError("not a v1 shard snapshot")
    shard_id, offset = _decode_str(blob, len(_SHARD_MAGIC))
    if shard_id != shard.shard_id:
        raise SerializationError(
            f"snapshot is for shard {shard_id!r}, not {shard.shard_id!r}"
        )
    epoch_plus_one, offset = decode_int(blob, offset)
    block_count, offset = decode_int(blob, offset)
    blocks = []
    for _ in range(block_count):
        block, offset = decode_int(blob, offset)
        blocks.append(block)
    shard.release_blocks(shard.blocks)
    shard.assign_blocks(tuple(blocks))
    update_count, offset = decode_int(blob, offset)
    group_key = shard.group_public_key
    for _ in range(update_count):
        raw, offset = decode_bytes(blob, offset)
        shard.handle_pu_update(PUUpdateMessage.from_bytes(raw, group_key))
    if offset != len(blob):
        raise SerializationError("trailing bytes in shard snapshot")
    epoch = epoch_plus_one - 1
    if epoch > shard.last_committed_epoch:
        shard.commit_epoch(epoch)
    return epoch


def serialize_directory(directory: KeyDirectory) -> bytes:
    """Snapshot the public key directory (group, SU, and issuer keys)."""
    parts = [
        _DIR_MAGIC,
        encode_bytes(encode_public_key(directory.group_public_key)),
        encode_int(len(directory._su_keys)),
    ]
    for su_id, public_key in sorted(directory._su_keys.items()):
        parts.append(encode_bytes(su_id.encode("utf-8")))
        parts.append(encode_bytes(encode_public_key(public_key)))
    parts.append(encode_int(len(directory._signing_keys)))
    for issuer_id, key in sorted(directory._signing_keys.items()):
        parts.append(encode_bytes(issuer_id.encode("utf-8")))
        parts.append(encode_int(key.n))
        parts.append(encode_int(key.e))
    return b"".join(parts)


def restore_directory(blob: bytes) -> KeyDirectory:
    """Rebuild a key directory from a snapshot."""
    if not blob.startswith(_DIR_MAGIC):
        raise SerializationError("not a v1 directory snapshot")
    offset = len(_DIR_MAGIC)
    group_raw, offset = decode_bytes(blob, offset)
    directory = KeyDirectory(decode_public_key(group_raw))
    su_count, offset = decode_int(blob, offset)
    for _ in range(su_count):
        su_id, offset = _decode_str(blob, offset)
        key_raw, offset = decode_bytes(blob, offset)
        directory.register_su_key(su_id, decode_public_key(key_raw))
    issuer_count, offset = decode_int(blob, offset)
    for _ in range(issuer_count):
        issuer_id, offset = _decode_str(blob, offset)
        n, offset = decode_int(blob, offset)
        e, offset = decode_int(blob, offset)
        directory.register_signing_key(issuer_id, RsaPublicKey(n=n, e=e))
    if offset != len(blob):
        raise SerializationError("trailing bytes in directory snapshot")
    return directory
