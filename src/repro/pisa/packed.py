"""Packed-request PISA — a throughput extension using slot packing.

Figure 6's dominant costs are per-cell Paillier operations: 60 000
encryptions to prepare a request, 60 000 decrypt+encrypt pairs at the
STP.  With :mod:`repro.crypto.packing` the request carries ``k`` cells
per ciphertext (``k ≈ 12`` at the paper's 2048-bit key with 64-bit
blinding), dividing exactly those costs by ``k``:

* the SU packs each channel row of ``F`` into ``⌈B'/k⌉`` chunks and
  encrypts one ciphertext per chunk;
* the SDC evaluates eqs. (10)-(12) *slot-parallel*: one small-scalar
  multiplication applies ``Δ_SINR + Δ_redn`` to every slot at once, the
  public ``E`` terms arrive as one packed plaintext addition, and PU
  contributions are shifted into their slot (``2^{iW} ⊗ W̃``);
* blinding (eq. (14)) uses one shared ``α`` per chunk and independent
  per-slot ``β_i``, applied as a single packed plaintext addition;
* the STP decrypts one ciphertext per chunk, extracts ``k`` signs, and
  returns them as one packed ciphertext under the SU's key;
* eq. (16)/(17) work on packed 0/−2 gadget slots: the homomorphic *sum
  of chunks* is the zero plaintext exactly when every slot of every
  chunk grants, so the license perturbation needs no unpacking.

Privacy trade-off (stated honestly)
-----------------------------------
The per-cell sign coin ``ε`` of eq. (14) cannot be applied per slot —
a scalar multiplies all slots alike, and a whole-chunk flip is visible
to the STP (the packed total's sign reveals it).  Packed mode therefore
**does** let the STP see the per-slot sign pattern of each chunk.  Two
mitigations are built in:

1. the SDC shuffles chunk order with a secret permutation, so the STP
   cannot map a chunk to (channel, block) coordinates; and
2. the SDC injects *dummy chunks* with uniformly random slot signs,
   diluting the violation counts the STP could tally.

What the STP learns is thus an anonymised, dummy-diluted multiset of
k-slot sign patterns — strictly more than the baseline's nothing, in
exchange for a ``k``x cost cut.  Deployments choose per SU; the
baseline protocol remains the default.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.crypto.packing import SlotLayout
from repro.crypto.paillier import (
    EncryptedNumber,
    ObfuscatorPool,
    PaillierPublicKey,
    hom_sum,
)
from repro.crypto.parallel import Executor, default_executor
from repro.crypto.rand import RandomSource, default_rng
from repro.crypto.serialization import encode_bytes, encode_ciphertext, encode_int
from repro.errors import BlindingError, ProtocolError, SerializationError
from repro.pisa.keys import KeyDirectory
from repro.pisa.license import TransmissionLicense
from repro.pisa.messages import LicenseResponse, PUUpdateMessage
from repro.watch.environment import SpectrumEnvironment

__all__ = [
    "PackedProtocolConfig",
    "PackedRequestMessage",
    "PackedSignExtractionRequest",
    "PackedSignExtractionResponse",
    "PackedSuClient",
    "PackedSdcServer",
    "PackedStpServer",
]


@dataclass(frozen=True)
class PackedProtocolConfig:
    """Shared packed-mode parameters (part of the public protocol spec).

    ``alpha_bits`` is deliberately smaller than the baseline's 100 —
    slot width is ``indicator_bits + alpha_bits + headroom`` and every
    bit of α costs slot capacity.  ``dummy_fraction`` is the ratio of
    dummy chunks injected per request for count dilution.
    """

    alpha_bits: int = 64
    headroom_bits: int = 4
    dummy_fraction: float = 0.25

    def indicator_bits(self, environment: SpectrumEnvironment) -> int:
        params = environment.params
        bound = (1 << params.value_bits) * (params.sinr_plus_redn_int + 1)
        return bound.bit_length() + 1

    def layout(
        self, public_key: PaillierPublicKey, environment: SpectrumEnvironment
    ) -> SlotLayout:
        """The slot geometry every party derives identically."""
        layout = SlotLayout.for_key(
            public_key,
            value_bits=self.indicator_bits(environment),
            scale_bits=self.alpha_bits,
            headroom_bits=self.headroom_bits,
        )
        if self.alpha_bits < 16:
            raise BlindingError("packed alpha_bits too small to blind magnitudes")
        return layout


# -- messages ---------------------------------------------------------------


def _encode_chunk_list(chunks) -> bytes:
    parts = [encode_int(len(chunks))]
    parts.extend(encode_ciphertext(ct) for ct in chunks)
    return b"".join(parts)


@dataclass(frozen=True)
class PackedRequestMessage:
    """SU → SDC: ``C`` rows of packed ``F`` chunks."""

    su_id: str
    region_blocks: tuple[int, ...]
    rows: tuple[tuple[EncryptedNumber, ...], ...]  # C × ⌈B'/k⌉

    def to_bytes(self) -> bytes:
        parts = [encode_bytes(self.su_id.encode("utf-8")),
                 encode_int(len(self.region_blocks))]
        parts.extend(encode_int(b) for b in self.region_blocks)
        parts.append(encode_int(len(self.rows)))
        parts.extend(_encode_chunk_list(row) for row in self.rows)
        return b"".join(parts)

    def wire_size(self) -> int:
        return len(self.to_bytes())

    def digest_bytes(self) -> bytes:
        return self.to_bytes()


@dataclass(frozen=True)
class PackedSignExtractionRequest:
    """SDC → STP: shuffled, dummy-diluted packed blinded chunks."""

    round_id: str
    su_id: str
    chunks: tuple[EncryptedNumber, ...]

    def to_bytes(self) -> bytes:
        return b"".join([
            encode_bytes(self.round_id.encode("utf-8")),
            encode_bytes(self.su_id.encode("utf-8")),
            _encode_chunk_list(self.chunks),
        ])

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class PackedSignExtractionResponse:
    """STP → SDC: packed ``X_i + 1`` slots under the SU's key."""

    round_id: str
    su_id: str
    chunks: tuple[EncryptedNumber, ...]

    def to_bytes(self) -> bytes:
        return b"".join([
            encode_bytes(self.round_id.encode("utf-8")),
            encode_bytes(self.su_id.encode("utf-8")),
            _encode_chunk_list(self.chunks),
        ])

    def wire_size(self) -> int:
        return len(self.to_bytes())


# -- SU client -----------------------------------------------------------------


class PackedSuClient:
    """SU-side packed request preparation and response handling."""

    def __init__(
        self,
        su,
        environment: SpectrumEnvironment,
        group_public_key: PaillierPublicKey,
        keypair,
        config: PackedProtocolConfig | None = None,
        region=None,
        rng: RandomSource | None = None,
    ) -> None:
        from repro.geo.region import PrivacyRegion

        self.su = su
        self.environment = environment
        self.group_public_key = group_public_key
        self.keypair = keypair
        self.config = config or PackedProtocolConfig()
        self.region = region if region is not None else PrivacyRegion.full(
            environment.grid
        )
        self._rng = default_rng(rng)
        self.layout = self.config.layout(group_public_key, environment)
        self._cached_request: PackedRequestMessage | None = None
        self._obfuscators = ObfuscatorPool(group_public_key, rng=self._rng)
        if not self.region.contains(su.block_index):
            raise ProtocolError("the disclosed region must contain the SU's block")

    @property
    def su_id(self) -> str:
        return self.su.su_id

    @property
    def public_key(self) -> PaillierPublicKey:
        return self.keypair.public_key

    def prepare_request(self) -> PackedRequestMessage:
        """Eq. (5), packed: one encryption per k-cell chunk."""
        from repro.watch.matrices import su_request_matrix

        env = self.environment
        f_matrix = su_request_matrix(
            self.su,
            env.grid,
            env.params,
            pathloss_for_channel=lambda c: env.su_pathloss_for(self.su, c),
            exclusion_distance_for_channel=env.exclusion_distance,
            region=self.region,
        )
        blocks = tuple(self.region.sorted_indices())
        rows = []
        for c in range(env.num_channels):
            values = [int(f_matrix[c, b]) for b in blocks]
            chunks = tuple(
                self.group_public_key.encrypt(self.layout.pack(chunk), rng=self._rng)
                for chunk in self.layout.chunks(values)
            )
            rows.append(chunks)
        self._cached_request = PackedRequestMessage(
            su_id=self.su.su_id, region_blocks=blocks, rows=tuple(rows)
        )
        return self._cached_request

    def precompute_refresh_material(self, rounds: int = 1, executor=None) -> None:
        """Stock ``r**n`` factors for cheap packed-request refreshes."""
        if self._cached_request is None:
            raise ProtocolError("no cached request; call prepare_request first")
        chunks = sum(len(row) for row in self._cached_request.rows)
        self._obfuscators.ensure(rounds * chunks, executor=executor)

    def refresh_request(self) -> PackedRequestMessage:
        """Re-randomise the cached packed request (one multiply per chunk).

        Packing makes this even cheaper than the baseline fast path:
        the §VI-A refresh touches ⌈B'/k⌉ chunks instead of B' cells.
        """
        if self._cached_request is None:
            raise ProtocolError("no cached request; call prepare_request first")
        refreshed = tuple(
            tuple(ct.rerandomize_with(self._obfuscators.take()) for ct in row)
            for row in self._cached_request.rows
        )
        self._cached_request = PackedRequestMessage(
            su_id=self._cached_request.su_id,
            region_blocks=self._cached_request.region_blocks,
            rows=refreshed,
        )
        return self._cached_request

    def process_response(self, response: LicenseResponse, directory: KeyDirectory):
        """Identical to the baseline: decrypt G̃, verify the signature."""
        from repro.crypto.signatures import RsaFdhVerifier
        from repro.pisa.su_client import RequestOutcome

        license_body = response.license
        if license_body.su_id != self.su.su_id:
            raise ProtocolError("license issued to a different SU")
        if self._cached_request is not None:
            expected = TransmissionLicense.digest_of(
                self._cached_request.digest_bytes()
            )
            if license_body.request_digest != expected:
                raise ProtocolError("license does not commit to our request")
        decrypted = self.keypair.private_key.raw_decrypt(
            response.encrypted_signature.ciphertext
        )
        verifier = RsaFdhVerifier(directory.signing_key(license_body.issuer_id))
        return RequestOutcome(
            granted=license_body.verify(verifier, decrypted),
            license=license_body,
            decrypted_value=decrypted,
        )


# -- SDC ------------------------------------------------------------------------


@dataclass
class _PendingPackedRound:
    round_id: str
    su_id: str
    #: Positions of the real chunks inside the shuffled message.
    real_positions: tuple[int, ...]
    #: Per real chunk: number of used slots.
    used_slots: tuple[int, ...]
    request_digest: bytes
    channels: tuple[int, ...]


class PackedSdcServer:
    """The SDC's packed-mode engine.

    PU updates are handled exactly as in the baseline (per-cell W̃
    ciphertexts folded into ``_w_sum``); only SU request processing is
    slot-parallel.
    """

    def __init__(
        self,
        environment: SpectrumEnvironment,
        directory: KeyDirectory,
        signer,
        config: PackedProtocolConfig | None = None,
        issuer_id: str = "sdc",
        rng: RandomSource | None = None,
        clock=None,
        executor: Executor | None = None,
    ) -> None:
        import time

        self.environment = environment
        self.directory = directory
        self.signer = signer
        self.config = config or PackedProtocolConfig()
        self.issuer_id = issuer_id
        self._rng = default_rng(rng)
        self._executor = default_executor(executor)
        self._clock = clock or time.time
        self.layout = self.config.layout(directory.group_public_key, environment)
        self._w_sum: dict[tuple[int, int], EncryptedNumber] = {}
        self._pu_updates: dict[str, tuple[int, tuple[EncryptedNumber, ...]]] = {}
        self._pending: dict[str, _PendingPackedRound] = {}
        self._round_counter = itertools.count()
        self.chunks_processed = 0
        directory.register_signing_key(issuer_id, signer.public_key)

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self.directory.group_public_key

    # PU updates: identical mechanics to the baseline SDC.
    def handle_pu_update(self, message: PUUpdateMessage) -> None:
        env = self.environment
        if len(message.ciphertexts) != env.num_channels:
            raise ProtocolError("PU update must carry one ciphertext per channel")
        previous = self._pu_updates.get(message.pu_id)
        if previous is not None:
            old_block, old_cts = previous
            for c, old_ct in enumerate(old_cts):
                cell = (c, old_block)
                self._w_sum[cell] = self._w_sum[cell].subtract(old_ct)
        for c, ct in enumerate(message.ciphertexts):
            cell = (c, message.block_index)
            self._w_sum[cell] = (
                self._w_sum[cell].add(ct) if cell in self._w_sum else ct
            )
        self._pu_updates[message.pu_id] = (message.block_index, message.ciphertexts)

    # -- packed request processing -------------------------------------------

    def _indicator_chunk(
        self, f_chunk: EncryptedNumber, channel: int, blocks: list[int]
    ) -> EncryptedNumber:
        """Slot-parallel eqs. (10)-(12) for one chunk (no randomness)."""
        env = self.environment
        layout = self.layout
        x_int = env.params.sinr_plus_redn_int
        # R slots: X · F_i  (one scalar multiplication for all slots).
        r_ct = f_chunk.scalar_mul(x_int)
        # I slots: E_i − X·F_i (+ W_i below).
        e_packed = layout.pack(
            [int(env.e_matrix[channel, b]) for b in blocks]
        )
        indicator = r_ct.scalar_mul(-1).add_plain(e_packed)
        for slot, block in enumerate(blocks):
            w_ct = self._w_sum.get((channel, block))
            if w_ct is not None:
                indicator = indicator.add(w_ct.scalar_mul(layout.shift(slot)))
        return indicator

    def _draw_chunk_blinding(self, blocks: list[int]) -> tuple[int, int]:
        """Eq. (14), packed: shared α per chunk plus per-slot bias terms.

        Returns ``(alpha, packed_bias)``; the half-slot bias keeps every
        final slot non-negative.
        """
        layout = self.layout
        alpha = self._rng.randrange(1 << (self.config.alpha_bits - 1),
                                    1 << self.config.alpha_bits)
        bias_terms = [
            layout.half_slot - self._rng.randrange(1, 1 << (self.config.alpha_bits - 1))
            for _ in blocks
        ]
        return alpha, layout.pack(bias_terms)

    def _draw_dummy_chunk(self) -> tuple[int, int]:
        """Random slots + encryption nonce for one dummy chunk."""
        packed = self.layout.pack([
            self._rng.randbelow(self.layout.slot_modulus)
            for _ in range(self.layout.num_slots)
        ])
        return packed, self.group_public_key.random_r(self._rng)

    def start_request(
        self, request: PackedRequestMessage, span=None
    ) -> PackedSignExtractionRequest:
        env = self.environment
        if span is not None:
            span.set_attribute("blocks", len(request.region_blocks))
        if len(request.rows) != env.num_channels:
            raise ProtocolError("request must carry one row per channel")
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has no registered key")
        layout = self.layout
        block_chunks = layout.chunks(list(request.region_blocks))
        pk = self.group_public_key
        # Pass 1: indicators + all randomness in chunk order (so results
        # are byte-identical whichever executor runs pass 2).
        prepared: list[tuple[EncryptedNumber, int, int]] = []
        used_slots: list[int] = []
        for c, row in enumerate(request.rows):
            if len(row) != len(block_chunks):
                raise ProtocolError("row chunk count does not match the region")
            for f_chunk, blocks in zip(row, block_chunks):
                if f_chunk.public_key != pk:
                    raise ProtocolError("request chunk not under the group key")
                indicator = self._indicator_chunk(f_chunk, c, blocks)
                alpha, packed_bias = self._draw_chunk_blinding(blocks)
                prepared.append((indicator, alpha, packed_bias))
                used_slots.append(len(blocks))
        self.chunks_processed += len(prepared)
        num_dummies = max(1, int(len(prepared) * self.config.dummy_fraction))
        dummy_draws = [self._draw_dummy_chunk() for _ in range(num_dummies)]
        # Pass 2: batch the α exponentiations and dummy obfuscators.
        jobs = [(indicator.ciphertext, alpha, pk.n_sq)
                for indicator, alpha, _ in prepared]
        jobs.extend(pk.obfuscator_job(r) for _, r in dummy_draws)
        powers = iter(self._executor.pow_many(jobs))
        real_chunks = [
            EncryptedNumber(pk, next(powers)).add_plain(packed_bias)
            for _, _, packed_bias in prepared
        ]
        dummies = [
            pk.encrypt_with_obfuscator(packed, next(powers))
            for (packed, _) in dummy_draws
        ]
        # Dummy dilution + secret shuffle.
        total = len(real_chunks) + num_dummies
        positions = list(range(total))
        self._shuffle(positions)
        shuffled: list[EncryptedNumber | None] = [None] * total
        real_positions = positions[: len(real_chunks)]
        for chunk, position in zip(real_chunks, real_positions):
            shuffled[position] = chunk
        for dummy, position in zip(dummies, positions[len(real_chunks):]):
            shuffled[position] = dummy
        round_id = f"packed-round-{next(self._round_counter)}"
        self._pending[round_id] = _PendingPackedRound(
            round_id=round_id,
            su_id=request.su_id,
            real_positions=tuple(real_positions),
            used_slots=tuple(used_slots),
            request_digest=TransmissionLicense.digest_of(request.digest_bytes()),
            channels=tuple(range(env.num_channels)),
        )
        return PackedSignExtractionRequest(
            round_id=round_id, su_id=request.su_id, chunks=tuple(shuffled)
        )

    def finish_request(
        self, response: PackedSignExtractionResponse, span=None
    ) -> LicenseResponse:
        pending = self._pending.get(response.round_id)
        if pending is None:
            raise ProtocolError(f"unknown round {response.round_id!r}")
        if response.su_id != pending.su_id:
            raise ProtocolError("response for the wrong SU")
        su_key = self.directory.su_key(pending.su_id)
        for ct in response.chunks:
            if ct.public_key != su_key:
                raise ProtocolError("converted chunk not under the SU's key")
        if len(response.chunks) <= max(pending.real_positions, default=0):
            raise ProtocolError("response chunk count mismatch")
        del self._pending[response.round_id]
        layout = self.layout
        # Q chunks: slots (X_i + 1) − 2 = X_i − 1 ∈ {0, −2} on used slots.
        q_chunks = []
        for position, used in zip(pending.real_positions, pending.used_slots):
            x_chunk = response.chunks[position]
            q_chunks.append(x_chunk.add_plain(-layout.pack([2] * used)))
        license_body = TransmissionLicense(
            su_id=pending.su_id,
            issuer_id=self.issuer_id,
            request_digest=pending.request_digest,
            channels=pending.channels,
            issued_at=int(self._clock()),
        )
        signature = license_body.sign(self.signer, max_value=su_key.n)
        encrypted_signature = EncryptedNumber(
            su_key, su_key.raw_encrypt(signature, rng=self._rng)
        )
        eta = self._rng.randrange(1 << 63, 1 << 64)
        g_ct = encrypted_signature.add(hom_sum(q_chunks).scalar_mul(eta))
        return LicenseResponse(license=license_body, encrypted_signature=g_ct)

    def _shuffle(self, items: list) -> None:
        for i in range(len(items) - 1, 0, -1):
            j = self._rng.randbelow(i + 1)
            items[i], items[j] = items[j], items[i]


# -- STP --------------------------------------------------------------------------


class PackedStpServer:
    """The STP's packed conversion: one decrypt + one encrypt per chunk."""

    def __init__(
        self,
        group_keypair,
        environment: SpectrumEnvironment,
        config: PackedProtocolConfig | None = None,
        rng: RandomSource | None = None,
        executor: Executor | None = None,
    ) -> None:
        self._keypair = group_keypair
        self.directory = KeyDirectory(group_keypair.public_key)
        self.config = config or PackedProtocolConfig()
        self.layout = self.config.layout(group_keypair.public_key, environment)
        self._rng = default_rng(rng)
        self._executor = default_executor(executor)
        self.chunks_converted = 0

    @property
    def group_public_key(self) -> PaillierPublicKey:
        return self._keypair.public_key

    def register_su(self, su_id: str, public_key: PaillierPublicKey) -> None:
        self.directory.register_su_key(su_id, public_key)

    def handle_sign_extraction(
        self, request: PackedSignExtractionRequest, span=None
    ) -> PackedSignExtractionResponse:
        if span is not None:
            span.set_attribute("chunks", len(request.chunks))
        if not self.directory.has_su_key(request.su_id):
            raise ProtocolError(f"SU {request.su_id!r} has not registered a key")
        su_key = self.directory.su_key(request.su_id)
        layout = self.layout
        sk = self._keypair.private_key
        # Batch the chunk decryptions (two CRT halves each) and the
        # response obfuscators through the executor.
        jobs = []
        for chunk in request.chunks:
            if chunk.public_key != self.group_public_key:
                raise ProtocolError("chunk not under the group key")
            jobs.extend(sk.decrypt_pow_jobs(chunk.ciphertext))
            jobs.append(su_key.obfuscator_job(su_key.random_r(self._rng)))
        powers = iter(self._executor.pow_many(jobs))
        converted = []
        for chunk in request.chunks:
            packed = sk.raw_decrypt_from_pows(next(powers), next(powers))
            slots = layout.unpack(packed)
            # eq. (15) per slot, stored as X_i + 1 ∈ {0, 2} to keep the
            # packed plaintext non-negative.
            signs = [
                2 if slot - layout.half_slot > 0 else 0 for slot in slots
            ]
            converted.append(
                su_key.encrypt_with_obfuscator(layout.pack(signs), next(powers))
            )
            self.chunks_converted += 1
        return PackedSignExtractionResponse(
            round_id=request.round_id, su_id=request.su_id, chunks=tuple(converted)
        )


class PackedCoordinator:
    """Deploys and drives packed-mode PISA end to end."""

    def __init__(
        self,
        environment: SpectrumEnvironment,
        key_bits: int = 2048,
        signature_bits: int | None = None,
        config: PackedProtocolConfig | None = None,
        rng: RandomSource | None = None,
        transport=None,
        executor: Executor | None = None,
        clock=None,
    ) -> None:
        from repro.crypto.paillier import generate_keypair
        from repro.crypto.signatures import RsaFdhSigner, generate_rsa_keypair
        from repro.net.transport import InMemoryTransport

        if signature_bits is None:
            signature_bits = max(32, key_bits // 2)
        if signature_bits >= key_bits:
            raise ProtocolError(
                "signature modulus must be smaller than the Paillier modulus"
            )
        self.environment = environment
        self.key_bits = key_bits
        self.config = config or PackedProtocolConfig()
        self._rng = default_rng(rng)
        self.transport = transport if transport is not None else InMemoryTransport()

        group_keypair = generate_keypair(key_bits, rng=self._rng)
        self.stp = PackedStpServer(
            group_keypair, environment, config=self.config, rng=self._rng,
            executor=executor,
        )
        _, signing_private = generate_rsa_keypair(signature_bits, rng=self._rng)
        self.sdc = PackedSdcServer(
            environment,
            directory=self.stp.directory,
            signer=RsaFdhSigner(signing_private),
            config=self.config,
            rng=self._rng,
            clock=clock,
            executor=executor,
        )
        self._pu_clients = {}
        self._su_clients: dict[str, PackedSuClient] = {}

    @property
    def layout(self) -> SlotLayout:
        return self.sdc.layout

    def enroll_pu(self, pu):
        from repro.pisa.pu_client import PUClient

        client = PUClient(
            pu, self.environment, self.stp.group_public_key, rng=self._rng
        )
        self._pu_clients[pu.receiver_id] = client
        update = client.build_update()
        self.transport.send(update, sender=pu.receiver_id, receiver="sdc")
        self.sdc.handle_pu_update(update)
        return client

    def enroll_su(self, su, region=None, keypair=None) -> PackedSuClient:
        from repro.crypto.paillier import generate_keypair

        keypair = keypair or generate_keypair(self.key_bits, rng=self._rng)
        client = PackedSuClient(
            su,
            self.environment,
            self.stp.group_public_key,
            keypair,
            config=self.config,
            region=region,
            rng=self._rng,
        )
        self.stp.register_su(su.su_id, client.public_key)
        self._su_clients[su.su_id] = client
        return client

    def su_client(self, su_id: str) -> PackedSuClient:
        return self._su_clients[su_id]

    def run_request_round(self, su_id: str, reuse_cached_request: bool = False):
        """One packed Figure 5 round; returns a baseline-shaped report."""
        from time import perf_counter as now

        from repro.pisa.protocol import RoundReport, RoundTimings

        client = self._su_clients[su_id]
        t0 = now()
        request = (
            client.refresh_request() if reuse_cached_request
            else client.prepare_request()
        )
        t1 = now()
        self.transport.send(request, sender=su_id, receiver="sdc")

        extraction = self.sdc.start_request(request)
        t2 = now()
        self.transport.send(extraction, sender="sdc", receiver="stp")

        conversion = self.stp.handle_sign_extraction(extraction)
        t3 = now()
        self.transport.send(conversion, sender="stp", receiver="sdc")

        response = self.sdc.finish_request(conversion)
        t4 = now()
        self.transport.send(response, sender="sdc", receiver=su_id)

        outcome = client.process_response(response, self.stp.directory)
        t5 = now()
        return RoundReport(
            su_id=su_id,
            granted=outcome.granted,
            outcome=outcome,
            timings=RoundTimings(
                request_preparation=t1 - t0,
                sdc_phase1=t2 - t1,
                stp_conversion=t3 - t2,
                sdc_phase2=t4 - t3,
                su_decryption=t5 - t4,
            ),
            request_bytes=request.wire_size(),
            sign_extraction_bytes=extraction.wire_size(),
            conversion_bytes=conversion.wire_size(),
            response_bytes=response.wire_size(),
        )


__all__.append("PackedCoordinator")
