"""Typed PISA protocol messages with byte-exact wire encodings.

Five message types cover the two flows of Figures 4 and 5:

========================  =======================  ==========================
Message                   Direction                Payload
========================  =======================  ==========================
:class:`PUUpdateMessage`  PU → SDC                 C ciphertexts ``W̃(·, i)``
:class:`SURequestMessage` SU → SDC                 C × B' ciphertexts ``F̃``
:class:`SignExtractionRequest`   SDC → STP         C × B' ciphertexts ``Ṽ``
:class:`SignExtractionResponse`  STP → SDC         C × B' ciphertexts ``X̃``
:class:`LicenseResponse`  SDC → SU                 license + one ciphertext
========================  =======================  ==========================

All ciphertext payloads serialise via
:mod:`repro.crypto.serialization`; ``wire_size()`` is the exact byte
count that the communication-overhead evaluation (§VI-A) accounts.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.crypto.paillier import EncryptedNumber, PaillierPublicKey
from repro.crypto.serialization import (
    decode_bytes,
    decode_ciphertext,
    decode_ciphertext_matrix,
    decode_int,
    encode_bytes,
    encode_ciphertext,
    encode_ciphertext_matrix,
    encode_int,
)
from repro.errors import SerializationError
from repro.pisa.license import TransmissionLicense

__all__ = [
    "PUUpdateMessage",
    "SURequestMessage",
    "SignExtractionRequest",
    "SignExtractionResponse",
    "LicenseResponse",
]


def _encode_str(value: str) -> bytes:
    return encode_bytes(value.encode("utf-8"))


def _decode_str(buffer: bytes, offset: int) -> tuple[str, int]:
    raw, offset = decode_bytes(buffer, offset)
    return raw.decode("utf-8"), offset


@dataclass(frozen=True)
class PUUpdateMessage:
    """Figure 4: a PU's encrypted channel-reception update.

    The PU's *location* (block index) is public/registered (§III-D), so
    it travels in the clear; the per-channel entries ``W̃(c, i)`` are
    ciphertexts under ``pk_G``.  Size grows linearly with the number of
    channels and is independent of the number of blocks — the §VI-A
    "≈0.05 MB" property.
    """

    pu_id: str
    block_index: int
    ciphertexts: tuple[EncryptedNumber, ...]

    def to_bytes(self) -> bytes:
        parts = [_encode_str(self.pu_id), encode_int(self.block_index),
                 encode_int(len(self.ciphertexts))]
        parts.extend(encode_ciphertext(ct) for ct in self.ciphertexts)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buffer: bytes, public_key: PaillierPublicKey) -> "PUUpdateMessage":
        pu_id, offset = _decode_str(buffer, 0)
        block_index, offset = decode_int(buffer, offset)
        count, offset = decode_int(buffer, offset)
        cts = []
        for _ in range(count):
            ct, offset = decode_ciphertext(buffer, public_key, offset)
            cts.append(ct)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in PU update")
        return cls(pu_id=pu_id, block_index=block_index, ciphertexts=tuple(cts))

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class SURequestMessage:
    """Figure 5 step 2: the SU's encrypted transmission request.

    ``matrix[c][k]`` is ``F̃(c, region_blocks[k])`` — C rows over the
    *disclosed* blocks only (the §VI-A privacy/size trade-off; full
    privacy means ``region_blocks`` covers the whole grid).
    """

    su_id: str
    region_blocks: tuple[int, ...]
    matrix: tuple[tuple[EncryptedNumber, ...], ...]

    def __post_init__(self) -> None:
        for row in self.matrix:
            if len(row) != len(self.region_blocks):
                raise SerializationError("request row width != disclosed block count")

    @property
    def num_channels(self) -> int:
        return len(self.matrix)

    def to_bytes(self) -> bytes:
        parts = [_encode_str(self.su_id), encode_int(len(self.region_blocks))]
        parts.extend(encode_int(b) for b in self.region_blocks)
        parts.append(encode_ciphertext_matrix(self.matrix))
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, buffer: bytes, public_key: PaillierPublicKey) -> "SURequestMessage":
        su_id, offset = _decode_str(buffer, 0)
        count, offset = decode_int(buffer, offset)
        blocks = []
        for _ in range(count):
            block, offset = decode_int(buffer, offset)
            blocks.append(block)
        matrix, offset = decode_ciphertext_matrix(buffer, public_key, offset)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in SU request")
        return cls(
            su_id=su_id,
            region_blocks=tuple(blocks),
            matrix=tuple(tuple(row) for row in matrix),
        )

    def wire_size(self) -> int:
        return len(self.to_bytes())

    def digest_bytes(self) -> bytes:
        """The bytes the license's request commitment hashes over."""
        return self.to_bytes()


@dataclass(frozen=True)
class SignExtractionRequest:
    """Figure 5 step 5: blinded indicators ``Ṽ`` forwarded SDC → STP."""

    round_id: str
    su_id: str
    matrix: tuple[tuple[EncryptedNumber, ...], ...]

    def to_bytes(self) -> bytes:
        return b"".join(
            [_encode_str(self.round_id), _encode_str(self.su_id),
             encode_ciphertext_matrix(self.matrix)]
        )

    @classmethod
    def from_bytes(
        cls, buffer: bytes, public_key: PaillierPublicKey
    ) -> "SignExtractionRequest":
        round_id, offset = _decode_str(buffer, 0)
        su_id, offset = _decode_str(buffer, offset)
        matrix, offset = decode_ciphertext_matrix(buffer, public_key, offset)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in sign-extraction request")
        return cls(round_id=round_id, su_id=su_id,
                   matrix=tuple(tuple(row) for row in matrix))

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class SignExtractionResponse:
    """Figure 5 step 8: key-converted signs ``X̃`` under the SU's key."""

    round_id: str
    su_id: str
    matrix: tuple[tuple[EncryptedNumber, ...], ...]

    def to_bytes(self) -> bytes:
        return b"".join(
            [_encode_str(self.round_id), _encode_str(self.su_id),
             encode_ciphertext_matrix(self.matrix)]
        )

    @classmethod
    def from_bytes(
        cls, buffer: bytes, su_public_key: PaillierPublicKey
    ) -> "SignExtractionResponse":
        round_id, offset = _decode_str(buffer, 0)
        su_id, offset = _decode_str(buffer, offset)
        matrix, offset = decode_ciphertext_matrix(buffer, su_public_key, offset)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in sign-extraction response")
        return cls(round_id=round_id, su_id=su_id,
                   matrix=tuple(tuple(row) for row in matrix))

    def wire_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class LicenseResponse:
    """Figure 5 step 11: the license plus ``G̃^{pk_j}`` back to the SU.

    The response is sent whether or not permission is granted; only an
    SU holding ``sk_j`` learns the outcome, by checking whether the
    decrypted value is a valid signature over the license body.  One
    ciphertext ≈ 4.1 kb at n = 2048 — the §VI-A response size.
    """

    license: TransmissionLicense
    encrypted_signature: EncryptedNumber

    def to_bytes(self) -> bytes:
        return b"".join(
            [encode_bytes(self.license.to_bytes()),
             encode_ciphertext(self.encrypted_signature)]
        )

    @classmethod
    def from_bytes(
        cls, buffer: bytes, su_public_key: PaillierPublicKey
    ) -> "LicenseResponse":
        license_raw, offset = decode_bytes(buffer, 0)
        ct, offset = decode_ciphertext(buffer, su_public_key, offset)
        if offset != len(buffer):
            raise SerializationError("trailing bytes in license response")
        return cls(
            license=TransmissionLicense.from_bytes(license_raw),
            encrypted_signature=ct,
        )

    def wire_size(self) -> int:
        return len(self.to_bytes())
