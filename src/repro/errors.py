"""Exception hierarchy for the PISA reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: crypto, protocol, radio, and configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid or unsafe."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyMismatchError(CryptoError):
    """An operation combined values bound to different keys."""


class EncodingRangeError(CryptoError):
    """A plaintext value does not fit the encodable range of the key."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (wrong key or corrupt data)."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class SerializationError(ReproError):
    """A value could not be encoded to or decoded from its wire form."""


class ProtocolError(ReproError):
    """A PISA protocol step received an out-of-order or malformed message."""


class BlindingError(ProtocolError):
    """Blinding factors cannot be generated safely for the configuration."""


class TransportError(ReproError):
    """A modelled network link refused or failed to carry a message."""


class LinkDownError(TransportError):
    """The addressed per-shard channel is failed (injected or modelled)."""


class ClusterError(ReproError):
    """Base class for sharded-SDC-plane (repro.cluster) failures."""


class ShardDownError(ClusterError):
    """A shard (or its replica) is dead and cannot serve the sub-query."""


class MembershipError(ClusterError):
    """A shard join/leave request conflicts with the membership table."""


class AuditError(ReproError):
    """Base class for correctness-tooling (static/runtime audit) failures."""


class SanitizerViolation(AuditError):
    """The runtime protocol sanitizer caught an invalid message in flight."""


class RadioError(ReproError):
    """Base class for radio/propagation-model failures."""


class GridError(ReproError):
    """A block-grid coordinate or region is out of range."""
