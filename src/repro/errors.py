"""Exception hierarchy for the PISA reproduction.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: crypto, protocol, radio, and configuration errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigurationError(ReproError):
    """A parameter combination is invalid or unsafe."""


class CryptoError(ReproError):
    """Base class for cryptographic failures."""


class KeyMismatchError(CryptoError):
    """An operation combined values bound to different keys."""


class EncodingRangeError(CryptoError):
    """A plaintext value does not fit the encodable range of the key."""


class DecryptionError(CryptoError):
    """A ciphertext could not be decrypted (wrong key or corrupt data)."""


class SignatureError(CryptoError):
    """A signature failed to verify or could not be produced."""


class SerializationError(ReproError):
    """A value could not be encoded to or decoded from its wire form."""


class IntegrityError(SerializationError):
    """A CRC-framed blob (snapshot file, journal record) failed its check."""


class ProtocolError(ReproError):
    """A PISA protocol step received an out-of-order or malformed message."""


class BlindingError(ProtocolError):
    """Blinding factors cannot be generated safely for the configuration."""


class TransportError(ReproError):
    """A modelled network link refused or failed to carry a message."""


class LinkDownError(TransportError):
    """The addressed per-shard channel is failed (injected or modelled)."""


class MessageDroppedError(TransportError):
    """An injected fault dropped this message; the link itself is up.

    Transient by construction — a retry of the same send is expected to
    succeed, so the policy engine retries it *without* triggering
    replica failover (unlike :class:`LinkDownError`).
    """


class PortInUseError(TransportError):
    """A socket-plane listener could not bind: the address is taken.

    Not retryable against the same address — the caller must pick
    another port (or kill the squatter), so it is deliberately *not* a
    :class:`LinkDownError` subclass.
    """


class HandshakeTimeoutError(TransportError):
    """A socket-plane peer accepted the connection but never said hello.

    Distinguishes a wedged/foreign listener from a dead one: refused or
    reset connections map to :class:`LinkDownError` (retry → failover),
    while a silent accept times out here and names the peer.
    """


class ClusterError(ReproError):
    """Base class for sharded-SDC-plane (repro.cluster) failures."""


class ShardDownError(ClusterError):
    """A shard (or its replica) is dead and cannot serve the sub-query."""


class MembershipError(ClusterError):
    """A shard join/leave request conflicts with the membership table."""


class FencedError(ClusterError):
    """A request carried a fencing token older than the shard's lease.

    Raised by a shard (in-process or worker subprocess) when a write or
    phase-1/2 sub-query arrives stamped with a token below the highest
    token the shard has observed: the sender is a deposed primary or a
    router that missed a promotion.  Never retryable — retrying cannot
    make a stale lease fresh, and the whole point of fencing is that the
    deposed writer stops immediately.
    """


class AuditError(ReproError):
    """Base class for correctness-tooling (static/runtime audit) failures."""


class SanitizerViolation(AuditError):
    """The runtime protocol sanitizer caught an invalid message in flight."""


class ResilienceError(ReproError):
    """Base class for crash-recovery / fault-handling (repro.resilience)."""


class JournalError(ResilienceError):
    """Base class for write-ahead epoch-journal failures."""


class JournalCorruptError(JournalError):
    """A journal record failed its CRC or framing check (strict read)."""


class JournalDiskFullError(JournalError):
    """The journal device refused an append (modelled or real ENOSPC)."""


class JournalReplayError(JournalError):
    """Replay diverged from the journal (wrong draw width or clock order)."""


class StoreError(ResilienceError):
    """Base class for durable state-store (repro.store) failures."""


class StoreCorruptError(StoreError):
    """A stored frame failed its CRC/framing check (disk-level damage)."""


class CheckpointError(StoreError):
    """A journal checkpoint could not be taken (caller state intact)."""


class TornCheckpointError(JournalCorruptError):
    """Store meta and journal disagree about the last checkpoint.

    Raised by recovery when the journal claims a checkpoint the store
    never committed (or the journal shrank below the consumed count) —
    an ordering no crash point of the checkpoint protocol can produce,
    so it signals external tampering or cross-wired files.  Subclasses
    :class:`JournalCorruptError` so existing corruption handling (the
    chaos harness, ``repro recover``) treats it as journal damage.
    """


class RetryExhaustedError(ResilienceError):
    """A retry budget (wall-clock or attempts) was spent before success."""


class CircuitOpenError(ResilienceError):
    """The circuit breaker is open; the call was refused without trying."""


class ChaosPlanError(ResilienceError):
    """A chaos fault plan is malformed or names an unknown fault."""


class TelemetryError(ReproError):
    """Misuse of the tracing/metrics plane (e.g. secret-named attribute)."""


class RadioError(ReproError):
    """Base class for radio/propagation-model failures."""


class GridError(ReproError):
    """A block-grid coordinate or region is out of range."""
