"""Scatter-gather routing of SDC work across the shard fleet.

The router owns the data path of the cluster: it splits each request's
columns by ring ownership, fans the per-shard sub-queries out on a
thread pool (each shard's exponentiations run in that shard's dedicated
worker process, so the fan-out is genuinely parallel), and gathers the
results.  It also owns the *failure* path: a sub-query that hits a dead
primary (:class:`~repro.errors.ShardDownError`) or a cut wire
(:class:`~repro.errors.LinkDownError`) triggers replica promotion and a
bounded retry against the new primary — at most ``max_attempts`` tries
per sub-query, after which the failure propagates to the caller.

Liveness has two layers: every successful sub-query records a heartbeat
on its replica set, and :meth:`check_liveness` (run by the coordinator
between epochs) proactively promotes any shard whose primary is dead
and whose heartbeat has aged past the replica set's timeout — so a
crashed shard is recovered even when no request happens to land on it.

When a :class:`~repro.net.transport.MultiplexedTransport` is attached,
every sub-query and response is accounted on its own directed
router↔shard link, and failure injection at the transport layer
(``fail_endpoint``) is honoured exactly like a shard crash.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cluster.membership import ClusterMembership
from repro.cluster.replica import ShardReplicaSet
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    ClusterError,
    LinkDownError,
    MessageDroppedError,
    RetryExhaustedError,
    ShardDownError,
)
from repro.net.transport import MultiplexedTransport
from repro.pisa.messages import PUUpdateMessage
from repro.resilience.policy import CircuitBreaker, RetryPolicy, run_with_policy
from repro.telemetry import child

__all__ = ["RouterStats", "ShardRouter"]


@dataclass
class RouterStats:
    """Data-path counters for the evaluation harness."""

    subqueries: int = 0
    subquery_failures: int = 0
    failovers: int = 0
    pu_updates_routed: int = 0
    #: Injected drops retried in place (no failover — the link was up).
    drops_retried: int = 0


class ShardRouter:
    """The cluster's scatter-gather and failover engine."""

    def __init__(
        self,
        membership: ClusterMembership,
        replica_sets: dict[str, ShardReplicaSet],
        transport: MultiplexedTransport | None = None,
        endpoint: str = "router",
        max_attempts: int = 2,
        scatter_threads: int | None = None,
        metrics=None,
    ) -> None:
        if max_attempts < 1:
            raise ClusterError("max_attempts must be positive")
        self.membership = membership
        self.endpoint = endpoint
        self.max_attempts = max_attempts
        self.stats = RouterStats()
        #: Optional :class:`repro.telemetry.MetricsRegistry` mirroring
        #: :attr:`stats` as ``cluster_*`` counter families (plus the
        #: policy engine's retry counters and breaker state).
        self._metrics = metrics
        self._replicas = dict(replica_sets)
        self._transport = transport
        # The canonical retry loop (repro.resilience.policy) replaces the
        # old hand-rolled while-loop.  Backoff is zeroed: a failover
        # retry should hit the freshly promoted primary immediately, and
        # the modelled transports have no congestion to back off from.
        self._policy = RetryPolicy(
            max_attempts=max_attempts,
            base_backoff_s=0.0,
            backoff_cap_s=0.0,
            retryable=(ShardDownError, LinkDownError, MessageDroppedError),
        )
        self._retry_rng = DeterministicRandomSource(0)
        #: Per-shard circuit breaker.  Deliberately lenient — a normal
        #: failover burns one or two consecutive failures; the breaker
        #: exists to shed hundred-call storms at a shard that stays dead.
        self._breakers: dict[str, CircuitBreaker] = {}
        # Stats and the replica table are touched from scatter threads.
        self._lock = threading.Lock()
        workers = (
            scatter_threads
            if scatter_threads is not None
            else max(4, 2 * len(replica_sets))
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard-router"
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    def attach_metrics(self, metrics) -> None:
        """Adopt a telemetry registry (also wired into existing breakers)."""
        self._metrics = metrics
        with self._lock:
            breakers = list(self._breakers.values())
        for breaker in breakers:
            breaker.metrics = metrics

    def _count(self, name: str, amount: int = 1, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, **labels).inc(amount)

    def replica_set(self, shard_id: str) -> ShardReplicaSet:
        with self._lock:
            replica_set = self._replicas.get(shard_id)
        if replica_set is None:
            raise ClusterError(f"no replica set for shard {shard_id!r}")
        return replica_set

    def add_replica_set(self, shard_id: str, replica_set: ShardReplicaSet) -> None:
        with self._lock:
            self._replicas[shard_id] = replica_set

    def remove_replica_set(self, shard_id: str) -> ShardReplicaSet:
        with self._lock:
            return self._replicas.pop(shard_id)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._replicas))

    # -- placement ------------------------------------------------------------------

    def split_columns(
        self, region_blocks: tuple[int, ...]
    ) -> dict[str, tuple[int, ...]]:
        """``{shard_id: column indices}`` over the request's disclosed blocks.

        Only shards that own at least one disclosed block appear; the
        ring is read once so a concurrent membership change cannot split
        one request across two ring versions.
        """
        ring = self.membership.ring
        split: dict[str, list[int]] = {}
        for k, block in enumerate(region_blocks):
            split.setdefault(ring.node_for(block), []).append(k)
        return {shard_id: tuple(cols) for shard_id, cols in split.items()}

    # -- failure handling -------------------------------------------------------------

    def _recover(self, shard_id: str) -> None:
        """Promote a shard's standby and restore its transport endpoint."""
        replica_set = self.replica_set(shard_id)
        replica_set.promote()
        if self._transport is not None:
            self._transport.restore_endpoint(shard_id)
        with self._lock:
            self.stats.failovers += 1
        self._count("cluster_failovers_total", shard=shard_id)

    def check_liveness(self, now: float | None = None) -> tuple[str, ...]:
        """Promote every shard whose primary is dead and heartbeat stale.

        Returns the shard ids promoted.  Run between epochs; this is the
        detection path for shards that crash while idle.
        """
        promoted = []
        for shard_id in self.shard_ids:
            replica_set = self.replica_set(shard_id)
            if not replica_set.primary.alive and not replica_set.is_alive(now):
                self._recover(shard_id)
                promoted.append(shard_id)
        return tuple(promoted)

    def breaker_for(self, shard_id: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(shard_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=f"router->{shard_id}", metrics=self._metrics
                )
                self._breakers[shard_id] = breaker
            return breaker

    def _call_shard(self, shard_id: str, request, invoke, span=None):
        """One sub-query with transport accounting and bounded failover.

        Retries run through the unified policy engine: an injected drop
        (:class:`~repro.errors.MessageDroppedError`) is retried against
        the *same* primary (the link is up — failing over would discard
        a healthy shard), while a dead shard or cut wire promotes the
        standby before the next attempt.  Budget and message shape match
        the pre-policy behaviour exactly: at most ``max_attempts`` tries,
        then ``ShardDownError`` naming the attempt count.

        ``span`` (pre-created by :meth:`scatter` on the calling thread)
        covers the whole *logical* sub-query — every retry and failover
        included — so fault schedules never change the span-tree shape.
        """

        def attempt():
            replica_set = self.replica_set(shard_id)
            if self._transport is not None:
                self._transport.send(request, self.endpoint, shard_id)
            result = invoke(replica_set.primary, request)
            replica_set.record_heartbeat()
            if self._transport is not None:
                self._transport.send(result, shard_id, self.endpoint)
            with self._lock:
                self.stats.subqueries += 1
            self._count("cluster_subqueries_total", shard=shard_id)
            return result

        def on_retry(_attempt_number, exc, _sleep_s):
            with self._lock:
                self.stats.subquery_failures += 1
            self._count("cluster_subquery_failures_total", shard=shard_id)
            if isinstance(exc, MessageDroppedError):
                with self._lock:
                    self.stats.drops_retried += 1
                self._count("cluster_drops_retried_total", shard=shard_id)
                return
            try:
                self._recover(shard_id)
            except ClusterError as promote_exc:
                raise ShardDownError(
                    f"shard {shard_id!r} is down and cannot be recovered"
                ) from promote_exc

        try:
            return run_with_policy(
                attempt,
                self._policy,
                breaker=self.breaker_for(shard_id),
                rng=self._retry_rng,
                on_retry=on_retry,
                metrics=self._metrics,
                op="shard_subquery",
            )
        except RetryExhaustedError as exc:
            with self._lock:
                self.stats.subquery_failures += 1
            self._count("cluster_subquery_failures_total", shard=shard_id)
            if span is not None:
                span.record_error(exc)
            raise ShardDownError(
                f"shard {shard_id!r} failed {self.max_attempts} attempts"
            ) from exc
        finally:
            if span is not None:
                span.end()

    # -- the data path ----------------------------------------------------------------

    def route_pu_update(self, message: PUUpdateMessage) -> str:
        """Deliver one PU update to the owning shard (both replicas)."""
        shard_id = self.membership.ring.node_for(message.block_index)

        def invoke(_primary, msg):
            # Mirrored application — the warm standby stays warm.
            self.replica_set(shard_id).apply_pu_update(msg)
            return msg

        self._call_shard(shard_id, message, invoke)
        with self._lock:
            self.stats.pu_updates_routed += 1
        self._count("cluster_pu_updates_routed_total", shard=shard_id)
        return shard_id

    def scatter(
        self, requests: dict[str, object], invoke, parent=None
    ) -> dict[str, object]:
        """Fan ``{shard_id: sub-query}`` out concurrently; gather in order.

        ``invoke(primary_shard, request)`` runs on a scatter thread per
        shard; each shard's heavy arithmetic sits in its own worker
        process, so the batch completes in roughly the slowest shard's
        time rather than the sum.  Any sub-query that exhausts its
        retries re-raises here.

        When ``parent`` (a :class:`repro.telemetry.Span`) is given, one
        ``shard`` child span per sub-query is created *here*, in sorted
        shard order on the calling thread — never from the pool threads —
        so the span tree is deterministic regardless of which shard
        finishes first.
        """
        if not requests:
            return {}
        spans = {
            shard_id: child(parent, "shard", shard=shard_id)
            for shard_id in sorted(requests)
        }
        futures = {
            shard_id: self._pool.submit(
                self._call_shard, shard_id, request, invoke, spans[shard_id]
            )
            for shard_id, request in requests.items()
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def scatter_phase1(
        self, requests: dict[str, object], parent=None
    ) -> dict[str, object]:
        return self.scatter(
            requests,
            lambda primary, request: primary.process_phase1(request),
            parent=parent,
        )

    def scatter_phase2(
        self, requests: dict[str, object], parent=None
    ) -> dict[str, object]:
        return self.scatter(
            requests,
            lambda primary, request: primary.process_phase2(request),
            parent=parent,
        )

    # -- epoch control ---------------------------------------------------------------

    def commit_epoch(self, epoch_id: int, snapshot: bool = True) -> None:
        """Commit the epoch on every shard (and snapshot each primary)."""
        for shard_id in self.shard_ids:
            self.replica_set(shard_id).commit_epoch(epoch_id, snapshot=snapshot)
