"""Scatter-gather routing of SDC work across the shard fleet.

The router owns the data path of the cluster: it splits each request's
columns by ring ownership, fans the per-shard sub-queries out on a
thread pool (each shard's exponentiations run in that shard's dedicated
worker process, so the fan-out is genuinely parallel), and gathers the
results.  It also owns the *failure* path: a sub-query that hits a dead
primary (:class:`~repro.errors.ShardDownError`) or a cut wire
(:class:`~repro.errors.LinkDownError`) triggers replica promotion and a
bounded retry against the new primary — at most ``max_attempts`` tries
per sub-query, after which the failure propagates to the caller.

Liveness has two layers: every successful sub-query records a heartbeat
on its replica set, and :meth:`check_liveness` (run by the coordinator
between epochs) proactively promotes any shard whose primary is dead
and whose heartbeat has aged past the replica set's timeout — so a
crashed shard is recovered even when no request happens to land on it.

When a :class:`~repro.net.transport.MultiplexedTransport` is attached,
every sub-query and response is accounted on its own directed
router↔shard link, and failure injection at the transport layer
(``fail_endpoint``) is honoured exactly like a shard crash.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

from repro.cluster.membership import ClusterMembership
from repro.cluster.replica import ShardReplicaSet
from repro.crypto.rand import DeterministicRandomSource
from repro.errors import (
    ClusterError,
    FencedError,
    LinkDownError,
    MessageDroppedError,
    RetryExhaustedError,
    ShardDownError,
)
from repro.net.transport import MultiplexedTransport, resolve_multiplexed
from repro.pisa.messages import PUUpdateMessage
from repro.resilience.policy import CircuitBreaker, RetryPolicy, run_with_policy
from repro.telemetry import child
from repro.telemetry.metrics import Histogram

__all__ = ["RouterStats", "ShardRouter", "SuspectPolicy", "DEFAULT_SUSPECT_POLICY"]


@dataclass(frozen=True)
class SuspectPolicy:
    """When is a slow-but-alive shard *suspect* (gray failure)?

    A sub-query RTT at or above the fleet histogram's ``quantile`` — but
    never below the absolute ``floor_s`` — marks the shard suspect: the
    router serves it from the standby without burning a promotion.  A
    later RTT back under the floor clears the suspicion.  ``min_samples``
    observations must exist before any verdict, so the first request of
    a cold deployment cannot condemn a shard.
    """

    quantile: float = 99.0
    floor_s: float = 0.25
    min_samples: int = 4


DEFAULT_SUSPECT_POLICY = SuspectPolicy()


@dataclass
class RouterStats:
    """Data-path counters for the evaluation harness."""

    subqueries: int = 0
    subquery_failures: int = 0
    failovers: int = 0
    pu_updates_routed: int = 0
    #: Injected drops retried in place (no failover — the link was up).
    drops_retried: int = 0
    #: Shards flagged as gray failures (routed around, not promoted).
    suspects: int = 0


class ShardRouter:
    """The cluster's scatter-gather and failover engine."""

    def __init__(
        self,
        membership: ClusterMembership,
        replica_sets: dict[str, ShardReplicaSet],
        transport: MultiplexedTransport | None = None,
        endpoint: str = "router",
        max_attempts: int = 2,
        scatter_threads: int | None = None,
        metrics=None,
        fencing=None,
        suspect_policy: SuspectPolicy | None = DEFAULT_SUSPECT_POLICY,
        rtt_clock=time.perf_counter,
    ) -> None:
        if max_attempts < 1:
            raise ClusterError("max_attempts must be positive")
        self.membership = membership
        self.endpoint = endpoint
        self.max_attempts = max_attempts
        self.stats = RouterStats()
        #: Optional :class:`repro.cluster.fencing.LeaseAuthority`; when
        #: set, every sub-query is stamped with the shard's current
        #: token and recovery is fence-then-promote.
        self._fencing = fencing
        self._suspect_policy = suspect_policy
        self._rtt_clock = rtt_clock
        # Fleet-wide RTT history backing the suspect quantile.  Kept
        # internal (not registry-owned) so suspicion works without a
        # metrics registry attached.
        self._rtt_fleet = Histogram(reservoir=1024)
        #: Optional :class:`repro.telemetry.MetricsRegistry` mirroring
        #: :attr:`stats` as ``cluster_*`` counter families (plus the
        #: policy engine's retry counters and breaker state).
        self._metrics = metrics
        self._replicas = dict(replica_sets)
        self._transport = transport
        # The canonical retry loop (repro.resilience.policy) replaces the
        # old hand-rolled while-loop.  Backoff is zeroed: a failover
        # retry should hit the freshly promoted primary immediately, and
        # the modelled transports have no congestion to back off from.
        self._policy = RetryPolicy(
            max_attempts=max_attempts,
            base_backoff_s=0.0,
            backoff_cap_s=0.0,
            retryable=(ShardDownError, LinkDownError, MessageDroppedError),
        )
        self._retry_rng = DeterministicRandomSource(0)
        #: Per-shard circuit breaker.  Deliberately lenient — a normal
        #: failover burns one or two consecutive failures; the breaker
        #: exists to shed hundred-call storms at a shard that stays dead.
        self._breakers: dict[str, CircuitBreaker] = {}
        # Stats and the replica table are touched from scatter threads.
        self._lock = threading.Lock()
        workers = (
            scatter_threads
            if scatter_threads is not None
            else max(4, 2 * len(replica_sets))
        )
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="shard-router"
        )
        self._mux = resolve_multiplexed(transport)
        if fencing is not None:
            for shard_id in replica_sets:
                fencing.register(shard_id)
        if metrics is not None:
            for shard_id in replica_sets:
                # Scrape-before-first-event: the family exists at zero.
                metrics.histogram("heartbeat_rtt_seconds", shard=shard_id)

    def close(self) -> None:
        self._pool.shutdown(wait=True)

    @property
    def fencing(self):
        return self._fencing

    def fence_token(self, shard_id: str) -> int:
        """The token sub-queries to ``shard_id`` are stamped with now."""
        if self._fencing is None:
            return 0
        return self._fencing.token(shard_id)

    def attach_metrics(self, metrics) -> None:
        """Adopt a telemetry registry (also wired into existing breakers)."""
        self._metrics = metrics
        with self._lock:
            breakers = list(self._breakers.values())
        for breaker in breakers:
            breaker.metrics = metrics

    def _count(self, name: str, amount: int = 1, **labels: str) -> None:
        if self._metrics is not None:
            self._metrics.counter(name, **labels).inc(amount)

    def replica_set(self, shard_id: str) -> ShardReplicaSet:
        with self._lock:
            replica_set = self._replicas.get(shard_id)
        if replica_set is None:
            raise ClusterError(f"no replica set for shard {shard_id!r}")
        return replica_set

    def add_replica_set(self, shard_id: str, replica_set: ShardReplicaSet) -> None:
        with self._lock:
            self._replicas[shard_id] = replica_set

    def remove_replica_set(self, shard_id: str) -> ShardReplicaSet:
        with self._lock:
            return self._replicas.pop(shard_id)

    @property
    def shard_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._replicas))

    # -- placement ------------------------------------------------------------------

    def split_columns(
        self, region_blocks: tuple[int, ...]
    ) -> dict[str, tuple[int, ...]]:
        """``{shard_id: column indices}`` over the request's disclosed blocks.

        Only shards that own at least one disclosed block appear; the
        ring is read once so a concurrent membership change cannot split
        one request across two ring versions.
        """
        ring = self.membership.ring
        split: dict[str, list[int]] = {}
        for k, block in enumerate(region_blocks):
            split.setdefault(ring.node_for(block), []).append(k)
        return {shard_id: tuple(cols) for shard_id, cols in split.items()}

    # -- failure handling -------------------------------------------------------------

    def _recover(self, shard_id: str, reason: str = "failover") -> None:
        """Fence, then promote, then restore the transport endpoint.

        Order is the split-brain defence: the successor's token is
        durable and installed on every reachable replica — *including*
        the zombie primary — before the standby takes a single request,
        so nothing the deposed primary does afterwards can commit.
        """
        replica_set = self.replica_set(shard_id)
        if self._fencing is not None:
            lease = self._fencing.bump(shard_id, reason)
            replica_set.install_fence(lease.token)
            self.membership.record_lease(shard_id, lease.token)
        else:
            self._count("promotions_total", reason=reason)
        replica_set.promote()
        if self._transport is not None:
            self._transport.restore_endpoint(shard_id)
        with self._lock:
            self.stats.failovers += 1
        self._count("cluster_failovers_total", shard=shard_id)

    def check_liveness(self, now: float | None = None) -> tuple[str, ...]:
        """Promote every shard whose primary is dead and heartbeat stale.

        Returns the shard ids promoted.  Run between epochs; this is the
        detection path for shards that crash while idle.  A shard whose
        heartbeat is stale while its primary is demonstrably *alive* (a
        skewed clock, a gray slowdown) is only marked suspect — promoting
        on staleness alone is exactly the spurious failover the fencing
        protocol exists to survive, so the cheap path avoids it entirely.
        """
        promoted = []
        for shard_id in self.shard_ids:
            replica_set = self.replica_set(shard_id)
            if replica_set.is_alive(now):
                continue
            if replica_set.primary.alive:
                if not replica_set.suspect:
                    replica_set.mark_suspect(True)
                    with self._lock:
                        self.stats.suspects += 1
                    self._count("cluster_suspects_total", shard=shard_id)
                continue
            self._recover(shard_id)
            promoted.append(shard_id)
        return tuple(promoted)

    # -- gray-failure detection --------------------------------------------------------

    def _modelled_rtt(self, shard_id: str) -> float:
        """The transport-modelled round trip for one sub-query, if any.

        The in-memory transports deliver synchronously and *model* delay
        as accounting, so a wall-clock RTT measurement alone would never
        see an injected slowdown; folding the modelled one-way delays in
        makes gray-failure detection observable on both planes.
        """
        if self._mux is None:
            return 0.0
        return self._mux.pending_delay_seconds(
            self.endpoint, shard_id
        ) + self._mux.pending_delay_seconds(shard_id, self.endpoint)

    def _note_rtt(self, shard_id: str, rtt_s: float) -> None:
        if self._metrics is not None:
            self._metrics.histogram(
                "heartbeat_rtt_seconds", shard=shard_id
            ).observe(rtt_s)
        policy = self._suspect_policy
        if policy is None:
            return
        with self._lock:
            self._rtt_fleet.observe(rtt_s)
            enough = self._rtt_fleet.count >= policy.min_samples
            threshold = policy.floor_s
            if enough:
                threshold = max(
                    threshold, self._rtt_fleet.percentile(policy.quantile)
                )
        replica_set = self.replica_set(shard_id)
        if enough and rtt_s >= threshold:
            if not replica_set.suspect:
                replica_set.mark_suspect(True)
                with self._lock:
                    self.stats.suspects += 1
                self._count("cluster_suspects_total", shard=shard_id)
        elif replica_set.suspect and rtt_s < policy.floor_s:
            replica_set.mark_suspect(False)

    def breaker_for(self, shard_id: str) -> CircuitBreaker:
        with self._lock:
            breaker = self._breakers.get(shard_id)
            if breaker is None:
                breaker = CircuitBreaker(
                    name=f"router->{shard_id}", metrics=self._metrics
                )
                self._breakers[shard_id] = breaker
            return breaker

    def _call_shard(self, shard_id: str, request, invoke, span=None):
        """One sub-query with transport accounting and bounded failover.

        Retries run through the unified policy engine: an injected drop
        (:class:`~repro.errors.MessageDroppedError`) is retried against
        the *same* primary (the link is up — failing over would discard
        a healthy shard), while a dead shard or cut wire promotes the
        standby before the next attempt.  Budget and message shape match
        the pre-policy behaviour exactly: at most ``max_attempts`` tries,
        then ``ShardDownError`` naming the attempt count.

        ``span`` (pre-created by :meth:`scatter` on the calling thread)
        covers the whole *logical* sub-query — every retry and failover
        included — so fault schedules never change the span-tree shape.
        """

        def attempt():
            replica_set = self.replica_set(shard_id)
            # Re-stamp per attempt: a failover between attempts bumps the
            # lease, and the retry must carry the *successor's* token.
            stamped = request
            token = self.fence_token(shard_id)
            if token and getattr(request, "fence_token", None) is not None:
                if request.fence_token != token:
                    stamped = dataclasses.replace(request, fence_token=token)
            started = self._rtt_clock()
            if self._transport is not None:
                self._transport.send(stamped, self.endpoint, shard_id)
            result = invoke(replica_set.serving_replica(), stamped)
            replica_set.record_heartbeat()
            if self._transport is not None:
                self._transport.send(result, shard_id, self.endpoint)
            self._note_rtt(
                shard_id,
                (self._rtt_clock() - started) + self._modelled_rtt(shard_id),
            )
            with self._lock:
                self.stats.subqueries += 1
            self._count("cluster_subqueries_total", shard=shard_id)
            return result

        def on_retry(_attempt_number, exc, _sleep_s):
            with self._lock:
                self.stats.subquery_failures += 1
            self._count("cluster_subquery_failures_total", shard=shard_id)
            if isinstance(exc, MessageDroppedError):
                with self._lock:
                    self.stats.drops_retried += 1
                self._count("cluster_drops_retried_total", shard=shard_id)
                return
            try:
                self._recover(shard_id)
            except ClusterError as promote_exc:
                raise ShardDownError(
                    f"shard {shard_id!r} is down and cannot be recovered"
                ) from promote_exc

        try:
            return run_with_policy(
                attempt,
                self._policy,
                breaker=self.breaker_for(shard_id),
                rng=self._retry_rng,
                on_retry=on_retry,
                metrics=self._metrics,
                op="shard_subquery",
            )
        except FencedError:
            # Never retried (NEVER_RETRYABLE): this router's lease view
            # is stale — fail fast and let the caller resynchronise.
            self._count("fenced_requests_total", shard=shard_id)
            raise
        except RetryExhaustedError as exc:
            with self._lock:
                self.stats.subquery_failures += 1
            self._count("cluster_subquery_failures_total", shard=shard_id)
            if span is not None:
                span.record_error(exc)
            raise ShardDownError(
                f"shard {shard_id!r} failed {self.max_attempts} attempts"
            ) from exc
        finally:
            if span is not None:
                span.end()

    # -- the data path ----------------------------------------------------------------

    def route_pu_update(self, message: PUUpdateMessage) -> str:
        """Deliver one PU update to the owning shard (both replicas)."""
        shard_id = self.membership.ring.node_for(message.block_index)

        def invoke(_primary, msg):
            # Mirrored application — the warm standby stays warm.  The
            # token travels beside the message, not inside it: a
            # PUUpdateMessage's bytes are protocol transcript.
            self.replica_set(shard_id).apply_pu_update(
                msg, fence_token=self.fence_token(shard_id)
            )
            return msg

        self._call_shard(shard_id, message, invoke)
        with self._lock:
            self.stats.pu_updates_routed += 1
        self._count("cluster_pu_updates_routed_total", shard=shard_id)
        return shard_id

    def scatter(
        self, requests: dict[str, object], invoke, parent=None
    ) -> dict[str, object]:
        """Fan ``{shard_id: sub-query}`` out concurrently; gather in order.

        ``invoke(primary_shard, request)`` runs on a scatter thread per
        shard; each shard's heavy arithmetic sits in its own worker
        process, so the batch completes in roughly the slowest shard's
        time rather than the sum.  Any sub-query that exhausts its
        retries re-raises here.

        When ``parent`` (a :class:`repro.telemetry.Span`) is given, one
        ``shard`` child span per sub-query is created *here*, in sorted
        shard order on the calling thread — never from the pool threads —
        so the span tree is deterministic regardless of which shard
        finishes first.
        """
        if not requests:
            return {}
        spans = {
            shard_id: child(parent, "shard", shard=shard_id)
            for shard_id in sorted(requests)
        }
        futures = {
            shard_id: self._pool.submit(
                self._call_shard, shard_id, request, invoke, spans[shard_id]
            )
            for shard_id, request in requests.items()
        }
        return {shard_id: future.result() for shard_id, future in futures.items()}

    def scatter_phase1(
        self, requests: dict[str, object], parent=None
    ) -> dict[str, object]:
        return self.scatter(
            requests,
            lambda primary, request: primary.process_phase1(request),
            parent=parent,
        )

    def scatter_phase2(
        self, requests: dict[str, object], parent=None
    ) -> dict[str, object]:
        return self.scatter(
            requests,
            lambda primary, request: primary.process_phase2(request),
            parent=parent,
        )

    # -- epoch control ---------------------------------------------------------------

    def commit_epoch(self, epoch_id: int, snapshot: bool = True) -> None:
        """Commit the epoch on every shard (and snapshot each primary)."""
        for shard_id in self.shard_ids:
            self.replica_set(shard_id).commit_epoch(
                epoch_id,
                snapshot=snapshot,
                fence_token=self.fence_token(shard_id),
            )
