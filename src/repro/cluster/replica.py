"""Replica sets: a warm standby, heartbeats, and failover promotion.

Each shard runs as a *replica set*: a primary :class:`SdcShard` serving
sub-queries and a warm standby mirroring every PU update as it is
applied.  Losing a shard therefore loses no durable state — the standby
holds the same encrypted aggregate, and the per-epoch snapshots written
at commit (:class:`SnapshotStore`) bound how far even a *cold* restore
can lag: to the last committed epoch, never further.

Failure detection is heartbeat-based and clock-injectable: the router
records a heartbeat on every successful sub-query, and
:meth:`ShardReplicaSet.is_alive` treats a primary as dead once its
heartbeat is older than ``heartbeat_timeout_s`` (or once a sub-query
raised :class:`~repro.errors.ShardDownError` outright).  Promotion swaps
the standby in as primary and rebuilds a fresh standby behind it —
preferring the latest snapshot when one is at least as recent as the
promoted primary's committed epoch, which exercises the same
save/restore path a cold operator restart would use.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from repro.errors import ClusterError
from repro.pisa.messages import PUUpdateMessage
from repro.pisa.storage import restore_shard_state, serialize_shard_state

from repro.cluster.shard import SdcShard

__all__ = [
    "SnapshotStore",
    "ShardReplicaSet",
    "FailoverEvent",
    "DEFAULT_HEARTBEAT_TIMEOUT_S",
]

DEFAULT_HEARTBEAT_TIMEOUT_S = 1.0


class SnapshotStore:
    """Latest per-shard epoch snapshot, keyed by shard id.

    The in-memory map serves the hot promote path; when a durable
    :class:`~repro.store.base.StateStore` is attached every save is
    mirrored to its ``snapshots`` table (the payload *is* the canonical
    :func:`~repro.pisa.storage.serialize_shard_state` blob, CRC-framed
    by the engine), and :meth:`latest` falls back to disk — which is how
    a cold restart finds state the process never held.
    """

    def __init__(self, store=None) -> None:
        self._lock = threading.Lock()
        #: Optional durable engine (duck-typed ``StateStore``).
        self.store = store
        #: shard_id → (epoch, blob)
        self._latest: dict[str, tuple[int, bytes]] = {}
        self.snapshots_taken = 0

    def save(self, shard: SdcShard) -> int:
        """Snapshot ``shard`` at its current committed epoch."""
        blob = serialize_shard_state(shard)
        with self._lock:
            epoch = shard.last_committed_epoch
            current = self._latest.get(shard.shard_id)
            if current is None or epoch >= current[0]:
                self._latest[shard.shard_id] = (epoch, blob)
            self.snapshots_taken += 1
        if self.store is not None:
            self.store.put_snapshot(shard.shard_id, epoch, blob)
        return epoch

    def latest(self, shard_id: str) -> tuple[int, bytes] | None:
        with self._lock:
            entry = self._latest.get(shard_id)
        if entry is None and self.store is not None:
            entry = self.store.latest_snapshot(shard_id)
        return entry


@dataclass(frozen=True)
class FailoverEvent:
    """One promotion, for the evaluation harness and the bench probe."""

    shard_id: str
    at: float
    resumed_epoch: int
    from_snapshot: bool
    #: Lease the successor serves under (0 when fencing is not in force).
    fence_token: int = 0


class ShardReplicaSet:
    """Primary + warm standby for one shard, with promote-on-failure."""

    def __init__(
        self,
        shard_id: str,
        shard_factory,
        snapshots: SnapshotStore | None = None,
        heartbeat_timeout_s: float = DEFAULT_HEARTBEAT_TIMEOUT_S,
        clock=time.monotonic,
        journal=None,
    ) -> None:
        if heartbeat_timeout_s <= 0:
            raise ClusterError("heartbeat_timeout_s must be positive")
        self.shard_id = shard_id
        #: ``shard_factory(role: str) -> SdcShard`` — builds an empty
        #: shard (the replica layer assigns blocks and replays state).
        self._factory = shard_factory
        self.snapshots = snapshots if snapshots is not None else SnapshotStore()
        self.heartbeat_timeout_s = heartbeat_timeout_s
        self._clock = clock
        #: Optional :class:`repro.resilience.journal.EpochJournal`; when
        #: set, epoch commits and promotions are write-ahead logged.
        self.journal = journal
        # Promotion and heartbeat bookkeeping race with the router's
        # scatter threads; all mutations hold the lock.
        self._lock = threading.Lock()
        self.primary: SdcShard = self._factory("a")
        self.standby: SdcShard = self._factory("b")
        self._last_heartbeat = self._clock()
        self.failovers: list[FailoverEvent] = []
        #: Current lease for this shard (0 = fencing not in force).
        self.fence_token = 0
        #: Gray-failure flag: primary is alive but degraded; the router
        #: serves reads from the standby instead of promoting.
        self.suspect = False

    # -- state fan-out -------------------------------------------------------------

    def assign_blocks(self, blocks: tuple[int, ...]) -> None:
        self.primary.assign_blocks(blocks)
        self.standby.assign_blocks(blocks)

    def release_blocks(self, blocks: tuple[int, ...]) -> None:
        self.primary.release_blocks(blocks)
        self.standby.release_blocks(blocks)

    @property
    def blocks(self) -> tuple[int, ...]:
        return self.primary.blocks

    def apply_pu_update(
        self, message: PUUpdateMessage, fence_token: int = 0
    ) -> None:
        """Warm mirroring: every PU update lands on primary *and* standby."""
        token = fence_token or self.fence_token
        self.primary.handle_pu_update(message, fence_token=token)
        self.standby.handle_pu_update(message, fence_token=token)

    def commit_epoch(
        self, epoch_id: int, snapshot: bool = True, fence_token: int = 0
    ) -> None:
        """Mark the epoch committed on both replicas; snapshot the primary."""
        token = fence_token or self.fence_token
        self.primary.commit_epoch(epoch_id, fence_token=token)
        self.standby.commit_epoch(epoch_id, fence_token=token)
        if snapshot:
            self.snapshots.save(self.primary)
        if self.journal is not None:
            self.journal.epoch_commit(self.shard_id, epoch_id)
            if token:
                self.journal.writer_commit(self.shard_id, epoch_id, token)

    # -- fencing -------------------------------------------------------------------

    def install_fence(self, token: int) -> None:
        """Ratchet the set's lease and push it to every reachable replica.

        Called during fence-then-promote *before* the swap: the zombie
        primary (still the ``primary`` slot at that point) learns the new
        token too, so its next write attempt dies with
        :class:`~repro.errors.FencedError` instead of landing.
        """
        with self._lock:
            if token > self.fence_token:
                self.fence_token = token
        self.primary.observe_fence(token)
        self.standby.observe_fence(token)

    # -- gray-failure suspicion ------------------------------------------------------

    def mark_suspect(self, suspect: bool = True) -> None:
        self.suspect = suspect

    def serving_replica(self) -> SdcShard:
        """The replica read-type sub-queries should hit right now.

        Normally the primary; when the set is *suspect* (alive but
        degraded — a gray failure) and the standby is live, the standby
        serves instead.  Both replicas mirror every PU update and commit
        the same epochs, so the choice never changes a protocol byte —
        it only routes around the slow box without burning a promotion.
        """
        if self.suspect and self.standby.alive:
            return self.standby
        return self.primary

    # -- liveness ------------------------------------------------------------------

    def record_heartbeat(self, now: float | None = None) -> None:
        with self._lock:
            self._last_heartbeat = self._clock() if now is None else now

    def heartbeat_age(self, now: float | None = None) -> float:
        with self._lock:
            reference = self._clock() if now is None else now
            return reference - self._last_heartbeat

    def is_alive(self, now: float | None = None) -> bool:
        """Primary liveness: not crashed and heartbeat within timeout."""
        return (
            self.primary.alive
            and self.heartbeat_age(now) <= self.heartbeat_timeout_s
        )

    def kill_primary(self) -> None:
        """Inject a primary crash (the loadtest's ``--kill-shard``)."""
        self.primary.kill()

    # -- failover ------------------------------------------------------------------

    def promote(self) -> FailoverEvent:
        """Swap the standby in as primary; rebuild a fresh standby.

        The new standby restores from the latest snapshot when one is at
        least as recent as the promoted primary's committed epoch (cold
        path), otherwise it re-mirrors the promoted primary's PU state
        directly (warm path).  Either way both replicas agree before the
        next sub-query is served.
        """
        with self._lock:
            if not self.standby.alive:
                raise ClusterError(
                    f"shard {self.shard_id!r} has no live standby to promote"
                )
            promoted = self.standby
            fresh = self._factory("standby")
            latest = self.snapshots.latest(self.shard_id)
            from_snapshot = (
                latest is not None and latest[0] >= promoted.last_committed_epoch
            )
            if from_snapshot:
                assert latest is not None
                restore_shard_state(fresh, latest[1])
            else:
                fresh.assign_blocks(promoted.blocks)
                for message in promoted.pu_update_messages():
                    fresh.handle_pu_update(message)
                if promoted.last_committed_epoch >= 0:
                    fresh.commit_epoch(promoted.last_committed_epoch)
            # Both replicas of the new generation serve under the lease
            # current at promotion time.
            promoted.observe_fence(self.fence_token)
            fresh.observe_fence(self.fence_token)
            self.primary = promoted
            self.standby = fresh
            self.suspect = False
            self._last_heartbeat = self._clock()
            event = FailoverEvent(
                shard_id=self.shard_id,
                at=self._clock(),
                resumed_epoch=promoted.last_committed_epoch,
                from_snapshot=from_snapshot,
                fence_token=self.fence_token,
            )
            self.failovers.append(event)
        if self.journal is not None:
            self.journal.promote(self.shard_id, event.resumed_epoch)
        return event

    def __repr__(self) -> str:
        return (
            f"ShardReplicaSet({self.shard_id!r}, "
            f"primary_alive={self.primary.alive}, "
            f"failovers={len(self.failovers)})"
        )
