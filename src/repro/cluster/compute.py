"""Per-shard dedicated compute processes.

:class:`~repro.service.workers.ProcessWorkerPool` is tuned for one big
server: it runs small batches inline and shares its workers across every
caller.  A sharded SDC plane is the opposite shape — each shard is "its
own machine" with its own CPU, and the scatter-gather router blocks a
*thread* per shard while the shard's exponentiations grind.  Inline
execution would serialise all shards on the caller's GIL and erase the
cluster's parallelism, so :class:`DedicatedProcessExecutor` **always**
ships the batch to its single worker process, no matter how small.  The
calling thread releases the GIL while it waits on the future, which is
what lets N shards genuinely compute at once.

Determinism: jobs are pure ``pow(base, exponent, modulus)`` triples with
all randomness drawn by the coordinator before dispatch, so results are
byte-identical to :class:`~repro.crypto.parallel.SerialExecutor` — the
same executor-seam property the service runtime already asserts.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ProcessPoolExecutor
from typing import Sequence

from repro.crypto.parallel import PowJob
from repro.service.workers import _pow_chunk

__all__ = ["DedicatedProcessExecutor"]


class DedicatedProcessExecutor:
    """One shard's private worker process behind the ``Executor`` seam.

    Use as a context manager or call :meth:`close` to reap the worker.
    Call :meth:`warm_up` before the router spawns scatter threads —
    forking from an already-threaded process is unreliable.
    """

    def __init__(self) -> None:
        self.jobs_executed = 0
        self.batches_executed = 0
        # Submissions come from the router's scatter threads; the
        # counters and lazy pool start are shared state.
        self._lock = threading.Lock()
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=1)
        return self._pool

    def submit_pow_many(self, jobs: Sequence[PowJob]) -> Future:
        """Ship a batch to the worker; the future resolves to the results."""
        jobs = list(jobs)
        with self._lock:
            self.jobs_executed += len(jobs)
            self.batches_executed += 1
            pool = self._ensure_pool()
        return pool.submit(_pow_chunk, jobs)

    def pow_many(self, jobs: Sequence[PowJob]) -> list[int]:
        return self.submit_pow_many(jobs).result()

    def warm_up(self) -> None:
        """Fork the worker now and push one trivial batch through."""
        self.pow_many([(2, 3, 5)])

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "DedicatedProcessExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
