"""Epoch leases and fencing tokens for the sharded SDC plane.

PISA's transcript determinism assumes **exactly one writer per shard
per epoch**.  Heartbeats alone cannot guarantee that: an asymmetric
partition (router→shard cut while shard→store stays up) or a merely
slow primary looks dead to the router but keeps absorbing PU updates —
and once the standby is promoted, two replicas diverge silently.

The fix is the classic lease/fence protocol:

* Every shard has a **monotonically increasing fencing token**, issued
  by a single :class:`LeaseAuthority` (the coordinator in-process; the
  authority server on the socket plane).
* The router stamps every sub-query and write with the token it holds.
* A shard remembers the **highest token it has ever seen** and rejects
  anything lower with :class:`~repro.errors.FencedError` — a deposed
  primary's writes die at the shard boundary, not in a comment.
* Promotion is **fence-then-promote**: bump + persist the token,
  install it on every replica that will listen (including the zombie,
  if reachable), and only then route traffic to the successor.

Tokens are durable.  :meth:`LeaseAuthority.bump` persists through the
:class:`~repro.store.base.StateStore` checkpoint table (scope
``fence/<shard_id>``) *before* the new lease is used, so a SIGKILL and
cold start can never resurrect an old token; it also journals a
barriered ``fence`` record so the exactly-one-writer audit
(:func:`repro.resilience.recovery.check_exactly_one_writer`) can
attribute every commit to the lease that performed it.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

__all__ = [
    "FENCE_SCOPE_PREFIX",
    "FenceLease",
    "LeaseAuthority",
    "fence_scope",
]

#: Store checkpoint-scope prefix under which leases persist.
FENCE_SCOPE_PREFIX = "fence/"

#: ``promotions_total{reason=}`` label values pre-registered at zero.
PROMOTION_REASONS = ("failover", "suspect", "cold-start", "manual")


def fence_scope(shard_id: str) -> str:
    """The store checkpoint scope holding one shard's current token."""
    return FENCE_SCOPE_PREFIX + shard_id


@dataclass(frozen=True)
class FenceLease:
    """One issued lease: the token is the shard's write credential."""

    shard_id: str
    token: int
    reason: str


class LeaseAuthority:
    """Issues strictly increasing fencing tokens, durably.

    One instance per deployment — the single point that decides who the
    legitimate writer for a shard is.  ``store`` (optional) makes
    tokens survive kill9-and-coldstart; ``journal`` (optional) leaves a
    barriered provenance trail; ``metrics`` (optional) pre-registers the
    fencing families at zero so a scrape before the first promotion
    still shows them.
    """

    def __init__(self, store=None, journal=None, metrics=None) -> None:
        self._store = store
        self._journal = journal
        self._metrics = metrics
        self._lock = threading.Lock()
        self._tokens: dict[str, int] = {}
        if metrics is not None:
            for reason in PROMOTION_REASONS:
                metrics.counter("promotions_total", reason=reason)

    # -- bookkeeping -------------------------------------------------------------

    def register(self, shard_id: str) -> int:
        """Adopt a shard, recovering its persisted token if one exists.

        Returns the current token (0 for a shard never fenced).  Safe to
        call repeatedly — re-registration after a cold start re-reads the
        store, which is exactly how a token outlives the process.
        """
        with self._lock:
            token = max(self._tokens.get(shard_id, 0), self._load(shard_id))
            self._tokens[shard_id] = token
            self._publish(shard_id, token)
            return token

    def token(self, shard_id: str) -> int:
        """The shard's current token (0 if never fenced)."""
        with self._lock:
            return self._tokens.get(shard_id, 0)

    def shard_ids(self) -> tuple[str, ...]:
        with self._lock:
            return tuple(sorted(self._tokens))

    # -- the one mutation --------------------------------------------------------

    def bump(self, shard_id: str, reason: str) -> FenceLease:
        """Issue the next token for ``shard_id``: durably, then in memory.

        Persistence order is the protocol: store first (the token must
        survive a crash *before* anyone acts on it), then the barriered
        journal record, then the in-memory map and gauges.  A crash
        between store-write and use wastes a token number — monotonicity
        only needs the counter never to go backwards, not to be dense.
        """
        with self._lock:
            token = max(self._tokens.get(shard_id, 0), self._load(shard_id)) + 1
            if self._store is not None:
                self._store.put_checkpoint(
                    fence_scope(shard_id), token.to_bytes(8, "big")
                )
            if self._journal is not None:
                self._journal.fence(shard_id, token, reason)
            self._tokens[shard_id] = token
            self._publish(shard_id, token)
            if self._metrics is not None:
                self._metrics.counter("promotions_total", reason=reason).inc()
            return FenceLease(shard_id=shard_id, token=token, reason=reason)

    def note_rejection(self, shard_id: str) -> None:
        """Count one stale-token rejection into ``fenced_requests_total``.

        The shards raise :class:`~repro.errors.FencedError` themselves
        (they hold no registry); whoever observes the rejection — the
        router's data path, the chaos drills — reports it here.
        """
        if self._metrics is not None:
            self._metrics.counter("fenced_requests_total", shard=shard_id).inc()

    # -- internals ---------------------------------------------------------------

    def _load(self, shard_id: str) -> int:
        if self._store is None:
            return 0
        blob = self._store.get_checkpoint(fence_scope(shard_id))
        return int.from_bytes(blob, "big") if blob else 0

    def _publish(self, shard_id: str, token: int) -> None:
        if self._metrics is None:
            return
        self._metrics.gauge("fencing_tokens_current", shard=shard_id).set(token)
        # Touch the rejection counter so the family exists before the
        # first stale write — the PR 5 scrape-before-first-event rule.
        self._metrics.counter("fenced_requests_total", shard=shard_id)
